//! The experiment driver: sweeps rendering configurations, measures run
//! times, and records observed model inputs — the corpus generator behind
//! every fitted model (Section 5.4's 1,350-test study, scaled by a
//! [`StudyConfig`] so the full sweep and a laptop-quick sweep share code).

use crate::sample::{CompositeSample, CompositeWire, RenderSample, RendererKind};
use compositing::{dfb_compose_opts, radix_k_opts, CompositeMode, ExchangeOptions, RankImage};
use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::external_faces::external_faces_grid;
use mpirt::event::EventWorld;
use mpirt::NetModel;
use rand::{Rng, SeedableRng};
use render::raster::rasterize;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use render::volume_structured::{render_structured, SvrConfig};
use vecmath::{Camera, Color, TransferFunction, Vec3};

/// Failures surfaced by the study driver instead of panicking mid-sweep: a
/// bad sweep point degrades to an error the caller can report or skip.
#[derive(Debug)]
pub enum StudyError {
    /// A renderer refused the configuration (e.g. a missing field).
    Render(String),
    /// The serialized timing pool could not be built.
    TimingPool(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Render(e) => write!(f, "study render: {e}"),
            StudyError::TimingPool(e) => write!(f, "study timing pool: {e}"),
        }
    }
}

impl std::error::Error for StudyError {}

/// Sweep dimensions for the render study.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Number of (data size, image size, view) combinations.
    pub tests: usize,
    /// Cells-per-axis range (the paper swept 128..320 per node).
    pub data_cells: (usize, usize),
    /// Image side range (the paper swept 512..2880).
    pub image_side: (u32, u32),
    /// Camera fill-factor range (stands in for the AP variation the paper
    /// got from varying MPI task counts).
    pub fill: (f32, f32),
    /// RNG seed for the synthesized camera/fill sweep.
    pub seed: u64,
}

impl StudyConfig {
    /// Quick sweep: seconds-scale, for tests and default harness runs.
    pub fn quick() -> StudyConfig {
        StudyConfig {
            tests: 12,
            data_cells: (20, 56),
            image_side: (64, 224),
            fill: (0.4, 1.0),
            seed: 0xC0FFEE,
        }
    }

    /// Paper-shaped sweep (minutes-scale at realistic sizes).
    pub fn full() -> StudyConfig {
        StudyConfig {
            tests: 25,
            data_cells: (96, 288),
            image_side: (512, 1600),
            fill: (0.4, 1.0),
            seed: 0xC0FFEE,
        }
    }
}

/// Stratified sample of `n` points in `[lo, hi]`: one uniform draw per
/// stratum, strata order shuffled (Latin-hypercube style, as the paper).
fn stratified(rng: &mut impl Rng, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    order
        .into_iter()
        .map(|s| {
            let t = (s as f64 + rng.gen::<f64>()) / n as f64;
            lo + t * (hi - lo)
        })
        .collect()
}

/// Run the single-node render study for one (device, renderer) pairing.
pub fn run_render_study(
    device: &Device,
    renderer: RendererKind,
    cfg: &StudyConfig,
) -> Result<Vec<RenderSample>, StudyError> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ renderer.name().len() as u64);
    let cells = stratified(&mut rng, cfg.data_cells.0 as f64, cfg.data_cells.1 as f64, cfg.tests);
    let sides = stratified(&mut rng, cfg.image_side.0 as f64, cfg.image_side.1 as f64, cfg.tests);
    let fills = stratified(&mut rng, cfg.fill.0 as f64, cfg.fill.1 as f64, cfg.tests);
    // The paper's multi-task runs vary SPR through the task count; here the
    // sampling density itself is swept so the AP*SPR and AP*CS regressors
    // decorrelate (otherwise the VR fit can go collinear and produce the
    // negative coefficients the paper warns about).
    let sprs = stratified(&mut rng, 60.0, 450.0, cfg.tests);

    let mut out = Vec::with_capacity(cfg.tests);
    for i in 0..cfg.tests {
        let n = cells[i].round() as usize;
        let side = sides[i].round() as u32;
        let fill = fills[i] as f32;
        out.push(run_one_with_samples(device, renderer, n, side, fill, sprs[i].round() as u32)?);
    }
    Ok(out)
}

/// Run one experiment: N^3 cells, side^2 pixels, the given camera fill.
pub fn run_one(
    device: &Device,
    renderer: RendererKind,
    n: usize,
    side: u32,
    fill: f32,
) -> Result<RenderSample, StudyError> {
    run_one_with_samples(device, renderer, n, side, fill, SvrConfig::default().samples_per_ray)
}

/// [`run_one`] with an explicit volume-sampling rate — weak-scaled
/// extrapolations need per-task sampling densities of `373 / tasks^(1/3)`.
pub fn run_one_with_samples(
    device: &Device,
    renderer: RendererKind,
    n: usize,
    side: u32,
    fill: f32,
    samples_per_ray: u32,
) -> Result<RenderSample, StudyError> {
    let kind = FieldKind::ShockShell;
    let grid = field_grid(kind, [n; 3]);
    let camera = Camera::framing(&grid.bounds(), Vec3::new(0.4, 0.3, 1.0), fill);
    let pixels = (side as f64) * (side as f64);
    match renderer {
        RendererKind::RayTracing => {
            // xlint::allow(X014): external_faces_grid panics only on a missing
            // point field; field_grid above always adds "scalar".
            let tris = external_faces_grid(&grid, "scalar");
            let geom = TriGeometry::from_mesh(&tris);
            let rt = RayTracer::new(device.clone(), geom);
            let cfgr = RtConfig::workload2();
            let _warm = rt.render(&camera, side, side, &cfgr);
            let outp = rt.render(&camera, side, side, &cfgr);
            Ok(RenderSample {
                renderer,
                device: device.name().into(),
                source: "external_faces".into(),
                objects: outp.stats.objects as f64,
                active_pixels: outp.stats.active_pixels as f64,
                visible_objects: 0.0,
                pixels_per_triangle: 0.0,
                samples_per_ray: 0.0,
                cells_spanned: 0.0,
                pixels,
                tasks: 1,
                build_seconds: outp.stats.bvh_build_seconds,
                render_seconds: outp.stats.render_seconds,
            })
        }
        RendererKind::Rasterization => {
            // xlint::allow(X014): external_faces_grid panics only on a missing
            // point field; field_grid above always adds "scalar".
            let tris = external_faces_grid(&grid, "scalar");
            let geom = TriGeometry::from_mesh(&tris);
            let tf = TransferFunction::rainbow(geom.scalar_range);
            let _warm = rasterize(device, &geom, &camera, side, side, &tf, None);
            let outp = rasterize(device, &geom, &camera, side, side, &tf, None);
            Ok(RenderSample {
                renderer,
                device: device.name().into(),
                source: "external_faces".into(),
                objects: outp.stats.objects as f64,
                active_pixels: outp.stats.active_pixels as f64,
                visible_objects: outp.stats.visible_objects as f64,
                pixels_per_triangle: outp.stats.pixels_per_triangle,
                samples_per_ray: 0.0,
                cells_spanned: 0.0,
                pixels,
                tasks: 1,
                build_seconds: 0.0,
                render_seconds: outp.stats.render_seconds,
            })
        }
        RendererKind::VolumeRendering => {
            let range = grid
                .field("scalar")
                .and_then(|f| f.range())
                .ok_or_else(|| StudyError::Render("synthesized grid has no scalar range".into()))?;
            let tf = TransferFunction::sparse_features(range);
            let vcfg = SvrConfig { samples_per_ray, ..Default::default() };
            let _warm = render_structured(device, &grid, "scalar", &camera, side, side, &tf, &vcfg)
                .map_err(|e| StudyError::Render(e.to_string()))?;
            let outp = render_structured(device, &grid, "scalar", &camera, side, side, &tf, &vcfg)
                .map_err(|e| StudyError::Render(e.to_string()))?;
            Ok(RenderSample {
                renderer,
                device: device.name().into(),
                source: "structured_grid".into(),
                objects: outp.stats.objects as f64,
                active_pixels: outp.stats.active_pixels as f64,
                visible_objects: 0.0,
                pixels_per_triangle: 0.0,
                samples_per_ray: outp.stats.samples_per_ray,
                cells_spanned: outp.stats.cells_spanned,
                pixels,
                tasks: 1,
                build_seconds: 0.0,
                render_seconds: outp.stats.render_seconds,
            })
        }
    }
}

/// [`run_render_study`] priced on a deterministic simulated clock instead of
/// the wall clock. The real renderers still run — the observed model inputs
/// (active pixels, cells spanned, samples per ray, visible objects, ...) are
/// byte-deterministic for a given config — but each test's `render_seconds`
/// and `build_seconds` are charged to an [`mpirt::event::EventWorld`] under
/// per-renderer cost laws shaped exactly like the fitted model forms, plus a
/// seeded ±3% jitter standing in for measurement noise. Fit-quality tests
/// calibrate against this clock: same features, same regression machinery,
/// zero scheduler contention, so no retry loops. The wall-clock path
/// ([`run_render_study`]) stays available for opt-in smoke tests.
pub fn run_render_study_simulated(
    device: &Device,
    renderer: RendererKind,
    cfg: &StudyConfig,
) -> Result<Vec<RenderSample>, StudyError> {
    let mut samples = run_render_study(device, renderer, cfg)?;
    reprice_on_simulated_clock(&mut samples, cfg.seed);
    Ok(samples)
}

/// Overwrite a sample set's wall-clock timings with simulated-clock timings
/// (the pricing half of [`run_render_study_simulated`]). Public so callers
/// holding samples from another sweep can reprice them identically.
pub fn reprice_on_simulated_clock(samples: &mut [RenderSample], seed: u64) {
    let mut world = EventWorld::new(1, NetModel::cluster());
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x51AC_C10C);
    for s in samples.iter_mut() {
        // Deterministic stand-in for measurement noise: seeded, ±3%.
        let jitter = 1.0 + 0.03 * (2.0 * rng.gen::<f64>() - 1.0);
        let (build, render) = simulated_costs(s, jitter);
        let t0 = world.now(0);
        world.compute(0, build);
        let t1 = world.now(0);
        world.compute(0, render);
        s.build_seconds = t1 - t0;
        s.render_seconds = world.now(0) - t1;
    }
}

/// Per-renderer synthetic cost laws for the simulated study clock, shaped
/// like the model forms in [`crate::models`]. The structural terms are
/// scaled to dominate the constant at study-sized inputs (AP in the
/// thousands, O in the thousands) — the jitter multiplies the whole charge,
/// so a constant-dominated law would bury the regressors in noise and the
/// fit-quality claim would be about nothing. Returns `(build, render)`
/// seconds before jitter is folded in.
fn simulated_costs(s: &RenderSample, jitter: f64) -> (f64, f64) {
    let render = match s.renderer {
        RendererKind::RayTracing => {
            let log_o = if s.objects > 1.0 { s.objects.log2() } else { 0.0 };
            2e-8 * s.active_pixels * log_o + 1e-7 * s.active_pixels + 5e-4
        }
        RendererKind::Rasterization => {
            4e-8 * s.objects + 4e-9 * s.visible_objects * s.pixels_per_triangle + 2e-4
        }
        RendererKind::VolumeRendering => {
            2e-8 * s.active_pixels * s.cells_spanned
                + 5e-8 * s.active_pixels * s.samples_per_ray
                + 2e-4
        }
    };
    let build = match s.renderer {
        RendererKind::RayTracing => 2e-7 * s.objects + 1e-4,
        RendererKind::Rasterization | RendererKind::VolumeRendering => 0.0,
    };
    (build * jitter, render * jitter)
}

/// Synthetic per-rank images for the compositing study: each rank owns a
/// translucent band whose area shrinks as `1/tasks^(1/3)` — the paper's
/// observed relationship between task count and per-task active pixels.
pub fn synth_rank_images(tasks: usize, side: u32, seed: u64) -> Vec<RankImage> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_px = (side * side) as usize;
    let frac = (0.55 / (tasks as f64).cbrt()).min(1.0);
    let band = ((n_px as f64 * frac) as usize).max(1);
    (0..tasks)
        .map(|r| {
            let mut img = RankImage::empty(side, side);
            let start = rng.gen_range(0..n_px.saturating_sub(band).max(1));
            for i in start..(start + band).min(n_px) {
                let a = 0.3 + 0.4 * rng.gen::<f32>();
                img.color[i] = Color::new(0.2 * a, 0.4 * a, 0.6 * a, a);
                img.depth[i] = r as f32 + rng.gen::<f32>();
            }
            img
        })
        .collect()
}

/// Run the compositing study over the default (compressed) wire path only:
/// radix-k over tasks x image sizes. Kept for callers that fit the classic
/// dense-form [`crate::models::CompositeModel`] on the seed corpus shape;
/// new code should prefer [`run_composite_study_wired`].
pub fn run_composite_study(
    net: NetModel,
    tasks_list: &[usize],
    sides: &[u32],
    seed: u64,
) -> Result<Vec<CompositeSample>, StudyError> {
    let mut out = run_composite_study_wired(net, tasks_list, sides, seed)?;
    out.retain(|s| s.wire == CompositeWire::Compressed);
    Ok(out)
}

/// Run the compositing study measuring **every** exchange wire path per
/// configuration over identical rank images: dense radix-k, RLE-compressed
/// radix-k, and the asynchronous tile-owner DFB exchange — so each composite
/// model can be fitted against the exchange it actually describes.
pub fn run_composite_study_wired(
    net: NetModel,
    tasks_list: &[usize],
    sides: &[u32],
    seed: u64,
) -> Result<Vec<CompositeSample>, StudyError> {
    // Calibration measurements must time each rank's merge compute in
    // isolation: the lockstep clock takes per-round maxima over ranks, and
    // letting rank closures run concurrently on an oversubscribed core would
    // charge CPU contention to whichever merge the scheduler preempts. A
    // one-thread pool serializes the compute (install routes the nested
    // par-map onto its single worker) without changing any result bytes.
    let timing_pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .map_err(|e| StudyError::TimingPool(e.to_string()))?;
    let mut out = Vec::new();
    for &tasks in tasks_list {
        for &side in sides {
            let images = synth_rank_images(tasks, side, seed ^ (tasks as u64) << 20 ^ side as u64);
            let avg_ap =
                images.iter().map(|i| i.active_pixels() as f64).sum::<f64>() / tasks as f64;
            let factors = compositing::algorithms::default_factors(tasks);
            for wire in [CompositeWire::Dense, CompositeWire::Compressed, CompositeWire::Dfb] {
                // Min of three runs: both clocks only ever see scheduler
                // jitter as inflation (lockstep takes per-round maxima over
                // ranks; the DFB event clock takes the max over rank
                // completion times), so the minimum is the cleanest estimate
                // of the true cost.
                let seconds = (0..3)
                    .map(|_| {
                        timing_pool
                            .install(|| match wire {
                                CompositeWire::Dense => radix_k_opts(
                                    &images,
                                    CompositeMode::AlphaOrdered,
                                    net,
                                    &factors,
                                    ExchangeOptions::dense(),
                                ),
                                CompositeWire::Compressed => radix_k_opts(
                                    &images,
                                    CompositeMode::AlphaOrdered,
                                    net,
                                    &factors,
                                    ExchangeOptions::default(),
                                ),
                                CompositeWire::Dfb => dfb_compose_opts(
                                    &images,
                                    CompositeMode::AlphaOrdered,
                                    net,
                                    ExchangeOptions::default(),
                                ),
                            })
                            .1
                            .simulated_seconds
                    })
                    .fold(f64::INFINITY, f64::min);
                out.push(CompositeSample {
                    tasks,
                    pixels: (side as f64) * (side as f64),
                    avg_active_pixels: avg_ap,
                    seconds,
                    wire,
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{ModelForm, RtModel, VrModel};

    #[test]
    fn stratified_covers_all_strata() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let xs = stratified(&mut rng, 0.0, 10.0, 10);
        assert_eq!(xs.len(), 10);
        let mut strata: Vec<usize> = xs.iter().map(|&x| (x / 1.0) as usize).collect();
        strata.sort_unstable();
        strata.dedup();
        assert!(strata.len() >= 9, "strata {strata:?}"); // allow boundary wobble
        assert!(xs.iter().all(|&x| (0.0..=10.0).contains(&x)));
    }

    #[test]
    fn run_one_records_inputs_per_renderer() {
        let d = Device::parallel();
        let rt = run_one(&d, RendererKind::RayTracing, 16, 48, 0.9).unwrap();
        assert!(rt.objects > 0.0 && rt.active_pixels > 0.0);
        assert!(rt.build_seconds > 0.0 && rt.render_seconds > 0.0);
        let ra = run_one(&d, RendererKind::Rasterization, 16, 48, 0.9).unwrap();
        assert!(ra.visible_objects > 0.0 && ra.pixels_per_triangle > 0.0);
        let vr = run_one(&d, RendererKind::VolumeRendering, 16, 48, 0.9).unwrap();
        assert!(vr.samples_per_ray > 1.0 && vr.cells_spanned > 1.0);
    }

    #[test]
    fn tiny_study_fits_with_positive_r2() {
        let d = Device::parallel();
        let cfg = StudyConfig {
            tests: 8,
            data_cells: (12, 32),
            image_side: (48, 128),
            fill: (0.5, 1.0),
            seed: 7,
        };
        let samples = run_render_study(&d, RendererKind::VolumeRendering, &cfg).unwrap();
        assert_eq!(samples.len(), 8);
        let fit = VrModel.fit(&samples);
        assert!(fit.r_squared() > 0.5, "r2 = {}", fit.r_squared());
        let rts = run_render_study(&d, RendererKind::RayTracing, &cfg).unwrap();
        let rfit = RtModel.fit(&rts);
        assert!(rfit.r_squared() > 0.3, "rt r2 = {}", rfit.r_squared());
    }

    #[test]
    fn simulated_study_is_deterministic_and_fits_tightly() {
        let d = Device::parallel();
        let cfg = StudyConfig {
            tests: 6,
            data_cells: (12, 24),
            image_side: (48, 96),
            fill: (0.5, 1.0),
            seed: 7,
        };
        let a = run_render_study_simulated(&d, RendererKind::VolumeRendering, &cfg).unwrap();
        let b = run_render_study_simulated(&d, RendererKind::VolumeRendering, &cfg).unwrap();
        // Bit-identical across runs: observed inputs are deterministic and
        // the clock is simulated, so there is nothing left to wobble.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.render_seconds.to_bits(), y.render_seconds.to_bits());
            assert_eq!(x.build_seconds.to_bits(), y.build_seconds.to_bits());
            assert_eq!(x.active_pixels, y.active_pixels);
        }
        // The planted law is the VR model form, so the fit must be tight —
        // only the seeded ±3% jitter separates it from exact recovery.
        let fit = VrModel.fit(&a);
        assert!(fit.r_squared() > 0.95, "r2 = {}", fit.r_squared());
    }

    #[test]
    fn composite_study_produces_monotone_pixel_costs() {
        let samples = run_composite_study(NetModel::cluster(), &[4, 8], &[64, 256], 9).unwrap();
        assert_eq!(samples.len(), 4);
        assert!(samples.iter().all(|s| s.wire == CompositeWire::Compressed));
        // For a fixed task count, more pixels must cost more.
        let t4: Vec<&CompositeSample> = samples.iter().filter(|s| s.tasks == 4).collect();
        assert!(t4[1].seconds > t4[0].seconds);
    }

    /// Retried: `comp.seconds < dense.seconds` compares two wall-clock
    /// measurements, and a preemption between them can flip the sign at
    /// these small frame sizes.
    #[test]
    fn wired_study_measures_both_exchanges() {
        let mut last = String::new();
        for attempt in 0..3u64 {
            let samples =
                run_composite_study_wired(NetModel::cluster(), &[8], &[64, 128], 9 + attempt)
                    .unwrap();
            assert_eq!(samples.len(), 6);
            let mut ok = true;
            for side in [64u32, 128u32] {
                let px = (side as f64) * (side as f64);
                let dense = samples
                    .iter()
                    .find(|s| s.pixels == px && s.wire == CompositeWire::Dense)
                    .unwrap();
                let comp = samples
                    .iter()
                    .find(|s| s.pixels == px && s.wire == CompositeWire::Compressed)
                    .unwrap();
                // Identical rank images, so only the exchange differs; RLE ships
                // fewer bytes over the sparse bands and must be cheaper.
                assert_eq!(dense.avg_active_pixels, comp.avg_active_pixels);
                let dfb = samples
                    .iter()
                    .find(|s| s.pixels == px && s.wire == CompositeWire::Dfb)
                    .unwrap();
                assert_eq!(dfb.avg_active_pixels, comp.avg_active_pixels);
                assert!(dfb.seconds > 0.0);
                if comp.seconds >= dense.seconds {
                    ok = false;
                    last = format!("side {side}: {} !< {}", comp.seconds, dense.seconds);
                }
            }
            if ok {
                return;
            }
        }
        panic!("compressed exchange never measured cheaper than dense: {last}");
    }

    /// The ISSUE acceptance criterion: against `mpirt::lockstep` wire timings
    /// of the default (compressed) exchange at 64 ranks, the composite model
    /// fitted on compressed-wire samples must beat the model fitted on
    /// dense-exchange behavior — the seed's systematic miscalibration.
    /// Retried up to five times: sibling tests measuring concurrently can
    /// inflate any single run's timings (retries only execute on failure,
    /// so the headroom is free on a quiet machine).
    #[test]
    fn compressed_fit_beats_dense_fit_on_rle_wire_at_64_ranks() {
        use crate::models::{CompositeModel, CompressedCompositeModel};
        let net = NetModel::cluster();
        let mut last = (0.0f64, 0.0f64);
        for attempt in 0..5u64 {
            let train = run_composite_study_wired(net, &[8, 27, 64], &[96, 160, 224], 11 + attempt)
                .unwrap();
            let dense_train: Vec<CompositeSample> =
                train.iter().filter(|s| s.wire == CompositeWire::Dense).cloned().collect();
            let comp_train: Vec<CompositeSample> =
                train.iter().filter(|s| s.wire == CompositeWire::Compressed).cloned().collect();
            let dense_fit = CompositeModel.fit(&dense_train);
            let comp_fit = CompressedCompositeModel.fit(&comp_train);

            // Held-out compressed-wire measurements at 64 ranks.
            let eval: Vec<CompositeSample> =
                run_composite_study_wired(net, &[64], &[128, 192, 256], 20260805 + attempt)
                    .unwrap()
                    .into_iter()
                    .filter(|s| s.wire == CompositeWire::Compressed)
                    .collect();
            assert_eq!(eval.len(), 3);
            let rel_err = |pred: f64, truth: f64| (pred - truth).abs() / truth;
            let dense_err: f64 = eval
                .iter()
                .map(|s| rel_err(CompositeModel.predict(&dense_fit, s), s.seconds))
                .sum::<f64>()
                / eval.len() as f64;
            let comp_err: f64 = eval
                .iter()
                .map(|s| rel_err(CompressedCompositeModel.predict(&comp_fit, s), s.seconds))
                .sum::<f64>()
                / eval.len() as f64;
            last = (comp_err, dense_err);
            if comp_err < dense_err && comp_err < 0.25 {
                return;
            }
        }
        panic!(
            "compressed-fitted error {:.4} must beat dense-fitted {:.4} and stay under 0.25",
            last.0, last.1
        );
    }

    /// The DFB acceptance criterion: at the 64-task end of the sweep the
    /// asynchronous tile-owner exchange must beat barriered compressed
    /// radix-k on measured large-image time, and models fitted on each
    /// wire's own samples must reproduce that ordering — the crossover is
    /// predictable, not just observable. Aggregated over the two largest
    /// image sizes and retried up to three times: the claim is about a quiet
    /// measurement, not any single noisy one.
    #[test]
    fn dfb_beats_radix_k_at_scale_and_the_fits_predict_it() {
        use crate::models::{CompressedCompositeModel, DfbCompositeModel};
        let net = NetModel::cluster();
        let big = 512.0 * 512.0;
        let mut last = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for attempt in 0..3u64 {
            let train =
                run_composite_study_wired(net, &[2, 8, 64], &[256, 512, 1024], 31 + attempt)
                    .unwrap();
            let rle: Vec<CompositeSample> =
                train.iter().filter(|s| s.wire == CompositeWire::Compressed).cloned().collect();
            let dfb: Vec<CompositeSample> =
                train.iter().filter(|s| s.wire == CompositeWire::Dfb).cloned().collect();
            let at_scale = |v: &[CompositeSample]| {
                v.iter()
                    .filter(|s| s.tasks == 64 && s.pixels >= big)
                    .map(|s| s.seconds)
                    .sum::<f64>()
            };
            let (meas_dfb, meas_rle) = (at_scale(&dfb), at_scale(&rle));

            // Each wire's model, fitted on that wire's measurements only,
            // evaluated on the same at-scale configurations.
            let rle_fit = CompressedCompositeModel.fit(&rle);
            let dfb_fit = DfbCompositeModel.fit(&dfb);
            let pred_dfb: f64 = dfb
                .iter()
                .filter(|s| s.tasks == 64 && s.pixels >= big)
                .map(|s| DfbCompositeModel.predict(&dfb_fit, s))
                .sum();
            let pred_rle: f64 = rle
                .iter()
                .filter(|s| s.tasks == 64 && s.pixels >= big)
                .map(|s| CompressedCompositeModel.predict(&rle_fit, s))
                .sum();
            last = (meas_dfb, meas_rle, pred_dfb, pred_rle);
            if meas_dfb < meas_rle && pred_dfb < pred_rle {
                return;
            }
        }
        panic!(
            "DFB should win at 64 tasks: measured {:.6} !< {:.6} or predicted {:.6} !< {:.6}",
            last.0, last.1, last.2, last.3
        );
    }

    #[test]
    fn synth_images_shrink_with_tasks() {
        let a = synth_rank_images(1, 64, 3);
        let b = synth_rank_images(8, 64, 3);
        let ap = |imgs: &[RankImage]| {
            imgs.iter().map(|i| i.active_pixels()).sum::<usize>() as f64 / imgs.len() as f64
        };
        assert!(ap(&b) < ap(&a));
    }
}
