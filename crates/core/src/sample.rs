//! Experiment records: one row per rendering test (the corpus the models
//! are fitted on), with CSV serialization for offline analysis.

/// Which rendering technique a sample measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RendererKind {
    /// Ray tracing (BVH build + per-pixel traversal).
    RayTracing,
    /// Tile-binned rasterization.
    Rasterization,
    /// Ray-cast volume rendering.
    VolumeRendering,
}

impl RendererKind {
    /// Stable lowercase name used in CSV rows and report tables.
    pub fn name(&self) -> &'static str {
        match self {
            RendererKind::RayTracing => "ray_tracing",
            RendererKind::Rasterization => "rasterization",
            RendererKind::VolumeRendering => "volume_rendering",
        }
    }

    /// Inverse of [`RendererKind::name`].
    pub fn parse(s: &str) -> Option<RendererKind> {
        match s {
            "ray_tracing" => Some(RendererKind::RayTracing),
            "rasterization" => Some(RendererKind::Rasterization),
            "volume_rendering" => Some(RendererKind::VolumeRendering),
            _ => None,
        }
    }
}

/// One single-node rendering measurement with its observed model inputs.
#[derive(Debug, Clone)]
pub struct RenderSample {
    /// Renderer that produced the measurement.
    pub renderer: RendererKind,
    /// Device name ("serial" / "parallel").
    pub device: String,
    /// Simulation-code label the data came from.
    pub source: String,
    /// O: objects (triangles or cells).
    pub objects: f64,
    /// AP: active pixels.
    pub active_pixels: f64,
    /// VO: visible objects (rasterization).
    pub visible_objects: f64,
    /// PPT: pixels per triangle (rasterization).
    pub pixels_per_triangle: f64,
    /// SPR: samples per ray (volume rendering).
    pub samples_per_ray: f64,
    /// CS: cells spanned (volume rendering).
    pub cells_spanned: f64,
    /// Full image pixel count.
    pub pixels: f64,
    /// MPI tasks of the configuration the sample belongs to.
    pub tasks: usize,
    /// Acceleration-structure build seconds (ray tracing; 0 otherwise).
    pub build_seconds: f64,
    /// Render seconds (excluding build).
    pub render_seconds: f64,
}

impl RenderSample {
    /// Column header matching [`RenderSample::to_csv_row`].
    pub const CSV_HEADER: &'static str = "renderer,device,source,objects,active_pixels,visible_objects,pixels_per_triangle,samples_per_ray,cells_spanned,pixels,tasks,build_seconds,render_seconds";

    /// Serialize as one CSV row in `CSV_HEADER` column order.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.renderer.name(),
            self.device,
            self.source,
            self.objects,
            self.active_pixels,
            self.visible_objects,
            self.pixels_per_triangle,
            self.samples_per_ray,
            self.cells_spanned,
            self.pixels,
            self.tasks,
            self.build_seconds,
            self.render_seconds
        )
    }

    /// Parse a row written by [`RenderSample::to_csv_row`].
    pub fn from_csv_row(row: &str) -> Option<RenderSample> {
        let f: Vec<&str> = row.split(',').collect();
        if f.len() != 13 {
            return None;
        }
        Some(RenderSample {
            renderer: RendererKind::parse(f[0])?,
            device: f[1].to_string(),
            source: f[2].to_string(),
            objects: f[3].parse().ok()?,
            active_pixels: f[4].parse().ok()?,
            visible_objects: f[5].parse().ok()?,
            pixels_per_triangle: f[6].parse().ok()?,
            samples_per_ray: f[7].parse().ok()?,
            cells_spanned: f[8].parse().ok()?,
            pixels: f[9].parse().ok()?,
            tasks: f[10].parse().ok()?,
            build_seconds: f[11].parse().ok()?,
            render_seconds: f[12].parse().ok()?,
        })
    }
}

/// Which exchange the wire bytes of a compositing measurement traveled as:
/// dense full-image fragments, run-length-compressed active-pixel spans
/// (the default wire path since the RLE compositing change), or the
/// asynchronous per-tile Distributed FrameBuffer exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CompositeWire {
    /// Full-image fragments, uncompressed.
    Dense,
    #[default]
    /// Run-length-encoded active-pixel spans.
    Compressed,
    /// Message-driven per-tile exchange (compressed fragments, no barrier).
    Dfb,
}

impl CompositeWire {
    /// Stable lowercase name used in CSV rows.
    pub fn name(&self) -> &'static str {
        match self {
            CompositeWire::Dense => "dense",
            CompositeWire::Compressed => "compressed",
            CompositeWire::Dfb => "dfb",
        }
    }

    /// Inverse of [`CompositeWire::name`].
    pub fn parse(s: &str) -> Option<CompositeWire> {
        match s {
            "dense" => Some(CompositeWire::Dense),
            "compressed" => Some(CompositeWire::Compressed),
            "dfb" => Some(CompositeWire::Dfb),
            _ => None,
        }
    }
}

/// One image-compositing measurement.
#[derive(Debug, Clone)]
pub struct CompositeSample {
    /// Ranks participating in the exchange.
    pub tasks: usize,
    /// Full image pixel count.
    pub pixels: f64,
    /// Average active pixels per rank.
    pub avg_active_pixels: f64,
    /// Simulated compositing seconds (compute measured + wire modeled).
    pub seconds: f64,
    /// Exchange the measurement used on the wire.
    pub wire: CompositeWire,
}

impl CompositeSample {
    /// Column header matching [`CompositeSample::to_csv_row`].
    pub const CSV_HEADER: &'static str = "tasks,pixels,avg_active_pixels,seconds,wire";

    /// Serialize as one CSV row in `CSV_HEADER` column order.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{}",
            self.tasks,
            self.pixels,
            self.avg_active_pixels,
            self.seconds,
            self.wire.name()
        )
    }

    /// Parse a row. Legacy 4-column rows (no `wire` field) predate the tag
    /// and were produced by the compressed-by-default radix-k study, so they
    /// parse as [`CompositeWire::Compressed`].
    pub fn from_csv_row(row: &str) -> Option<CompositeSample> {
        let f: Vec<&str> = row.split(',').collect();
        if f.len() != 4 && f.len() != 5 {
            return None;
        }
        Some(CompositeSample {
            tasks: f[0].parse().ok()?,
            pixels: f[1].parse().ok()?,
            avg_active_pixels: f[2].parse().ok()?,
            seconds: f[3].parse().ok()?,
            wire: match f.get(4) {
                Some(w) => CompositeWire::parse(w)?,
                None => CompositeWire::Compressed,
            },
        })
    }
}

/// One per-pass timing measurement from the render-graph executor: a pass
/// name, the work units the pass reported (occlusion probes cast, shadow
/// rays, live pixels shaded), and the measured seconds. These are the refit
/// features behind pass-granular admission — the scheduler predicts what an
/// individual pass would cost before deciding to run or shed it.
#[derive(Debug, Clone)]
pub struct PassSample {
    /// Graph pass name (e.g. "ambient_occlusion", "shadows").
    pub pass: String,
    /// Work units the pass reported to the executor.
    pub work_units: f64,
    /// Measured pass seconds.
    pub seconds: f64,
}

impl PassSample {
    /// Column header matching [`PassSample::to_csv_row`].
    pub const CSV_HEADER: &'static str = "pass,work_units,seconds";

    /// Serialize as one CSV row in `CSV_HEADER` column order.
    pub fn to_csv_row(&self) -> String {
        format!("{},{},{}", self.pass, self.work_units, self.seconds)
    }

    /// Parse a row written by [`PassSample::to_csv_row`].
    pub fn from_csv_row(row: &str) -> Option<PassSample> {
        let f: Vec<&str> = row.split(',').collect();
        if f.len() != 3 || f[0].is_empty() {
            return None;
        }
        Some(PassSample {
            pass: f[0].to_string(),
            work_units: f[1].parse().ok()?,
            seconds: f[2].parse().ok()?,
        })
    }
}

/// One proxy-frame timing measurement at a LOD ladder level: the level, the
/// cell count of the decimated geometry, and the measured frame seconds.
/// These feed the fitted `lod_half` / `lod_quarter` models the scheduler
/// prices fidelity rungs with.
#[derive(Debug, Clone)]
pub struct LodSample {
    /// Ladder level (1 = half, 2 = quarter).
    pub level: u8,
    /// Cells (tris / tets / grid cells) rendered at this level.
    pub cells: f64,
    /// Measured frame seconds.
    pub seconds: f64,
}

impl LodSample {
    /// Column header matching [`LodSample::to_csv_row`].
    pub const CSV_HEADER: &'static str = "level,cells,seconds";

    /// Serialize as one CSV row in `CSV_HEADER` column order.
    pub fn to_csv_row(&self) -> String {
        format!("{},{},{}", self.level, self.cells, self.seconds)
    }

    /// Parse a row written by [`LodSample::to_csv_row`].
    pub fn from_csv_row(row: &str) -> Option<LodSample> {
        let f: Vec<&str> = row.split(',').collect();
        if f.len() != 3 {
            return None;
        }
        Some(LodSample {
            level: f[0].parse().ok()?,
            cells: f[1].parse().ok()?,
            seconds: f[2].parse().ok()?,
        })
    }
}

/// Write samples to CSV text.
pub fn to_csv(samples: &[RenderSample]) -> String {
    let mut out = String::from(RenderSample::CSV_HEADER);
    out.push('\n');
    for s in samples {
        out.push_str(&s.to_csv_row());
        out.push('\n');
    }
    out
}

/// Parse CSV text (header optional).
pub fn from_csv(text: &str) -> Vec<RenderSample> {
    text.lines()
        .filter(|l| !l.is_empty() && !l.starts_with("renderer,"))
        .filter_map(RenderSample::from_csv_row)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RenderSample {
        RenderSample {
            renderer: RendererKind::RayTracing,
            device: "parallel".into(),
            source: "kripke".into(),
            objects: 12000.0,
            active_pixels: 3000.5,
            visible_objects: 100.0,
            pixels_per_triangle: 4.0,
            samples_per_ray: 0.0,
            cells_spanned: 0.0,
            pixels: 65536.0,
            tasks: 8,
            build_seconds: 0.01,
            render_seconds: 0.05,
        }
    }

    #[test]
    fn csv_round_trip() {
        let s = sample();
        let row = s.to_csv_row();
        let back = RenderSample::from_csv_row(&row).unwrap();
        assert_eq!(back.renderer, s.renderer);
        assert_eq!(back.device, s.device);
        assert_eq!(back.objects, s.objects);
        assert_eq!(back.tasks, s.tasks);
        assert_eq!(back.render_seconds, s.render_seconds);
    }

    #[test]
    fn csv_text_round_trip_with_header() {
        let text = to_csv(&[sample(), sample()]);
        let parsed = from_csv(&text);
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn malformed_rows_skipped() {
        assert!(RenderSample::from_csv_row("nope").is_none());
        assert!(RenderSample::from_csv_row("bad,kind,x,1,2,3,4,5,6,7,8,9,10").is_none());
    }

    #[test]
    fn composite_round_trip() {
        let c = CompositeSample {
            tasks: 16,
            pixels: 1e6,
            avg_active_pixels: 4e4,
            seconds: 0.02,
            wire: CompositeWire::Dense,
        };
        let back = CompositeSample::from_csv_row(&c.to_csv_row()).unwrap();
        assert_eq!(back.tasks, 16);
        assert_eq!(back.seconds, 0.02);
        assert_eq!(back.wire, CompositeWire::Dense);
    }

    #[test]
    fn legacy_composite_rows_parse_as_compressed() {
        // Pre-tag corpora came from the compressed-by-default radix-k study.
        let back = CompositeSample::from_csv_row("16,1000000,40000,0.02").unwrap();
        assert_eq!(back.wire, CompositeWire::Compressed);
        assert_eq!(back.tasks, 16);
        assert!(CompositeSample::from_csv_row("16,1e6,4e4,0.02,teleported").is_none());
        assert!(CompositeSample::from_csv_row("16,1e6,4e4").is_none());
    }

    #[test]
    fn dfb_wire_rows_round_trip() {
        let c = CompositeSample {
            tasks: 64,
            pixels: 65536.0,
            avg_active_pixels: 9000.0,
            seconds: 0.001,
            wire: CompositeWire::Dfb,
        };
        let back = CompositeSample::from_csv_row(&c.to_csv_row()).unwrap();
        assert_eq!(back.wire, CompositeWire::Dfb);
        assert_eq!(CompositeWire::parse("dfb"), Some(CompositeWire::Dfb));
    }

    #[test]
    fn pass_sample_round_trip() {
        let p =
            PassSample { pass: "ambient_occlusion".into(), work_units: 48000.0, seconds: 0.003 };
        let back = PassSample::from_csv_row(&p.to_csv_row()).unwrap();
        assert_eq!(back.pass, "ambient_occlusion");
        assert_eq!(back.work_units, 48000.0);
        assert_eq!(back.seconds, 0.003);
        assert!(PassSample::from_csv_row(",1,2").is_none());
        assert!(PassSample::from_csv_row("shadows,abc,2").is_none());
        assert!(PassSample::from_csv_row("shadows,1").is_none());
    }

    #[test]
    fn renderer_names_round_trip() {
        for k in
            [RendererKind::RayTracing, RendererKind::Rasterization, RendererKind::VolumeRendering]
        {
            assert_eq!(RendererKind::parse(k.name()), Some(k));
        }
        assert_eq!(RendererKind::parse("quantum"), None);
    }
}
