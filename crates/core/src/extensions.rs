//! Chapter VI extensions: the future directions the dissertation sketches,
//! implemented.
//!
//! * [`SliceModel`] — "Modeling Other Algorithms": the slicing filter's cost
//!   model (`T = c0 * cells_intersected + c1`), fitted from measured slices
//!   the same way the rendering models are.
//! * [`AdaptivePlanner`] — "Adaptive Infrastructure": given fitted models
//!   and a constraint set (time budget, memory cap), choose the rendering
//!   configuration a simulation should run — the layer the dissertation says
//!   should sit between simulations and visualization.

use crate::feasibility::ModelSet;
use crate::mapping::{MappingConstants, RenderConfig};
use crate::regression::LinearRegression;
use crate::sample::RendererKind;
use mesh::datasets::{field_grid, FieldKind};
use mesh::slice::slice_grid;
use mpirt::event::EventWorld;
use mpirt::NetModel;
use rand::{Rng, SeedableRng};
use vecmath::Vec3;

/// One slicing measurement.
#[derive(Debug, Clone)]
pub struct SliceSample {
    /// Cells the slice plane intersected.
    pub cells_intersected: f64,
    /// Measured seconds for the slice.
    pub seconds: f64,
}

/// The slicing model `T_SLICE = c0 * cells_intersected + c1`.
#[derive(Debug, Clone)]
// xlint::allow(X010): calibrated fresh per run on the live grid (extension
// study, not part of the persisted ModelSet format)
pub struct SliceModel {
    /// The fitted regression `T = c0 * cells + c1`.
    pub fit: LinearRegression,
}

/// The plane sweep every slice calibration visits per grid size: two
/// axis-aligned planes and two oblique ones, so the intersected-cell counts
/// spread out even at a single grid size.
fn slice_plane_sweep() -> [(Vec3, Vec3); 4] {
    [
        (Vec3::ZERO, Vec3::X),
        (Vec3::new(0.3, 0.0, 0.0), Vec3::X),
        (Vec3::ZERO, Vec3::new(1.0, 1.0, 0.2).normalized()),
        (Vec3::new(0.0, -0.2, 0.1), Vec3::new(0.2, 1.0, 1.0).normalized()),
    ]
}

impl SliceModel {
    /// Fit the slicing model from measured samples (pure; no clock involved).
    pub fn fit_samples(samples: &[SliceSample]) -> SliceModel {
        let xs: Vec<Vec<f64>> = samples.iter().map(|s| vec![s.cells_intersected, 1.0]).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.seconds).collect();
        SliceModel { fit: LinearRegression::fit(&xs, &ys) }
    }

    /// Calibrate against a deterministic simulated clock: slice each grid for
    /// its (byte-deterministic) intersected-cell count, then charge a planted
    /// per-cell cost — with a seeded ±3% jitter standing in for measurement
    /// noise — to an [`mpirt::event::EventWorld`]. Fit-quality tests use
    /// this path; it never reads the wall clock, so it needs no warm-up runs
    /// and no min-of-N retries. [`SliceModel::calibrate_wall_clock`] keeps
    /// the real-measurement path for the opt-in smoke test.
    pub fn calibrate(sizes: &[usize]) -> (SliceModel, Vec<SliceSample>) {
        let mut world = EventWorld::new(1, NetModel::cluster());
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x511C_E5EED ^ sizes.len() as u64);
        let mut samples = Vec::new();
        for &n in sizes {
            let grid = field_grid(FieldKind::Turbulence, [n; 3]);
            for (origin, normal) in slice_plane_sweep() {
                // xlint::allow(X014): slice_grid only panics when the named
                // point field is absent; field_grid above always adds "scalar".
                let out = slice_grid(&grid, "scalar", origin, normal);
                let jitter = 1.0 + 0.03 * (2.0 * rng.gen::<f64>() - 1.0);
                let before = world.now(0);
                world.compute(0, (3.0e-8 * out.cells_intersected as f64 + 1.0e-5) * jitter);
                samples.push(SliceSample {
                    cells_intersected: out.cells_intersected as f64,
                    seconds: world.now(0) - before,
                });
            }
        }
        (Self::fit_samples(&samples), samples)
    }

    /// Measure real wall-clock slices across grid sizes and plane
    /// orientations, then fit: one warmed measurement per configuration, no
    /// retries — callers opting into wall-clock calibration own the noise.
    pub fn calibrate_wall_clock(sizes: &[usize]) -> (SliceModel, Vec<SliceSample>) {
        let mut samples = Vec::new();
        for &n in sizes {
            let grid = field_grid(FieldKind::Turbulence, [n; 3]);
            for (origin, normal) in slice_plane_sweep() {
                // xlint::allow(X014): slice_grid only panics when the named
                // point field is absent; field_grid above always adds "scalar".
                let _warm = slice_grid(&grid, "scalar", origin, normal);
                // xlint::allow(X014): same invariant as the warm-up line above.
                let out = slice_grid(&grid, "scalar", origin, normal);
                samples.push(SliceSample {
                    cells_intersected: out.cells_intersected as f64,
                    seconds: out.seconds,
                });
            }
        }
        (Self::fit_samples(&samples), samples)
    }

    /// Predicted seconds to slice a grid intersecting ~`cells` cells.
    pub fn predict(&self, cells: f64) -> f64 {
        self.fit.predict(&[cells, 1.0]).max(0.0)
    }

    /// A-priori estimate for an N^3 grid (plane hits O(N^2) cells; the 1.5
    /// factor covers oblique planes).
    pub fn predict_for_grid(&self, n: usize) -> f64 {
        self.predict(1.5 * (n * n) as f64)
    }
}

/// Constraints a simulation registers with the adaptive layer
/// (Section 6.3's list: time, memory, output requirements).
#[derive(Debug, Clone)]
pub struct Constraints {
    /// Maximum seconds per visualization invocation.
    pub time_budget_s: f64,
    /// Maximum bytes of visualization scratch memory.
    pub memory_limit_bytes: usize,
    /// Images wanted per invocation.
    pub images: usize,
    /// Smallest acceptable image side.
    pub min_image_side: u32,
    /// Largest useful image side.
    pub max_image_side: u32,
}

/// What the planner decided.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Chosen renderer.
    pub renderer: RendererKind,
    /// Chosen image side (pixels per axis).
    pub image_side: u32,
    /// Predicted total seconds for the invocation.
    pub expected_seconds: f64,
    /// Predicted scratch-memory bytes.
    pub expected_bytes: usize,
}

/// The adaptive layer: owns fitted models and picks configurations.
pub struct AdaptivePlanner {
    /// Fitted single-node + compositing models.
    pub set: ModelSet,
    /// Workload-mapping constants for feature estimation.
    pub constants: MappingConstants,
}

impl AdaptivePlanner {
    /// Build a planner from fitted models and mapping constants.
    pub fn new(set: ModelSet, constants: MappingConstants) -> AdaptivePlanner {
        AdaptivePlanner { set, constants }
    }

    /// Estimated scratch bytes for a renderer at an image size (framebuffer +
    /// renderer-specific buffers; volume rendering pays the sample slab).
    fn bytes_estimate(&self, renderer: RendererKind, side: u32, cells_per_task: usize) -> usize {
        let px = side as usize * side as usize;
        match renderer {
            // Color + depth + hit records (~48 B/ray) plus BVH (~64 B/tri).
            RendererKind::RayTracing => px * 48 + 12 * cells_per_task * cells_per_task * 64,
            // Tiles + bins.
            RendererKind::Rasterization => px * 24 + 12 * cells_per_task * cells_per_task * 8,
            // Framebuffer + one pass of the sample slab (400 samples deep).
            RendererKind::VolumeRendering => px * 20 + px * 400 * 4,
        }
    }

    /// Choose, for each candidate renderer, the largest image side whose
    /// total predicted cost fits the constraints; return the best plan
    /// (largest image; ties broken by speed). `None` if nothing fits.
    pub fn plan(&self, cells_per_task: usize, tasks: usize, c: &Constraints) -> Option<Plan> {
        let mut best: Option<Plan> = None;
        for renderer in
            [RendererKind::RayTracing, RendererKind::Rasterization, RendererKind::VolumeRendering]
        {
            // Binary search the largest feasible image side.
            let feasible = |side: u32| -> Option<Plan> {
                let cfg = RenderConfig {
                    renderer,
                    cells_per_task,
                    pixels: side as usize * side as usize,
                    tasks,
                };
                let build = self.set.predict_build_seconds(&cfg, &self.constants);
                let per_frame = self.set.predict_frame_seconds(&cfg, &self.constants);
                let total = build + per_frame * c.images as f64;
                let bytes = self.bytes_estimate(renderer, side, cells_per_task);
                (total <= c.time_budget_s && bytes <= c.memory_limit_bytes).then_some(Plan {
                    renderer,
                    image_side: side,
                    expected_seconds: total,
                    expected_bytes: bytes,
                })
            };
            let (mut lo, mut hi) = (c.min_image_side, c.max_image_side);
            // Carry the last feasible plan through the binary search instead
            // of re-probing (and unwrapping) at the end.
            let Some(mut plan) = feasible(lo) else {
                continue;
            };
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if let Some(p) = feasible(mid) {
                    plan = p;
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            best = match best {
                None => Some(plan),
                Some(b)
                    if plan.image_side > b.image_side
                        || (plan.image_side == b.image_side
                            && plan.expected_seconds < b.expected_seconds) =>
                {
                    Some(plan)
                }
                keep => keep,
            };
        }
        best
    }

    /// Fraction of the budget a fixed configuration would consume — the
    /// "registered constraint" check a simulation can make every cycle.
    pub fn budget_fraction(&self, cfg: &RenderConfig, c: &Constraints) -> f64 {
        let t = self.set.predict_build_seconds(cfg, &self.constants)
            + self.set.predict_frame_seconds(cfg, &self.constants) * c.images as f64;
        t / c.time_budget_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::FittedLinearModel;

    #[test]
    fn slice_model_fits_and_predicts() {
        let (model, samples) = SliceModel::calibrate(&[12, 20, 28]);
        assert!(samples.len() >= 12);
        // The simulated clock charges the planted law plus a seeded ±3%
        // jitter, so the fit must be tight — and deterministic, so this
        // threshold can be strict without any retry loop.
        assert!(model.fit.r_squared > 0.95, "R^2 = {}", model.fit.r_squared);
        // Bigger grids cost more.
        assert!(model.predict_for_grid(64) > model.predict_for_grid(16));
        assert!(model.predict(0.0) >= 0.0);
        // Same sizes, same clock: calibration is bit-reproducible.
        let (again, _) = SliceModel::calibrate(&[12, 20, 28]);
        assert_eq!(model.fit.coeffs, again.fit.coeffs);
    }

    /// Opt-in wall-clock smoke test (`cargo test -- --ignored`): the real
    /// measurement path still produces a usable fit on a quiet machine. The
    /// threshold is loose because a single unretried wall-clock measurement
    /// owns whatever scheduler noise the machine injects.
    #[test]
    #[ignore = "wall-clock timing; run explicitly with --ignored on a quiet machine"]
    fn slice_model_wall_clock_smoke() {
        let (model, samples) = SliceModel::calibrate_wall_clock(&[12, 20, 28]);
        assert!(samples.len() >= 12);
        assert!(model.fit.r_squared > 0.3, "R^2 = {}", model.fit.r_squared);
        assert!(model.predict_for_grid(64) > model.predict_for_grid(16));
    }

    fn toy_set() -> ModelSet {
        let fit = |coeffs: Vec<f64>| FittedLinearModel {
            name: "toy",
            fit: LinearRegression::with_stats(coeffs, 1.0, 0.0, 9),
            feature_names: vec![],
        };
        ModelSet {
            device: "toy".into(),
            rt: fit(vec![2e-9, 1e-8, 1e-3]),
            rt_build: fit(vec![2e-8, 1e-3]),
            rast: fit(vec![4e-9, 4e-10, 1e-3]),
            vr: fit(vec![2e-10, 1e-9, 1e-2]),
            comp: fit(vec![2e-8, 5e-8, 1e-3]),
            comp_compressed: None,
            comp_dfb: None,
            pass_ao: None,
            pass_shadows: None,
            lod_half: None,
            lod_quarter: None,
        }
    }

    #[test]
    fn planner_respects_time_budget() {
        let planner = AdaptivePlanner::new(toy_set(), MappingConstants::default());
        let c = Constraints {
            time_budget_s: 10.0,
            memory_limit_bytes: usize::MAX,
            images: 100,
            min_image_side: 128,
            max_image_side: 8192,
        };
        let plan = planner.plan(200, 32, &c).expect("should fit something");
        assert!(plan.expected_seconds <= 10.0);
        assert!(plan.image_side >= 128);
        // A tighter budget must never produce a *larger* image.
        let tight = Constraints { time_budget_s: 0.5, ..c.clone() };
        if let Some(p2) = planner.plan(200, 32, &tight) {
            assert!(p2.image_side <= plan.image_side);
            assert!(p2.expected_seconds <= 0.5);
        }
    }

    #[test]
    fn planner_respects_memory_cap() {
        let planner = AdaptivePlanner::new(toy_set(), MappingConstants::default());
        let c = Constraints {
            time_budget_s: 1e9,
            memory_limit_bytes: 64 << 20, // 64 MiB
            images: 1,
            min_image_side: 64,
            max_image_side: 8192,
        };
        let plan = planner.plan(100, 8, &c).expect("fits");
        assert!(plan.expected_bytes <= 64 << 20);
        // Volume rendering's sample slab makes it memory-heavy: at this cap
        // the chosen side must be well below the max.
        assert!(plan.image_side < 8192);
    }

    #[test]
    fn planner_returns_none_when_nothing_fits() {
        let planner = AdaptivePlanner::new(toy_set(), MappingConstants::default());
        let c = Constraints {
            time_budget_s: 1e-9,
            memory_limit_bytes: 1,
            images: 1000,
            min_image_side: 512,
            max_image_side: 4096,
        };
        assert!(planner.plan(300, 64, &c).is_none());
    }

    #[test]
    fn budget_fraction_scales_with_images() {
        let planner = AdaptivePlanner::new(toy_set(), MappingConstants::default());
        let cfg = RenderConfig {
            renderer: RendererKind::Rasterization,
            cells_per_task: 100,
            pixels: 1 << 20,
            tasks: 16,
        };
        let one = Constraints {
            time_budget_s: 60.0,
            memory_limit_bytes: usize::MAX,
            images: 1,
            min_image_side: 64,
            max_image_side: 4096,
        };
        let many = Constraints { images: 100, ..one.clone() };
        let f1 = planner.budget_fraction(&cfg, &one);
        let f100 = planner.budget_fraction(&cfg, &many);
        assert!(f100 > f1 * 50.0);
    }
}
