//! K-fold cross validation — the overfitting guard of Section 5.3 and the
//! source of Tables 13/14 and Figures 11/13.

use crate::regression::LinearRegression;
use crate::stats::AccuracySummary;

/// One held-out prediction: (actual, predicted).
pub type CvPair = (f64, f64);

/// Run k-fold cross validation over generic feature rows. Folds are taken
/// round-robin (deterministic, like the paper's fixed folds). Returns the
/// held-out (actual, predicted) pairs in input order.
pub fn k_fold(xs: &[Vec<f64>], ys: &[f64], k: usize) -> Vec<CvPair> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    let k = k.max(2).min(n.max(2));
    let mut out = vec![(0.0, 0.0); n];
    for fold in 0..k {
        let train_x: Vec<Vec<f64>> =
            (0..n).filter(|i| i % k != fold).map(|i| xs[i].clone()).collect();
        let train_y: Vec<f64> = (0..n).filter(|i| i % k != fold).map(|i| ys[i]).collect();
        if train_x.is_empty() || train_x.len() < train_x[0].len() {
            continue;
        }
        let fit = LinearRegression::fit(&train_x, &train_y);
        for i in (0..n).filter(|i| i % k == fold) {
            out[i] = (ys[i], fit.predict(&xs[i]));
        }
    }
    out
}

/// Cross-validate and summarize in one call (Table 13 row).
pub fn k_fold_accuracy(xs: &[Vec<f64>], ys: &[f64], k: usize) -> AccuracySummary {
    AccuracySummary::from_pairs(&k_fold(xs, ys, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(n: usize, noise: f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let x = (i + 1) as f64;
            let eps = (((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5) * noise;
            xs.push(vec![x, 1.0]);
            ys.push(4.0 * x + 2.0 + eps);
        }
        (xs, ys)
    }

    #[test]
    fn exact_law_predicts_exactly() {
        let (xs, ys) = planted(60, 0.0);
        let pairs = k_fold(&xs, &ys, 3);
        for (a, p) in pairs {
            assert!((a - p).abs() < 1e-8);
        }
        let acc = k_fold_accuracy(&xs, &ys, 3);
        assert_eq!(acc.within_5, 100.0);
        assert!(acc.mean_error_pct < 1e-6);
    }

    #[test]
    fn noise_degrades_accuracy_gracefully() {
        let (xs, ys) = planted(120, 20.0);
        let acc = k_fold_accuracy(&xs, &ys, 3);
        assert!(acc.within_50 > 80.0);
        assert!(acc.mean_error_pct > 0.0);
    }

    #[test]
    fn every_sample_predicted_exactly_once() {
        let (xs, ys) = planted(31, 1.0);
        let pairs = k_fold(&xs, &ys, 3);
        assert_eq!(pairs.len(), 31);
        for (i, (a, _)) in pairs.iter().enumerate() {
            assert_eq!(*a, ys[i]);
        }
    }
}
