//! In situ viability questions (Section 5.9): given fitted models and the
//! configuration mapping, answer the questions the paper closes with —
//! how many images fit in a time budget (Figure 14), and when ray tracing
//! beats rasterization (Figure 15).

use crate::mapping::{map_inputs, MappingConstants, RenderConfig};
use crate::models::{
    CompositeModel, CompressedCompositeModel, DfbCompositeModel, FittedLinearModel, LodModel,
    ModelForm, PassModel, RastModel, RtBuildModel, RtModel, VrModel,
};
use crate::sample::{CompositeSample, CompositeWire, RendererKind};

/// Floor applied to predicted per-frame seconds before they are used as a
/// divisor. A degenerate fit (all-zero coefficients, e.g. from a windowed
/// refit over constant observations) predicts 0 s/frame, and dividing a
/// budget by that yields `INFINITY` — which then poisons feasibility curves
/// and regime maps. One nanosecond is far below anything a real render costs,
/// so the clamp never distorts a healthy model.
pub const MIN_PREDICTED_SECONDS: f64 = 1e-9;

/// Fitted models for one device (plus the shared compositing models).
#[derive(Debug, Clone)]
pub struct ModelSet {
    /// Device label the single-node models were fitted on.
    pub device: String,
    /// Ray-tracing per-frame model.
    pub rt: FittedLinearModel,
    /// Ray-tracing BVH build model.
    pub rt_build: FittedLinearModel,
    /// Rasterization per-frame model.
    pub rast: FittedLinearModel,
    /// Volume-rendering per-frame model.
    pub vr: FittedLinearModel,
    /// Dense-exchange compositing model (the paper's form).
    pub comp: FittedLinearModel,
    /// Compressed-exchange compositing model, fitted on RLE wire timings.
    /// When present it takes over frame predictions, matching the
    /// compressed-by-default wire path; `None` falls back to `comp` (and is
    /// what legacy persisted sets load as).
    pub comp_compressed: Option<FittedLinearModel>,
    /// Overlapped-mode compositing model, fitted on Distributed FrameBuffer
    /// wire timings. Only consulted when a caller asks for the
    /// [`CompositeWire::Dfb`] wire; `None` falls back through
    /// `comp_compressed` to `comp`.
    pub comp_dfb: Option<FittedLinearModel>,
    /// Per-pass model for the ray tracer's `ambient_occlusion` graph pass
    /// (`T = c0*W + c1` over reported work units). `None` until per-pass
    /// timings from the graph executor have been observed; pass-granular
    /// admission falls back to whole-frame rungs without it.
    pub pass_ao: Option<FittedLinearModel>,
    /// Per-pass model for the ray tracer's `shadows` graph pass; see
    /// [`ModelSet::pass_ao`].
    pub pass_shadows: Option<FittedLinearModel>,
    /// Per-level model for rendering the LOD ladder's level-1 (half-cells)
    /// proxy (`T = c0*Cells + c1`). `None` until proxy-frame timings have
    /// been observed; LOD rungs price at the full-resolution frame without
    /// it, so admission never banks on unmeasured savings.
    pub lod_half: Option<FittedLinearModel>,
    /// Per-level model for the level-2 (quarter-cells) proxy; see
    /// [`ModelSet::lod_half`].
    pub lod_quarter: Option<FittedLinearModel>,
}

impl ModelSet {
    /// Predicted seconds for one *frame* of a multi-task configuration:
    /// `max_tasks(T_LR) + T_COMP` with all tasks identical (weak scaling),
    /// excluding any amortized acceleration-structure build.
    ///
    /// Negative per-term predictions are clamped to 0 so downstream curves
    /// stay physical, but a clamp engaging means the underlying model is
    /// invalid — callers that *install* models (refit loops) should gate on
    /// [`implausible_models`](ModelSet::implausible_models) rather than rely
    /// on the clamp.
    pub fn predict_frame_seconds(&self, cfg: &RenderConfig, k: &MappingConstants) -> f64 {
        self.predict_frame_seconds_wire(cfg, k, CompositeWire::Compressed)
    }

    /// [`predict_frame_seconds`](ModelSet::predict_frame_seconds) for an
    /// explicit compositing wire. Missing per-wire models degrade along
    /// `comp_dfb -> comp_compressed -> comp`, so a set without the newer
    /// fits predicts exactly what it always did.
    pub fn predict_frame_seconds_wire(
        &self,
        cfg: &RenderConfig,
        k: &MappingConstants,
        wire: CompositeWire,
    ) -> f64 {
        let inputs = map_inputs(cfg, k);
        let local = match cfg.renderer {
            RendererKind::RayTracing => RtModel.predict(&self.rt, &inputs),
            RendererKind::Rasterization => RastModel.predict(&self.rast, &inputs),
            RendererKind::VolumeRendering => VrModel.predict(&self.vr, &inputs),
        };
        let sample = CompositeSample {
            tasks: cfg.tasks,
            pixels: cfg.pixels as f64,
            avg_active_pixels: inputs.active_pixels,
            seconds: 0.0,
            wire,
        };
        let comp = self.predict_composite_seconds(&sample, wire);
        local.max(0.0) + comp.max(0.0)
    }

    /// Predicted compositing seconds for one sample shape under `wire`,
    /// falling back through the model chain when newer fits are absent.
    pub fn predict_composite_seconds(&self, sample: &CompositeSample, wire: CompositeWire) -> f64 {
        if wire == CompositeWire::Dfb {
            if let Some(m) = &self.comp_dfb {
                return DfbCompositeModel.predict(m, sample);
            }
        }
        match (&self.comp_compressed, wire) {
            (Some(m), CompositeWire::Compressed | CompositeWire::Dfb) => {
                CompressedCompositeModel.predict(m, sample)
            }
            _ => CompositeModel.predict(&self.comp, sample),
        }
    }

    /// Names of models that fail the paper's plausibility criterion
    /// (a negative coefficient: rendering work cannot have negative marginal
    /// cost). Empty for a valid set. Refit loops use this to reject a bad
    /// re-solve instead of silently scheduling on clamped-to-zero
    /// predictions.
    pub fn implausible_models(&self) -> Vec<&'static str> {
        let mut bad = Vec::new();
        for m in [&self.rt, &self.rt_build, &self.rast, &self.vr, &self.comp] {
            if !m.fit.all_coeffs_nonnegative() {
                bad.push(m.name);
            }
        }
        for m in [
            &self.comp_compressed,
            &self.comp_dfb,
            &self.pass_ao,
            &self.pass_shadows,
            &self.lod_half,
            &self.lod_quarter,
        ]
        .into_iter()
        .flatten()
        {
            if !m.fit.all_coeffs_nonnegative() {
                bad.push(m.name);
            }
        }
        bad
    }

    /// Predicted seconds a named graph pass would cost at `work_units`, when
    /// its per-pass model has been fitted (`None` otherwise — the caller
    /// falls back to whole-frame degradation). Clamped at 0 like the frame
    /// predictors.
    pub fn predict_pass_seconds(&self, pass: &str, work_units: f64) -> Option<f64> {
        let (model, slot) = match pass {
            "ambient_occlusion" => (PassModel::AMBIENT_OCCLUSION, &self.pass_ao),
            "shadows" => (PassModel::SHADOWS, &self.pass_shadows),
            _ => return None,
        };
        slot.as_ref().map(|m| model.predict(m, work_units).max(0.0))
    }

    /// Predicted frame seconds for rendering the LOD ladder's `level` proxy
    /// at `cells` cells, when that level's model has been fitted (`None`
    /// otherwise — the caller prices the rung at full resolution instead of
    /// banking on unmeasured savings). Clamped at 0 like the frame
    /// predictors.
    pub fn predict_lod_seconds(&self, level: u8, cells: f64) -> Option<f64> {
        let (model, slot) = match level {
            1 => (LodModel::HALF, &self.lod_half),
            2 => (LodModel::QUARTER, &self.lod_quarter),
            _ => return None,
        };
        slot.as_ref().map(|m| model.predict(m, cells).max(0.0))
    }

    /// True when every model in the set passes the plausibility criterion.
    pub fn all_plausible(&self) -> bool {
        self.implausible_models().is_empty()
    }

    /// Predicted one-time BVH build seconds (ray tracing only; 0 otherwise).
    pub fn predict_build_seconds(&self, cfg: &RenderConfig, k: &MappingConstants) -> f64 {
        if cfg.renderer == RendererKind::RayTracing {
            RtBuildModel.predict(&self.rt_build, &map_inputs(cfg, k)).max(0.0)
        } else {
            0.0
        }
    }
}

/// Figure 14: number of images renderable inside `budget_seconds`, per
/// image size, for one renderer. BVH builds amortize: built once, then every
/// frame reuses it.
pub fn images_in_budget(
    set: &ModelSet,
    k: &MappingConstants,
    renderer: RendererKind,
    cells_per_task: usize,
    tasks: usize,
    image_sides: &[u32],
    budget_seconds: f64,
) -> Vec<(u32, f64)> {
    image_sides
        .iter()
        .map(|&side| {
            let cfg = RenderConfig {
                renderer,
                cells_per_task,
                pixels: (side as usize) * (side as usize),
                tasks,
            };
            let build = set.predict_build_seconds(&cfg, k);
            let per_frame = set.predict_frame_seconds(&cfg, k).max(MIN_PREDICTED_SECONDS);
            let remaining = (budget_seconds - build).max(0.0);
            (side, remaining / per_frame)
        })
        .collect()
}

/// One cell of the Figure 15 regime map.
#[derive(Debug, Clone, Copy)]
pub struct RatioCell {
    /// Image side of this cell's workload.
    pub image_side: u32,
    /// Cells per axis per task for this cell's workload.
    pub cells_per_task: usize,
    /// `T_RT / T_RAST` for the whole workload (lower = ray tracing wins).
    pub rt_over_rast: f64,
}

/// Figure 15: ratio of predicted ray-tracing to rasterization time for
/// `renders` images (the BVH build amortizes over them), across a grid of
/// image sizes and data sizes.
pub fn rt_vs_rast_map(
    set: &ModelSet,
    k: &MappingConstants,
    tasks: usize,
    renders: usize,
    image_sides: &[u32],
    data_sizes: &[usize],
) -> Vec<RatioCell> {
    let mut out = Vec::with_capacity(image_sides.len() * data_sizes.len());
    for &n in data_sizes {
        for &side in image_sides {
            let pixels = (side as usize) * (side as usize);
            let rt_cfg = RenderConfig {
                renderer: RendererKind::RayTracing,
                cells_per_task: n,
                pixels,
                tasks,
            };
            let ra_cfg = RenderConfig {
                renderer: RendererKind::Rasterization,
                cells_per_task: n,
                pixels,
                tasks,
            };
            let t_rt = set.predict_build_seconds(&rt_cfg, k)
                + renders as f64 * set.predict_frame_seconds(&rt_cfg, k);
            let t_ra =
                (renders as f64 * set.predict_frame_seconds(&ra_cfg, k)).max(MIN_PREDICTED_SECONDS);
            out.push(RatioCell { image_side: side, cells_per_task: n, rt_over_rast: t_rt / t_ra });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regression::LinearRegression;

    /// Hand-built model set with known coefficients (seconds-scale).
    fn toy_models() -> ModelSet {
        let fit = |coeffs: Vec<f64>| LinearRegression::with_stats(coeffs, 1.0, 0.0, 10);
        ModelSet {
            device: "toy".into(),
            rt: FittedLinearModel {
                name: "ray_tracing",
                fit: fit(vec![2e-9, 1e-8, 1e-3]),
                feature_names: vec!["AP*log2(O)", "AP", "1"],
            },
            rt_build: FittedLinearModel {
                name: "ray_tracing_build",
                fit: fit(vec![2e-8, 1e-3]),
                feature_names: vec!["O", "1"],
            },
            rast: FittedLinearModel {
                name: "rasterization",
                fit: fit(vec![4e-9, 4e-10, 1e-3]),
                feature_names: vec!["O", "VO*PPT", "1"],
            },
            vr: FittedLinearModel {
                name: "volume_rendering",
                fit: fit(vec![2e-10, 1e-9, 1e-2]),
                feature_names: vec!["AP*CS", "AP*SPR", "1"],
            },
            comp: FittedLinearModel {
                name: "compositing",
                fit: fit(vec![2e-8, 5e-8, 1e-3]),
                feature_names: vec!["avg(AP)", "Pixels", "1"],
            },
            comp_compressed: None,
            comp_dfb: None,
            pass_ao: None,
            pass_shadows: None,
            lod_half: None,
            lod_quarter: None,
        }
    }

    #[test]
    fn budget_curve_decreases_with_image_size() {
        let set = toy_models();
        let k = MappingConstants::default();
        let curve = images_in_budget(
            &set,
            &k,
            RendererKind::RayTracing,
            200,
            32,
            &[512, 1024, 2048, 4096],
            60.0,
        );
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1 < w[0].1, "bigger images must allow fewer frames: {curve:?}");
        }
        assert!(curve[0].1 > 1.0);
    }

    #[test]
    fn rt_wins_big_data_small_images_and_loses_reverse() {
        let set = toy_models();
        let k = MappingConstants::default();
        let map = rt_vs_rast_map(&set, &k, 32, 100, &[384, 4096], &[100, 500]);
        let get = |side: u32, n: usize| {
            map.iter().find(|c| c.image_side == side && c.cells_per_task == n).unwrap().rt_over_rast
        };
        // Heavier geometry with few pixels: ray tracing relatively better.
        assert!(
            get(384, 500) < get(4096, 100),
            "regime ordering violated: {} vs {}",
            get(384, 500),
            get(4096, 100)
        );
    }

    #[test]
    fn degenerate_models_stay_finite_across_study_grid() {
        // All-zero coefficients predict 0 s/frame; the clamp must keep the
        // feasibility answers finite and non-negative instead of INFINITY.
        let mut set = toy_models();
        for m in [&mut set.rt, &mut set.rt_build, &mut set.rast, &mut set.vr, &mut set.comp] {
            for c in m.fit.coeffs.iter_mut() {
                *c = 0.0;
            }
        }
        let k = MappingConstants::default();
        let sides = [256, 512, 1024, 2048, 4096];
        for renderer in
            [RendererKind::RayTracing, RendererKind::Rasterization, RendererKind::VolumeRendering]
        {
            for &cells in &[50usize, 200, 500] {
                for &budget in &[0.0, 1.0, 60.0] {
                    let curve = images_in_budget(&set, &k, renderer, cells, 32, &sides, budget);
                    for (side, images) in curve {
                        assert!(
                            images.is_finite() && images >= 0.0,
                            "{renderer:?} side {side} budget {budget}: {images}"
                        );
                    }
                }
            }
        }
        let map = rt_vs_rast_map(&set, &k, 32, 100, &sides, &[50, 200, 500]);
        assert!(map.iter().all(|c| c.rt_over_rast.is_finite() && c.rt_over_rast >= 0.0));
    }

    #[test]
    fn compressed_model_takes_over_comp_prediction() {
        let k = MappingConstants::default();
        let cfg = RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 200,
            pixels: 1024 * 1024,
            tasks: 32,
        };
        let mut set = toy_models();
        let dense = set.predict_frame_seconds(&cfg, &k);
        // A compressed model whose wire term is half the dense one (the RLE
        // exchange ships fewer bytes) must lower the frame prediction.
        set.comp_compressed = Some(FittedLinearModel {
            name: "compositing_compressed",
            fit: LinearRegression::with_stats(vec![1e-8, 2.5e-8, 0.0, 1e-3], 1.0, 0.0, 10),
            feature_names: vec!["avg(AP)", "Pixels", "AF", "1"],
        });
        let compressed = set.predict_frame_seconds(&cfg, &k);
        assert!(compressed < dense, "{compressed} !< {dense}");
        // Wiping the compressed model restores the dense prediction exactly.
        set.comp_compressed = None;
        assert_eq!(set.predict_frame_seconds(&cfg, &k).to_bits(), dense.to_bits());
    }

    #[test]
    fn implausible_models_are_reported() {
        let mut set = toy_models();
        assert!(set.all_plausible());
        assert!(set.implausible_models().is_empty());
        set.vr.fit.coeffs[1] = -1e-9;
        set.comp_compressed = Some(FittedLinearModel {
            name: "compositing_compressed",
            fit: LinearRegression::with_stats(vec![1e-8, 2.5e-8, -1e-4, 1e-3], 1.0, 0.0, 10),
            feature_names: vec!["avg(AP)", "Pixels", "AF", "1"],
        });
        set.comp_dfb = Some(FittedLinearModel {
            name: "compositing_dfb",
            fit: LinearRegression::with_stats(vec![1e-8, 1e-9, -2e-6, 1e-4], 1.0, 0.0, 10),
            feature_names: vec!["avg(AP)", "Pixels", "Tasks", "1"],
        });
        assert!(!set.all_plausible());
        assert_eq!(
            set.implausible_models(),
            vec!["volume_rendering", "compositing_compressed", "compositing_dfb"]
        );
    }

    #[test]
    fn dfb_model_routes_only_the_dfb_wire() {
        let k = MappingConstants::default();
        let cfg = RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 200,
            pixels: 1024 * 1024,
            tasks: 32,
        };
        let mut set = toy_models();
        let dense = set.predict_frame_seconds(&cfg, &k);
        set.comp_dfb = Some(FittedLinearModel {
            name: "compositing_dfb",
            fit: LinearRegression::with_stats(vec![1e-8, 2e-8, 2e-6, 1e-4], 1.0, 0.0, 10),
            feature_names: vec!["avg(AP)", "Pixels", "Tasks", "1"],
        });
        // Non-DFB wires are untouched, to the bit.
        assert_eq!(set.predict_frame_seconds(&cfg, &k).to_bits(), dense.to_bits());
        // The DFB wire routes through the overlapped-mode fit.
        let dfb = set.predict_frame_seconds_wire(&cfg, &k, CompositeWire::Dfb);
        assert!(dfb < dense, "{dfb} !< {dense}");
        // Without a DFB fit, the DFB wire degrades to the compressed chain:
        // here comp_compressed is None, so `comp` answers — same as dense.
        set.comp_dfb = None;
        let fallback = set.predict_frame_seconds_wire(&cfg, &k, CompositeWire::Dfb);
        assert_eq!(fallback.to_bits(), dense.to_bits());
    }

    #[test]
    fn volume_prediction_positive() {
        let set = toy_models();
        let k = MappingConstants::default();
        let cfg = RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 200,
            pixels: 1024 * 1024,
            tasks: 32,
        };
        let t = set.predict_frame_seconds(&cfg, &k);
        assert!(t > 0.0 && t.is_finite());
        assert_eq!(set.predict_build_seconds(&cfg, &k), 0.0);
    }
}
