//! Shared in-crate test fixture: a hand-built, seconds-scale model set with
//! known non-negative coefficients (the same shape `feasibility::tests` uses).

use crate::feasibility::ModelSet;
use crate::models::FittedLinearModel;
use crate::regression::LinearRegression;

/// A plausible toy [`ModelSet`] for unit tests.
pub(crate) fn toy_model_set() -> ModelSet {
    let fit = |coeffs: Vec<f64>| LinearRegression::with_stats(coeffs, 1.0, 0.0, 10);
    ModelSet {
        device: "toy".into(),
        rt: FittedLinearModel {
            name: "ray_tracing",
            fit: fit(vec![2e-9, 1e-8, 1e-3]),
            feature_names: vec!["AP*log2(O)", "AP", "1"],
        },
        rt_build: FittedLinearModel {
            name: "ray_tracing_build",
            fit: fit(vec![2e-8, 1e-3]),
            feature_names: vec!["O", "1"],
        },
        rast: FittedLinearModel {
            name: "rasterization",
            fit: fit(vec![4e-9, 4e-10, 1e-3]),
            feature_names: vec!["O", "VO*PPT", "1"],
        },
        vr: FittedLinearModel {
            name: "volume_rendering",
            fit: fit(vec![2e-10, 1e-9, 1e-2]),
            feature_names: vec!["AP*CS", "AP*SPR", "1"],
        },
        comp: FittedLinearModel {
            name: "compositing",
            fit: fit(vec![2e-8, 5e-8, 1e-3]),
            feature_names: vec!["avg(AP)", "Pixels", "1"],
        },
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    }
}
