//! Performance modeling of in situ rendering — the paper's core contribution.
//!
//! Pipeline (Chapter V):
//!
//! 1. [`study`] runs the rendering experiments: sweeps of device x renderer x
//!    data size x image size (the paper's 1,350-test corpus), each producing
//!    a [`sample::RenderSample`] carrying the measured run time and the
//!    *observed* model inputs (O, AP, VO, PPT, SPR, CS).
//! 2. [`models`] defines the per-renderer linear model forms and fits their
//!    coefficients with [`regression`] (multiple linear regression via
//!    normal equations).
//! 3. [`crossval`] evaluates each fitted model with k-fold cross validation
//!    (the within-50/25/10/5% accuracies of Table 13).
//! 4. [`mapping`] converts user-level rendering configurations (grid size,
//!    image size, MPI tasks) into model inputs (Section 5.8).
//! 5. [`feasibility`] answers the in situ viability questions: images
//!    renderable in a fixed budget (Figure 14) and the ray-tracing vs
//!    rasterization regime map (Figure 15).
//! 6. [`extensions`] implements the Chapter VI future directions: a slicing
//!    performance model and the adaptive in situ planning layer.

pub mod autogather;
pub mod batch;
pub mod crossval;
pub mod extensions;
pub mod feasibility;
pub mod fstable;
pub mod mapping;
pub mod models;
pub mod persist;
pub mod regression;
pub mod sample;
pub mod stats;
pub mod study;
#[cfg(test)]
pub(crate) mod test_models;

pub use models::{
    CompositeModel, FittedLinearModel, LodModel, PassModel, RastModel, RtModel, VrModel,
};
pub use regression::LinearRegression;
pub use sample::{CompositeSample, LodSample, PassSample, RenderSample, RendererKind};
