//! Basic statistics used by the modeling pipeline: means, variance, Pearson
//! correlation (the paper's correlation screening), and relative-error
//! summaries.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Pearson correlation coefficient; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Relative error `|actual - predicted| / actual` as a percentage; infinity
/// when actual is 0 but predicted isn't.
pub fn relative_error_pct(actual: f64, predicted: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((actual - predicted) / actual).abs() * 100.0
    }
}

/// Accuracy summary over (actual, predicted) pairs: the Table 13/14 row —
/// fraction of predictions within 50/25/10/5 percent, plus the mean error.
#[derive(Debug, Clone, Default)]
pub struct AccuracySummary {
    /// Fraction of predictions within 50% of actual.
    pub within_50: f64,
    /// Fraction of predictions within 25% of actual.
    pub within_25: f64,
    /// Fraction of predictions within 10% of actual.
    pub within_10: f64,
    /// Fraction of predictions within 5% of actual.
    pub within_5: f64,
    /// Mean absolute relative error, in percent.
    pub mean_error_pct: f64,
    /// Number of (actual, predicted) pairs summarized.
    pub n: usize,
}

impl AccuracySummary {
    /// Summarize a set of (actual, predicted) pairs.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> AccuracySummary {
        let n = pairs.len();
        if n == 0 {
            return AccuracySummary::default();
        }
        let errs: Vec<f64> = pairs.iter().map(|&(a, p)| relative_error_pct(a, p)).collect();
        let frac = |limit: f64| errs.iter().filter(|&&e| e <= limit).count() as f64 / n as f64;
        AccuracySummary {
            within_50: frac(50.0) * 100.0,
            within_25: frac(25.0) * 100.0,
            within_10: frac(10.0) * 100.0,
            within_5: frac(5.0) * 100.0,
            mean_error_pct: mean(
                &errs.iter().copied().filter(|e| e.is_finite()).collect::<Vec<_>>(),
            ),
            n,
        }
    }
}

/// Fixed-bin histogram over `[lo, hi]`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<usize> {
    let mut h = vec![0usize; bins];
    if hi <= lo || bins == 0 {
        return h;
    }
    for &x in xs {
        let t = ((x - lo) / (hi - lo) * bins as f64) as isize;
        let b = t.clamp(0, bins as isize - 1) as usize;
        h[b] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn accuracy_summary_counts() {
        // errors: 0%, 20%, 40%, 100%
        let pairs = [(1.0, 1.0), (1.0, 0.8), (1.0, 1.4), (1.0, 2.0)];
        let s = AccuracySummary::from_pairs(&pairs);
        assert_eq!(s.n, 4);
        assert!((s.within_50 - 75.0).abs() < 1e-9);
        assert!((s.within_25 - 50.0).abs() < 1e-9);
        assert!((s.within_10 - 25.0).abs() < 1e-9);
        assert!((s.within_5 - 25.0).abs() < 1e-9);
        assert!((s.mean_error_pct - 40.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_bins() {
        let h = histogram(&[0.0, 0.1, 0.5, 0.9, 1.0], 0.0, 1.0, 2);
        assert_eq!(h, vec![2, 3]); // 0.5 falls in the upper bin
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert!(relative_error_pct(0.0, 1.0).is_infinite());
        assert!((relative_error_pct(2.0, 1.0) - 50.0).abs() < 1e-12);
    }
}
