//! Property tests for the `.fst` feasibility-table codec and its lookup
//! structure: arbitrary lattices encode -> sort -> decode bit-exactly
//! (including arbitrary IEEE-754 bit patterns in the payloads), incremental
//! backfill inserts agree with the bulk build across overlay compactions,
//! batched sorted resolution agrees with pointwise lookup, and a precomputed
//! table answers every lattice point bit-identically to direct model
//! evaluation.

use perfmodel::feasibility::ModelSet;
use perfmodel::fstable::{
    precompute, renderer_from_code, DeviceClass, FeasTable, Lattice, TableEntry, TableKey,
};
use perfmodel::mapping::MappingConstants;
use perfmodel::models::FittedLinearModel;
use perfmodel::regression::LinearRegression;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The hand-built seconds-scale set the in-crate unit tests use.
fn toy_model_set() -> ModelSet {
    let fit = |coeffs: Vec<f64>| LinearRegression::with_stats(coeffs, 1.0, 0.0, 10);
    ModelSet {
        device: "toy".into(),
        rt: FittedLinearModel {
            name: "ray_tracing",
            fit: fit(vec![2e-9, 1e-8, 1e-3]),
            feature_names: vec!["AP*log2(O)", "AP", "1"],
        },
        rt_build: FittedLinearModel {
            name: "ray_tracing_build",
            fit: fit(vec![2e-8, 1e-3]),
            feature_names: vec!["O", "1"],
        },
        rast: FittedLinearModel {
            name: "rasterization",
            fit: fit(vec![4e-9, 4e-10, 1e-3]),
            feature_names: vec!["O", "VO*PPT", "1"],
        },
        vr: FittedLinearModel {
            name: "volume_rendering",
            fit: fit(vec![2e-10, 1e-9, 1e-2]),
            feature_names: vec!["AP*CS", "AP*SPR", "1"],
        },
        comp: FittedLinearModel {
            name: "compositing",
            fit: fit(vec![2e-8, 5e-8, 1e-3]),
            feature_names: vec!["avg(AP)", "Pixels", "1"],
        },
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    }
}

/// Raw generator tuple -> a table record. Key axes are kept narrow so
/// duplicate keys actually occur; payloads reinterpret arbitrary u64 bit
/// patterns as f64 (NaNs, infinities, subnormals included).
type RawEntry = (u8, u8, u32, u32, u32, (u64, u64));

fn entry(raw: &RawEntry) -> TableEntry {
    let (renderer, device, side, cells, tasks, (pf, bu)) = *raw;
    TableEntry {
        key: TableKey {
            renderer: renderer % 3,
            device: device % 2,
            image_side: side % 5,
            cells_per_task: cells % 4,
            tasks: tasks % 4,
        },
        per_frame_s: f64::from_bits(pf),
        build_s: f64::from_bits(bu),
    }
}

/// Bit-exact record equality (payloads may be NaN, so `==` is unusable).
fn same_records(a: &[TableEntry], b: &[TableEntry]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.key == y.key
                && x.per_frame_s.to_bits() == y.per_frame_s.to_bits()
                && x.build_s.to_bits() == y.build_s.to_bits()
        })
}

fn raw_entries() -> impl Strategy<Value = Vec<RawEntry>> {
    proptest::collection::vec(
        (
            any::<u8>(),
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            (any::<u64>(), any::<u64>()),
        ),
        0..200,
    )
}

/// Deterministic companion to the generative backfill property: one hot key
/// rewritten at every phase of the base/overlay lifecycle — while overlay-
/// resident, in place after a compaction moved it into the base, and again
/// after further compactions grew the base around it.
#[test]
fn hot_key_survives_every_compaction_boundary() {
    let hot = TableKey { renderer: 0, device: 0, image_side: 7, cells_per_task: 7, tasks: 7 };
    let other =
        |i: u32| TableKey { renderer: 1, device: 1, image_side: i, cells_per_task: 1, tasks: 1 };
    let put = |table: &mut FeasTable, key: TableKey, v: f64| {
        table.insert(TableEntry { key, per_frame_s: v, build_s: 0.0 });
    };
    let mut table = FeasTable::new(1);
    put(&mut table, hot, 1.0);
    // 200 distinct keys push the overlay across the 64-record compaction
    // threshold more than once, carrying the hot key into the base.
    for i in 0..200 {
        put(&mut table, other(i), -1.0);
    }
    put(&mut table, hot, 2.0); // in-place base rewrite
    for i in 200..400 {
        put(&mut table, other(i), -1.0);
    }
    put(&mut table, hot, 3.0);
    assert_eq!(table.len(), 401, "400 distinct cold keys + 1 hot key");
    assert_eq!(table.lookup(&hot).map(|e| e.per_frame_s), Some(3.0));
    assert_eq!(
        table.resolve_sorted(&[hot]).remove(0).map(|e| e.per_frame_s),
        Some(3.0),
        "batched resolve sees the newest write, not a stale compacted copy"
    );
    assert_eq!(
        table.entries().iter().filter(|e| e.key == hot).count(),
        1,
        "exactly one record for the hot key"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_sort_decode_is_bit_exact(raws in raw_entries(), generation in any::<u64>()) {
        let entries: Vec<TableEntry> = raws.iter().map(entry).collect();
        let table = FeasTable::from_entries(generation, entries.clone());

        // Oracle: last write per key wins, records sorted by key.
        let mut oracle: BTreeMap<TableKey, TableEntry> = BTreeMap::new();
        for e in &entries {
            oracle.insert(e.key, *e);
        }
        let expected: Vec<TableEntry> = oracle.into_values().collect();
        prop_assert!(same_records(&table.entries(), &expected), "bulk build keeps last duplicate");

        let encoded = table.encode();
        let decoded = FeasTable::decode(&encoded) .map_err(|e| e.to_string())?;
        prop_assert_eq!(decoded.generation, generation);
        prop_assert!(same_records(&decoded.entries(), &expected), "decode round-trips encode");
        // Re-encoding the decoded table is byte-identical: the format has
        // one canonical serialization.
        prop_assert_eq!(decoded.encode(), encoded);
    }

    #[test]
    fn incremental_inserts_match_bulk_build(raws in raw_entries()) {
        let entries: Vec<TableEntry> = raws.iter().map(entry).collect();
        // One-by-one backfill exercises the overlay and its compaction
        // thresholds; the bulk path sorts once. They must agree bit-exactly.
        let mut incremental = FeasTable::new(9);
        for e in &entries {
            incremental.insert(*e);
        }
        let bulk = FeasTable::from_entries(9, entries);
        prop_assert_eq!(incremental.len(), bulk.len());
        prop_assert!(same_records(&incremental.entries(), &bulk.entries()));
        prop_assert_eq!(incremental.encode(), bulk.encode());
    }

    #[test]
    fn batched_resolution_agrees_with_pointwise_lookup(
        raws in raw_entries(),
        probe_raws in raw_entries()
    ) {
        let mut table = FeasTable::new(1);
        for e in raws.iter().map(entry) {
            table.insert(e);
        }
        let mut probes: Vec<TableKey> = probe_raws.iter().map(|r| entry(r).key).collect();
        probes.sort();
        let resolved = table.resolve_sorted(&probes);
        prop_assert_eq!(resolved.len(), probes.len());
        for (p, r) in probes.iter().zip(resolved) {
            let direct = table.lookup(p);
            prop_assert_eq!(
                r.map(|e| (e.per_frame_s.to_bits(), e.build_s.to_bits())),
                direct.map(|e| (e.per_frame_s.to_bits(), e.build_s.to_bits())),
                "probe {:?}", p
            );
        }
    }

    /// The fstable overlay's key-disjointness claim: a backfill of a key the
    /// base already holds updates in place, everything else lands in the
    /// overlay, and compaction folds the overlay in. Repeatedly backfilling
    /// the *same* keys while enough distinct keys stream in to cross several
    /// compaction boundaries must never leave a duplicate or stale record
    /// visible — to `entries`, `lookup`, or the galloping `resolve_sorted`.
    #[test]
    fn repeated_backfills_across_compactions_never_duplicate_or_go_stale(
        ops in proptest::collection::vec((0usize..96, any::<u64>()), 1..600)
    ) {
        // 96 distinct keys in mixed-radix order: small enough that the op
        // stream revisits keys many times, large enough that the 64-record
        // compaction threshold fires repeatedly mid-sequence.
        let key_at = |i: usize| TableKey {
            renderer: (i % 3) as u8,
            device: ((i / 3) % 2) as u8,
            image_side: 16 * (1 + (i / 6) % 4) as u32,
            cells_per_task: 10 * (1 + (i / 24) % 4) as u32,
            tasks: 8,
        };
        let mut table = FeasTable::new(2);
        let mut oracle: BTreeMap<TableKey, u64> = BTreeMap::new();
        for (step, &(i, payload)) in ops.iter().enumerate() {
            let key = key_at(i);
            table.insert(TableEntry {
                key,
                per_frame_s: f64::from_bits(payload),
                build_s: 0.0,
            });
            oracle.insert(key, payload);
            // Check not only the final state but states straddling the
            // compaction boundaries the op stream crosses along the way.
            if step % 97 != 0 && step + 1 != ops.len() {
                continue;
            }
            prop_assert_eq!(table.len(), oracle.len(), "one record per distinct key");
            let entries = table.entries();
            for w in entries.windows(2) {
                prop_assert!(w[0].key < w[1].key, "entries sorted, no duplicates");
            }
            let mut probes: Vec<TableKey> = (0..96).map(key_at).collect();
            probes.sort();
            for (p, r) in probes.iter().zip(table.resolve_sorted(&probes)) {
                prop_assert_eq!(
                    r.map(|e| e.per_frame_s.to_bits()),
                    oracle.get(p).copied(),
                    "latest write visible for {:?}", p
                );
                prop_assert_eq!(
                    r.map(|e| e.per_frame_s.to_bits()),
                    table.lookup(p).map(|e| e.per_frame_s.to_bits())
                );
            }
        }
    }

    #[test]
    fn precomputed_table_matches_direct_model_eval(
        sides in proptest::collection::vec(1u32..4096, 1..4),
        cells in proptest::collection::vec(1u32..600, 1..4),
        tasks in proptest::collection::vec(1u32..4096, 1..4),
        both_devices in any::<bool>()
    ) {
        let set = toy_model_set();
        let k = MappingConstants::default();
        let lattice = Lattice {
            renderers: vec![
                perfmodel::sample::RendererKind::RayTracing,
                perfmodel::sample::RendererKind::Rasterization,
                perfmodel::sample::RendererKind::VolumeRendering,
            ],
            devices: if both_devices {
                vec![DeviceClass::Serial, DeviceClass::Parallel]
            } else {
                vec![DeviceClass::Serial]
            },
            image_sides: sides,
            cells_per_task: cells,
            tasks,
        };
        // Only the serial class gets a fitted set: parallel points must
        // simply be absent, not wrong.
        let table =
            precompute(&[(DeviceClass::Serial, &set)], &k, &lattice, &dpp::Device::Serial, 5);
        let points = lattice.points();
        let serial_points = points.iter().filter(|p| p.device == 0).count();
        prop_assert_eq!(table.len(), serial_points);
        for point in &points {
            let looked = table.lookup(point);
            if point.device != 0 {
                prop_assert!(looked.is_none(), "no fitted set for {:?}", point);
                continue;
            }
            let cfg = point.to_config().ok_or("valid renderer code")?;
            prop_assert!(renderer_from_code(point.renderer).is_some());
            let e = looked.ok_or_else(|| format!("missing lattice point {point:?}"))?;
            prop_assert_eq!(e.per_frame_s.to_bits(), set.predict_frame_seconds(&cfg, &k).to_bits());
            prop_assert_eq!(e.build_s.to_bits(), set.predict_build_seconds(&cfg, &k).to_bits());
        }
    }
}
