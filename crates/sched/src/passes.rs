//! Pass-granular degradation: a ladder whose rungs shed individual
//! render-graph passes instead of only shrinking or dropping whole frames.
//!
//! The whole-frame [`LADDER`](crate::ladder::LADDER) can only trade fidelity
//! in factor-of-4 pixel steps — when full fidelity misses the budget by 10%,
//! its next rung throws away 75% of the pixels. The graph executor exposes
//! cheaper moves first: reuse last frame's BVH (free — the frame is
//! byte-identical while geometry holds still), then skip ambient occlusion,
//! then shadows (each replaced by its documented legacy fallback), then swap
//! in the precomputed LOD proxies (`mesh::lod` ladder levels — geometric
//! fidelity traded before any pixel is lost), and only then start halving
//! the image. [`PassRung::skips`] names the passes to hand to
//! `FrameGraph::execute`, [`PassRung::lod`] the proxy level, and
//! [`PassRung::predicted_seconds`] prices a rung from the whole-frame models
//! minus the fitted per-pass models ([`ModelSet::pass_ao`] /
//! [`ModelSet::pass_shadows`]), with LOD rungs priced by the fitted
//! [`LodModel`](perfmodel::models::LodModel)s (`ModelSet::lod_half` /
//! `lod_quarter`) — the refit features that flow back from live timings via
//! [`OnlineRefit::observe_pass`](crate::refit::OnlineRefit::observe_pass)
//! and [`OnlineRefit::observe_lod`](crate::refit::OnlineRefit::observe_lod).
//!
//! The legacy whole-frame scheduler is untouched (its decision transcript is
//! pinned); this module is the admission layer for graph-executed renders.

use crate::ladder::Rung;
use perfmodel::feasibility::ModelSet;

/// One rung of the pass-granular ladder, in increasing order of fidelity
/// loss. `frame` carries the whole-frame component (resolution halvings or
/// drop); the pass flags shed individual graph passes on top of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassRung {
    /// Whole-frame component (resolution / drop), reusing the legacy rungs.
    pub frame: Rung,
    /// Skip the `ambient_occlusion` pass (fallback: fully unoccluded).
    pub skip_ao: bool,
    /// Skip the `shadows` pass (fallback: all lights visible).
    pub skip_shadows: bool,
    /// Reuse last frame's BVH through the graph cache instead of charging a
    /// rebuild. Output-neutral while geometry holds still, so it outranks
    /// every pass skip.
    pub reuse_bvh: bool,
    /// LOD ladder level to render (0 = full geometry, 1 = half-cells proxy,
    /// 2 = quarter-cells proxy). Priced by the fitted `lod_half` /
    /// `lod_quarter` models; without a fit the rung prices at the full
    /// frame, never promising unmeasured savings.
    pub lod: u8,
}

/// Per-frame work inputs for pricing a [`PassRung`]: the pass work units at
/// *full* resolution, the acceleration-structure build charge, and the
/// full-geometry cell count the LOD rungs scale down from.
#[derive(Debug, Clone, Copy)]
pub struct PassWork {
    /// `ambient_occlusion` work units at full resolution.
    pub ao_units: f64,
    /// `shadows` work units at full resolution.
    pub shadow_units: f64,
    /// One-time build seconds, charged unless the rung reuses the BVH.
    pub build_seconds: f64,
    /// Cells of the full-resolution geometry; LOD level `l` targets
    /// `cells / 2^l`.
    pub cells: f64,
}

impl PassRung {
    /// Pass names to hand to the graph executor's skip list.
    pub fn skips(&self) -> Vec<&'static str> {
        let mut s = Vec::new();
        if self.skip_ao {
            s.push("ambient_occlusion");
        }
        if self.skip_shadows {
            s.push("shadows");
        }
        s
    }

    /// True for the terminal drop rung.
    pub fn is_drop(&self) -> bool {
        self.frame == Rung::Drop
    }

    /// Short label for transcripts and tables, e.g. `full+bvh-ao`.
    pub fn label(&self) -> String {
        if self.is_drop() {
            return "drop".to_string();
        }
        let mut l = self.frame.label().to_string();
        if self.reuse_bvh {
            l.push_str("+bvh");
        }
        if self.skip_ao {
            l.push_str("-ao");
        }
        if self.skip_shadows {
            l.push_str("-shadows");
        }
        if self.lod > 0 {
            l.push_str(&format!("+lod{}", self.lod));
        }
        l
    }

    /// Predicted seconds for a frame executed at this rung.
    ///
    /// `frame_seconds` predicts the whole frame (render + compositing,
    /// excluding build) at a given whole-frame rung — callers close over
    /// [`ModelSet::predict_frame_seconds`] with the rung-shrunk config. On an
    /// LOD rung with a fitted `LodModel`, the frame term is instead the
    /// model's prediction at the proxy's cell count (`work.cells / 2^lod`),
    /// scaled by the rung's resolution factor; without the fit the rung
    /// prices at the full frame. `work.ao_units` / `work.shadow_units` are
    /// the pass work units at *full* resolution; they scale with active
    /// pixels, so each halving divides them by 4 before the per-pass models
    /// price the subtraction. A missing per-pass model prices its skip at 0
    /// — never over-promising savings the models cannot back.
    /// `work.build_seconds` is charged unless the rung reuses the cached BVH.
    pub fn predicted_seconds(
        &self,
        set: &ModelSet,
        frame_seconds: impl Fn(Rung) -> f64,
        work: &PassWork,
    ) -> f64 {
        if self.is_drop() {
            return 0.0;
        }
        let scale = 0.25f64.powi(self.frame.halvings() as i32);
        let lod_frame = if self.lod > 0 {
            let cells = work.cells / f64::from(1u32 << self.lod);
            set.predict_lod_seconds(self.lod, cells).map(|t| t * scale)
        } else {
            None
        };
        let mut t = lod_frame.unwrap_or_else(|| frame_seconds(self.frame));
        if self.skip_ao {
            t -=
                set.predict_pass_seconds("ambient_occlusion", work.ao_units * scale).unwrap_or(0.0);
        }
        if self.skip_shadows {
            t -= set.predict_pass_seconds("shadows", work.shadow_units * scale).unwrap_or(0.0);
        }
        if !self.reuse_bvh {
            t += work.build_seconds;
        }
        t.max(0.0)
    }
}

/// The pass-granular ladder, top (full fidelity) to bottom (drop). BVH reuse
/// comes first because it costs no fidelity at all; pass skips precede any
/// geometric loss because their fallbacks degrade shading, not geometry; the
/// LOD rungs trade geometric fidelity (decimated proxies) before a single
/// pixel is given up; resolution halvings come last.
pub const PASS_LADDER: [PassRung; 9] = [
    PassRung { frame: Rung::Full, skip_ao: false, skip_shadows: false, reuse_bvh: false, lod: 0 },
    PassRung { frame: Rung::Full, skip_ao: false, skip_shadows: false, reuse_bvh: true, lod: 0 },
    PassRung { frame: Rung::Full, skip_ao: true, skip_shadows: false, reuse_bvh: true, lod: 0 },
    PassRung { frame: Rung::Full, skip_ao: true, skip_shadows: true, reuse_bvh: true, lod: 0 },
    PassRung { frame: Rung::Full, skip_ao: true, skip_shadows: true, reuse_bvh: true, lod: 1 },
    PassRung { frame: Rung::Full, skip_ao: true, skip_shadows: true, reuse_bvh: true, lod: 2 },
    PassRung {
        frame: Rung::Halved { halvings: 1 },
        skip_ao: true,
        skip_shadows: true,
        reuse_bvh: true,
        lod: 2,
    },
    PassRung {
        frame: Rung::Halved { halvings: 2 },
        skip_ao: true,
        skip_shadows: true,
        reuse_bvh: true,
        lod: 2,
    },
    PassRung { frame: Rung::Drop, skip_ao: true, skip_shadows: true, reuse_bvh: true, lod: 2 },
];

/// Index of the terminal drop rung.
pub const PASS_DROP_LEVEL: usize = PASS_LADDER.len() - 1;

/// Lowest ladder level (highest fidelity) whose predicted seconds fit the
/// budget; the drop rung when none do. `predictions` must align with
/// [`PASS_LADDER`].
pub fn first_feasible(predictions: &[f64], budget_s: f64) -> usize {
    predictions.iter().position(|&t| t <= budget_s).unwrap_or(PASS_DROP_LEVEL)
}

/// Hysteretic position on the pass ladder: escalation is immediate, recovery
/// steps one rung per full streak of headroom cycles — the same discipline
/// as the whole-frame [`Ladder`](crate::ladder::Ladder), over the finer
/// rungs.
#[derive(Debug, Clone)]
pub struct PassLadder {
    level: usize,
    streak: u32,
    hysteresis_cycles: u32,
}

impl PassLadder {
    pub fn new(hysteresis_cycles: u32) -> PassLadder {
        PassLadder { level: 0, streak: 0, hysteresis_cycles: hysteresis_cycles.max(1) }
    }

    /// Current operating level (index into [`PASS_LADDER`]).
    pub fn level(&self) -> usize {
        self.level
    }

    pub fn rung(&self) -> PassRung {
        PASS_LADDER[self.level]
    }

    /// Degrade to at least `level`, immediately. Resets the recovery streak.
    pub fn escalate_to(&mut self, level: usize) {
        if level > self.level {
            self.level = level.min(PASS_DROP_LEVEL);
            self.streak = 0;
        }
    }

    /// Call once per cycle with whether the cycle's demand would have fit
    /// one level up (with margin). Steps up at most one level per call,
    /// only after a full streak of headroom cycles.
    pub fn relax(&mut self, headroom: bool) {
        if self.level == 0 || !headroom {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        if self.streak >= self.hysteresis_cycles {
            self.level -= 1;
            self.streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::models::FittedLinearModel;
    use perfmodel::regression::LinearRegression;

    fn constant_model(name: &'static str, coeffs: Vec<f64>) -> FittedLinearModel {
        FittedLinearModel {
            name,
            fit: LinearRegression::with_stats(coeffs, 1.0, 0.0, 10),
            feature_names: Vec::new(),
        }
    }

    fn set_with_pass_models() -> ModelSet {
        ModelSet {
            device: "test".into(),
            rt: constant_model("ray_tracing", vec![1e-6, 1e-6, 1.0]),
            rt_build: constant_model("ray_tracing_build", vec![1e-6, 1.0]),
            rast: constant_model("rasterization", vec![1e-6, 1e-6, 1.0]),
            vr: constant_model("volume_rendering", vec![1e-6, 1e-6, 1.0]),
            comp: constant_model("compositing", vec![1e-6, 1e-6, 1.0]),
            comp_compressed: None,
            comp_dfb: None,
            pass_ao: Some(constant_model("pass_ambient_occlusion", vec![1e-6, 0.01])),
            pass_shadows: Some(constant_model("pass_shadows", vec![1e-6, 0.005])),
            lod_half: Some(constant_model("lod_half", vec![8e-6, 0.1])),
            lod_quarter: Some(constant_model("lod_quarter", vec![8e-6, 0.08])),
        }
    }

    /// Whole-frame cost model for tests: linear in pixel area, so each
    /// halving divides it by 4 (plus the frame-independent floor).
    fn frame_cost(rung: Rung) -> f64 {
        1.0 * 0.25f64.powi(rung.halvings() as i32) + 0.05
    }

    /// Work inputs shared by the pricing tests.
    const WORK: PassWork =
        PassWork { ao_units: 1e5, shadow_units: 4e4, build_seconds: 0.2, cells: 1e5 };

    #[test]
    fn pass_ladder_orders_fidelity_loss() {
        assert_eq!(PASS_LADDER[0].skips(), Vec::<&str>::new());
        assert!(!PASS_LADDER[0].reuse_bvh);
        assert!(PASS_LADDER[PASS_DROP_LEVEL].is_drop());
        // Predicted cost is monotone nonincreasing down the ladder.
        let set = set_with_pass_models();
        let t: Vec<f64> =
            PASS_LADDER.iter().map(|r| r.predicted_seconds(&set, frame_cost, &WORK)).collect();
        assert!(t.windows(2).all(|w| w[0] >= w[1]), "{t:?}");
        // Frame halvings and LOD levels are monotone over the executable
        // rungs, and every LOD loss precedes the first resolution loss.
        let h: Vec<u8> =
            PASS_LADDER[..PASS_DROP_LEVEL].iter().map(|r| r.frame.halvings()).collect();
        assert!(h.windows(2).all(|w| w[0] <= w[1]), "{h:?}");
        let l: Vec<u8> = PASS_LADDER[..PASS_DROP_LEVEL].iter().map(|r| r.lod).collect();
        assert!(l.windows(2).all(|w| w[0] <= w[1]), "{l:?}");
        let first_halved = PASS_LADDER.iter().position(|r| r.frame.halvings() > 0).unwrap();
        assert_eq!(PASS_LADDER[first_halved].lod, 2, "resolution falls only after max LOD");
    }

    #[test]
    fn rungs_name_the_passes_they_shed() {
        assert_eq!(PASS_LADDER[2].skips(), vec!["ambient_occlusion"]);
        assert_eq!(PASS_LADDER[3].skips(), vec!["ambient_occlusion", "shadows"]);
        assert_eq!(PASS_LADDER[0].label(), "full");
        assert_eq!(PASS_LADDER[1].label(), "full+bvh");
        assert_eq!(PASS_LADDER[3].label(), "full+bvh-ao-shadows");
        assert_eq!(PASS_LADDER[4].label(), "full+bvh-ao-shadows+lod1");
        assert_eq!(PASS_LADDER[5].label(), "full+bvh-ao-shadows+lod2");
        assert_eq!(PASS_LADDER[6].label(), "half+bvh-ao-shadows+lod2");
        assert_eq!(PASS_LADDER[PASS_DROP_LEVEL].label(), "drop");
    }

    #[test]
    fn predicted_seconds_subtracts_fitted_pass_savings() {
        let set = set_with_pass_models();
        let full = PASS_LADDER[0].predicted_seconds(&set, frame_cost, &WORK);
        assert!((full - (1.05 + 0.2)).abs() < 1e-12);
        // BVH reuse drops exactly the build charge.
        let warm = PASS_LADDER[1].predicted_seconds(&set, frame_cost, &WORK);
        assert!((warm - 1.05).abs() < 1e-12);
        // Skipping AO subtracts its modeled cost (1e-6 * 1e5 + 0.01).
        let no_ao = PASS_LADDER[2].predicted_seconds(&set, frame_cost, &WORK);
        assert!((warm - no_ao - 0.11).abs() < 1e-12, "{warm} {no_ao}");
        // The lod1 rung replaces the frame term with the fitted half-cells
        // prediction at cells/2 (8e-6 * 5e4 + 0.1), minus both pass skips.
        let lod1 = PASS_LADDER[4].predicted_seconds(&set, frame_cost, &WORK);
        let want = (8e-6 * 5e4 + 0.1) - (1e-6 * 1e5 + 0.01) - (1e-6 * 4e4 + 0.005);
        assert!((lod1 - want).abs() < 1e-12, "{lod1} vs {want}");
        // Halving scales both the LOD frame term and the pass work by 4.
        let half = PASS_LADDER[6].predicted_seconds(&set, frame_cost, &WORK);
        let want = (8e-6 * 2.5e4 + 0.08) * 0.25 - (1e-6 * 2.5e4 + 0.01) - (1e-6 * 1e4 + 0.005);
        assert!((half - want).abs() < 1e-12, "{half} vs {want}");
        assert_eq!(PASS_LADDER[PASS_DROP_LEVEL].predicted_seconds(&set, frame_cost, &WORK), 0.0);
    }

    /// Without fitted pass models a skip prices at zero savings — the rung
    /// never promises headroom the models cannot back.
    #[test]
    fn missing_pass_models_price_skips_at_zero() {
        let mut set = set_with_pass_models();
        set.pass_ao = None;
        set.pass_shadows = None;
        let warm = PASS_LADDER[1].predicted_seconds(&set, frame_cost, &WORK);
        let no_both = PASS_LADDER[3].predicted_seconds(&set, frame_cost, &WORK);
        assert_eq!(warm, no_both);
    }

    /// Without fitted LOD models an LOD rung prices at the full frame — the
    /// proxy's savings are never assumed, only measured.
    #[test]
    fn missing_lod_models_price_proxies_at_full_frame() {
        let mut set = set_with_pass_models();
        set.lod_half = None;
        set.lod_quarter = None;
        let no_passes = PASS_LADDER[3].predicted_seconds(&set, frame_cost, &WORK);
        let lod1 = PASS_LADDER[4].predicted_seconds(&set, frame_cost, &WORK);
        let lod2 = PASS_LADDER[5].predicted_seconds(&set, frame_cost, &WORK);
        assert_eq!(no_passes, lod1);
        assert_eq!(no_passes, lod2);
    }

    /// The ladder's reason to exist: a budget that full fidelity misses by a
    /// hair lands on a pass-skip rung at *full resolution*, where the
    /// whole-frame ladder's only move is to throw away 75% of the pixels.
    #[test]
    fn pass_skips_hold_budgets_whole_frame_rungs_miss() {
        let set = set_with_pass_models();
        let t: Vec<f64> =
            PASS_LADDER.iter().map(|r| r.predicted_seconds(&set, frame_cost, &WORK)).collect();
        // Budget sits between "full" and "full minus AO".
        let budget = t[2] + 0.01;
        let level = first_feasible(&t, budget);
        assert_eq!(level, 2);
        assert_eq!(PASS_LADDER[level].frame, Rung::Full);
        // An impossible budget drops the frame.
        assert_eq!(first_feasible(&t, -1.0), PASS_DROP_LEVEL);
    }

    #[test]
    fn escalation_is_immediate_and_recovery_is_hysteretic() {
        let mut l = PassLadder::new(2);
        l.escalate_to(3);
        assert_eq!(l.level(), 3);
        assert_eq!(l.rung().skips(), vec!["ambient_occlusion", "shadows"]);
        l.relax(true);
        assert_eq!(l.level(), 3);
        l.relax(false); // streak resets
        l.relax(true);
        l.relax(true);
        assert_eq!(l.level(), 2);
        l.escalate_to(99); // clamped to drop
        assert_eq!(l.level(), PASS_DROP_LEVEL);
        // Escalating below the current level is a no-op.
        l.escalate_to(1);
        assert_eq!(l.level(), PASS_DROP_LEVEL);
    }
}
