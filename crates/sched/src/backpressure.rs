//! Queue backpressure mapped onto the degradation [`Ladder`].
//!
//! The render scheduler walks the ladder when predicted *time* exceeds a
//! budget; a query service walks the same ladder when queue *depth* exceeds
//! a budget. Reusing [`Ladder`] buys the same contract for free: escalation
//! is immediate (an overflowing queue must shed now), recovery is hysteretic
//! (a single quiet tick never restores admission, so admission decisions
//! cannot flap under oscillating load).
//!
//! Ladder levels map to shed classes, deepest first:
//!
//! | level | admitted classes                    |
//! |-------|-------------------------------------|
//! | 0     | all                                 |
//! | 1–2   | `Normal`, `MustRender`              |
//! | 3–4   | `MustRender` only                   |
//!
//! `MustRender` is never shed: it preempts lower classes in the queue
//! instead (see `feasd`'s priority queue), which is what closes the
//! "must-render preempts instead of degrading uniformly" admission item.

use crate::ladder::Ladder;
use crate::priority::Priority;

/// First ladder level at which [`Priority::Speculative`] requests are shed.
pub const SHED_SPECULATIVE_LEVEL: usize = 1;
/// First ladder level at which [`Priority::Normal`] requests are shed.
pub const SHED_NORMAL_LEVEL: usize = 3;

/// Hysteretic admission gate driven by observed queue depth.
#[derive(Debug, Clone)]
pub struct QueuePressure {
    ladder: Ladder,
    depth_budget: usize,
}

impl QueuePressure {
    /// `depth_budget` is the queue depth the service is provisioned for;
    /// deeper queues escalate. `hysteresis_ticks` quiet observations are
    /// required per rung of recovery.
    pub fn new(depth_budget: usize, hysteresis_ticks: u32) -> QueuePressure {
        QueuePressure { ladder: Ladder::new(hysteresis_ticks), depth_budget: depth_budget.max(1) }
    }

    /// Feed one queue-depth observation. Overload escalates immediately and
    /// proportionally (each doubling past the budget is one more rung);
    /// recovery requires a sustained streak of depths at or below half the
    /// budget.
    pub fn observe_depth(&mut self, depth: usize) {
        let budget = self.depth_budget;
        let target = if depth > budget.saturating_mul(8) {
            4
        } else if depth > budget.saturating_mul(4) {
            3
        } else if depth > budget.saturating_mul(2) {
            2
        } else if depth > budget {
            1
        } else {
            0
        };
        self.ladder.escalate_to(target);
        self.ladder.relax(depth.saturating_mul(2) <= budget);
    }

    /// Current ladder level (0 = admit everything).
    pub fn level(&self) -> usize {
        self.ladder.level()
    }

    /// Whether a request of class `p` is admitted at the current level.
    pub fn admits(&self, p: Priority) -> bool {
        match p {
            Priority::MustRender => true,
            Priority::Normal => self.level() < SHED_NORMAL_LEVEL,
            Priority::Speculative => self.level() < SHED_SPECULATIVE_LEVEL,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_admits_everything() {
        let p = QueuePressure::new(64, 3);
        assert_eq!(p.level(), 0);
        assert!(p.admits(Priority::Speculative));
        assert!(p.admits(Priority::Normal));
        assert!(p.admits(Priority::MustRender));
    }

    #[test]
    fn escalation_sheds_speculative_then_normal_never_must_render() {
        let mut p = QueuePressure::new(10, 3);
        p.observe_depth(11); // just past budget -> level 1
        assert_eq!(p.level(), 1);
        assert!(!p.admits(Priority::Speculative));
        assert!(p.admits(Priority::Normal));
        p.observe_depth(41); // past 4x -> level 3
        assert_eq!(p.level(), 3);
        assert!(!p.admits(Priority::Normal));
        assert!(p.admits(Priority::MustRender));
        p.observe_depth(81); // past 8x -> the terminal level
        assert_eq!(p.level(), 4);
        assert!(p.admits(Priority::MustRender), "must-render is never shed");
    }

    #[test]
    fn recovery_is_hysteretic_and_stepwise() {
        let mut p = QueuePressure::new(10, 3);
        p.observe_depth(41);
        assert_eq!(p.level(), 3);
        // Depth back under budget but above the half-budget headroom mark:
        // no recovery, ever.
        for _ in 0..10 {
            p.observe_depth(8);
        }
        assert_eq!(p.level(), 3);
        // Two quiet ticks are not enough; a loud tick resets the streak.
        p.observe_depth(2);
        p.observe_depth(2);
        p.observe_depth(8);
        p.observe_depth(2);
        p.observe_depth(2);
        assert_eq!(p.level(), 3);
        // Three consecutive quiet ticks step up exactly one rung.
        p.observe_depth(2);
        assert_eq!(p.level(), 2);
        // And escalation mid-recovery wins instantly.
        p.observe_depth(100);
        assert_eq!(p.level(), 4);
    }

    #[test]
    fn deterministic_for_a_fixed_depth_trace() {
        let trace = [0usize, 5, 12, 30, 50, 90, 40, 4, 4, 4, 4, 4, 4, 11, 2, 2, 2];
        let run = || {
            let mut p = QueuePressure::new(10, 2);
            trace
                .iter()
                .map(|&d| {
                    p.observe_depth(d);
                    p.level()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
