//! Live model refinement: measured runtimes accumulate in per-family sliding
//! windows, and each window is periodically re-solved through
//! [`perfmodel::regression::LinearRegression`] (via the [`ModelForm`] fits),
//! replacing the corresponding model in the scheduler's [`ModelSet`].
//!
//! A windowed re-solve — rather than, say, exponential smoothing of the
//! coefficients — keeps the refit exactly the paper's estimator, just over
//! recent data, so the residual statistics stay meaningful.

use perfmodel::feasibility::ModelSet;
use perfmodel::models::{
    CompositeModel, CompressedCompositeModel, DfbCompositeModel, FittedLinearModel, LodModel,
    ModelForm, PassModel, RastModel, RtBuildModel, RtModel, VrModel,
};
use perfmodel::sample::{
    CompositeSample, CompositeWire, LodSample, PassSample, RenderSample, RendererKind,
};
use std::collections::VecDeque;

/// What one [`OnlineRefit::refit_into`] pass did, for scheduler and repro
/// reporting.
#[derive(Debug, Clone, Default)]
pub struct RefitReport {
    /// Families whose model was replaced by a window re-solve.
    pub refitted: Vec<&'static str>,
    /// Families whose candidate re-solve was rejected as implausible (a
    /// negative coefficient — the paper's validity check); the prior model
    /// was kept.
    pub rejected: Vec<&'static str>,
    /// Installed fits that carried a condition warning (rank-deficient
    /// window, ridge fallback).
    pub condition_warnings: Vec<&'static str>,
}

/// Sliding observation windows for the five model families.
#[derive(Debug, Clone)]
pub struct OnlineRefit {
    window: usize,
    min_samples: usize,
    rt: VecDeque<RenderSample>,
    rast: VecDeque<RenderSample>,
    vr: VecDeque<RenderSample>,
    comp: VecDeque<CompositeSample>,
    pass_ao: VecDeque<PassSample>,
    pass_shadows: VecDeque<PassSample>,
    lod_half: VecDeque<LodSample>,
    lod_quarter: VecDeque<LodSample>,
}

impl OnlineRefit {
    /// `window` caps each family's retained samples; `min_samples` is the
    /// floor below which a family keeps its prior model (re-solving a 3-term
    /// regression on 2 points would be noise, not refinement).
    pub fn new(window: usize, min_samples: usize) -> OnlineRefit {
        OnlineRefit {
            window: window.max(1),
            min_samples: min_samples.max(4),
            rt: VecDeque::new(),
            rast: VecDeque::new(),
            vr: VecDeque::new(),
            comp: VecDeque::new(),
            pass_ao: VecDeque::new(),
            pass_shadows: VecDeque::new(),
            lod_half: VecDeque::new(),
            lod_quarter: VecDeque::new(),
        }
    }

    fn push(q: &mut VecDeque<RenderSample>, s: RenderSample, window: usize) {
        if q.len() == window {
            q.pop_front();
        }
        q.push_back(s);
    }

    /// Record a measured render (routed to its renderer's window).
    pub fn observe_render(&mut self, s: RenderSample) {
        let q = match s.renderer {
            RendererKind::RayTracing => &mut self.rt,
            RendererKind::Rasterization => &mut self.rast,
            RendererKind::VolumeRendering => &mut self.vr,
        };
        Self::push(q, s, self.window);
    }

    /// Record a measured compositing exchange.
    pub fn observe_composite(&mut self, s: CompositeSample) {
        if self.comp.len() == self.window {
            self.comp.pop_front();
        }
        self.comp.push_back(s);
    }

    /// Record a measured render-graph pass timing. Only the sheddable
    /// passes with per-pass models (`ambient_occlusion`, `shadows`) are
    /// windowed; other pass names are ignored — their cost is already
    /// captured by the whole-frame models.
    pub fn observe_pass(&mut self, s: PassSample) {
        let q = match s.pass.as_str() {
            "ambient_occlusion" => &mut self.pass_ao,
            "shadows" => &mut self.pass_shadows,
            _ => return,
        };
        if q.len() == self.window {
            q.pop_front();
        }
        q.push_back(s);
    }

    /// Record a measured decimated-geometry render. Only the ladder's named
    /// rungs (level 1 = half, level 2 = quarter) are windowed; other levels
    /// are ignored — no [`LodModel`] exists to refit for them.
    pub fn observe_lod(&mut self, s: LodSample) {
        let q = match s.level {
            1 => &mut self.lod_half,
            2 => &mut self.lod_quarter,
            _ => return,
        };
        if q.len() == self.window {
            q.pop_front();
        }
        q.push_back(s);
    }

    /// Total buffered observations, for reporting.
    pub fn len(&self) -> usize {
        self.rt.len()
            + self.rast.len()
            + self.vr.len()
            + self.comp.len()
            + self.pass_ao.len()
            + self.pass_shadows.len()
            + self.lod_half.len()
            + self.lod_quarter.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Install a candidate re-solve, unless its coefficients fail the
    /// paper's plausibility check (negative marginal cost) — a bad window
    /// must not replace a working model with one whose negative terms the
    /// predictor would silently clip to zero.
    fn install(slot: &mut FittedLinearModel, candidate: FittedLinearModel, rep: &mut RefitReport) {
        if candidate.fit.all_coeffs_nonnegative() {
            if candidate.fit.condition_warning {
                rep.condition_warnings.push(candidate.name);
            }
            rep.refitted.push(candidate.name);
            *slot = candidate;
        } else {
            rep.rejected.push(candidate.name);
        }
    }

    /// Re-solve every family whose window has enough samples, replacing the
    /// corresponding model in `set` when the re-solve is plausible (see
    /// [`RefitReport`]). Families below the floor keep their prior. The
    /// BVH-build model additionally requires enough samples with a *measured*
    /// build (hook-driven observations fold the build into render time and
    /// would otherwise collapse the build model to zero). Compositing windows
    /// are split by exchange wire: dense samples refit the classic dense
    /// model, compressed samples the compression-aware one.
    pub fn refit_into(&self, set: &mut ModelSet) -> RefitReport {
        let mut rep = RefitReport::default();
        if self.rt.len() >= self.min_samples {
            let rt: Vec<RenderSample> = self.rt.iter().cloned().collect();
            Self::install(&mut set.rt, RtModel.fit(&rt), &mut rep);
            let with_build: Vec<RenderSample> =
                rt.iter().filter(|s| s.build_seconds > 0.0).cloned().collect();
            if with_build.len() >= self.min_samples {
                Self::install(&mut set.rt_build, RtBuildModel.fit(&with_build), &mut rep);
            }
        }
        if self.rast.len() >= self.min_samples {
            let xs: Vec<RenderSample> = self.rast.iter().cloned().collect();
            Self::install(&mut set.rast, RastModel.fit(&xs), &mut rep);
        }
        if self.vr.len() >= self.min_samples {
            let xs: Vec<RenderSample> = self.vr.iter().cloned().collect();
            Self::install(&mut set.vr, VrModel.fit(&xs), &mut rep);
        }
        let dense: Vec<CompositeSample> =
            self.comp.iter().filter(|s| s.wire == CompositeWire::Dense).cloned().collect();
        if dense.len() >= self.min_samples {
            Self::install(&mut set.comp, CompositeModel.fit(&dense), &mut rep);
        }
        let rle: Vec<CompositeSample> =
            self.comp.iter().filter(|s| s.wire == CompositeWire::Compressed).cloned().collect();
        if rle.len() >= self.min_samples {
            Self::install_opt(
                &mut set.comp_compressed,
                CompressedCompositeModel.fit(&rle),
                &mut rep,
            );
        }
        let dfb: Vec<CompositeSample> =
            self.comp.iter().filter(|s| s.wire == CompositeWire::Dfb).cloned().collect();
        if dfb.len() >= self.min_samples {
            Self::install_opt(&mut set.comp_dfb, DfbCompositeModel.fit(&dfb), &mut rep);
        }
        if self.pass_ao.len() >= self.min_samples {
            let xs: Vec<PassSample> = self.pass_ao.iter().cloned().collect();
            Self::install_opt(&mut set.pass_ao, PassModel::AMBIENT_OCCLUSION.fit(&xs), &mut rep);
        }
        if self.pass_shadows.len() >= self.min_samples {
            let xs: Vec<PassSample> = self.pass_shadows.iter().cloned().collect();
            Self::install_opt(&mut set.pass_shadows, PassModel::SHADOWS.fit(&xs), &mut rep);
        }
        if self.lod_half.len() >= self.min_samples {
            let xs: Vec<LodSample> = self.lod_half.iter().cloned().collect();
            Self::install_opt(&mut set.lod_half, LodModel::HALF.fit(&xs), &mut rep);
        }
        if self.lod_quarter.len() >= self.min_samples {
            let xs: Vec<LodSample> = self.lod_quarter.iter().cloned().collect();
            Self::install_opt(&mut set.lod_quarter, LodModel::QUARTER.fit(&xs), &mut rep);
        }
        rep
    }

    /// [`Self::install`] for the optional per-wire slots: a plausible
    /// candidate fills an empty slot instead of being dropped.
    fn install_opt(
        slot: &mut Option<FittedLinearModel>,
        candidate: FittedLinearModel,
        rep: &mut RefitReport,
    ) {
        match slot.as_mut() {
            Some(m) => Self::install(m, candidate, rep),
            None => {
                if candidate.fit.all_coeffs_nonnegative() {
                    if candidate.fit.condition_warning {
                        rep.condition_warnings.push(candidate.name);
                    }
                    rep.refitted.push(candidate.name);
                    *slot = Some(candidate);
                } else {
                    rep.rejected.push(candidate.name);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::mapping::{map_inputs, MappingConstants, RenderConfig};
    use perfmodel::regression::LinearRegression;

    fn constant_model(
        name: &'static str,
        coeffs: Vec<f64>,
    ) -> perfmodel::models::FittedLinearModel {
        perfmodel::models::FittedLinearModel {
            name,
            fit: LinearRegression::with_stats(coeffs, 1.0, 0.0, 10),
            feature_names: Vec::new(),
        }
    }

    fn prior() -> ModelSet {
        ModelSet {
            device: "test".into(),
            rt: constant_model("ray_tracing", vec![1e-6, 1e-6, 1.0]),
            rt_build: constant_model("ray_tracing_build", vec![1e-6, 1.0]),
            rast: constant_model("rasterization", vec![1e-6, 1e-6, 1.0]),
            vr: constant_model("volume_rendering", vec![1e-6, 1e-6, 1.0]),
            comp: constant_model("compositing", vec![1e-6, 1e-6, 1.0]),
            comp_compressed: None,
            comp_dfb: None,
            pass_ao: None,
            pass_shadows: None,
            lod_half: None,
            lod_quarter: None,
        }
    }

    #[test]
    fn refit_recovers_true_model_from_window() {
        // Observations generated from a known VR law; the refit must recover
        // predictions from the window even though the prior is far off.
        let k = MappingConstants::default();
        let truth = |s: &RenderSample| {
            2e-10 * s.active_pixels * s.cells_spanned
                + 1e-9 * s.active_pixels * s.samples_per_ray
                + 1e-2
        };
        let mut refit = OnlineRefit::new(64, 8);
        let mut cfgs = Vec::new();
        for (i, side) in
            [128u32, 256, 512, 640, 768, 896, 1024, 1152, 1280, 1408].into_iter().enumerate()
        {
            let cfg = RenderConfig {
                renderer: RendererKind::VolumeRendering,
                cells_per_task: 40 + 4 * i, // vary data size: full-rank features
                pixels: (side as usize) * (side as usize),
                tasks: 8,
            };
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = truth(&s);
            refit.observe_render(s);
            cfgs.push(cfg);
        }
        let mut set = prior();
        let before = set.predict_frame_seconds(&cfgs[9], &k);
        refit.refit_into(&mut set);
        let inputs = map_inputs(&cfgs[9], &k);
        let after = VrModel.predict(&set.vr, &inputs);
        let want = truth(&inputs);
        assert!((after - want).abs() / want < 1e-6, "refit {after} vs truth {want}");
        assert!((before - want).abs() / want > 1.0, "prior should have been far off");
    }

    /// The ROADMAP ill-conditioning caveat, reproduced at the refit layer: a
    /// steady-state window with a *constant* data size makes the AP*CS and
    /// AP*SPR regressors exactly proportional at ~1e7..1e9 magnitude. The
    /// seed solver's absolute 1e-12 pivot tolerance passed cancellation noise
    /// as a pivot and split the pair into huge opposite-signed coefficients;
    /// the scaled ridge solve must keep the refit stable, plausible,
    /// accurate — and flagged in the report.
    #[test]
    fn constant_data_size_window_refits_stably() {
        let k = MappingConstants::default();
        let truth = |s: &RenderSample| {
            2e-10 * s.active_pixels * s.cells_spanned
                + 1e-9 * s.active_pixels * s.samples_per_ray
                + 1e-2
        };
        let mut refit = OnlineRefit::new(64, 8);
        let mut cfgs = Vec::new();
        for side in [512u32, 768, 1024, 1536, 2048, 2560, 3072, 4096] {
            let cfg = RenderConfig {
                renderer: RendererKind::VolumeRendering,
                cells_per_task: 200, // constant: the steady-state window
                pixels: (side as usize) * (side as usize),
                tasks: 64,
            };
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = truth(&s);
            refit.observe_render(s);
            cfgs.push(cfg);
        }
        let mut set = prior();
        let rep = refit.refit_into(&mut set);
        assert!(rep.refitted.contains(&"volume_rendering"), "{rep:?}");
        assert!(rep.condition_warnings.contains(&"volume_rendering"), "{rep:?}");
        assert!(set.vr.fit.condition_warning);
        assert!(set.vr.fit.effective_rank < set.vr.fit.coeffs.len());
        assert!(set.vr.fit.all_coeffs_nonnegative(), "{:?}", set.vr.fit.coeffs);
        for &c in &set.vr.fit.coeffs {
            assert!(c.is_finite() && c.abs() < 1.0, "coefficient exploded: {c:e}");
        }
        for cfg in &cfgs {
            let inputs = map_inputs(cfg, &k);
            let want = truth(&inputs);
            let got = VrModel.predict(&set.vr, &inputs);
            assert!((got - want).abs() / want < 1e-3, "refit {got} vs truth {want}");
        }
    }

    /// Compositing windows refit per exchange wire: dense samples feed the
    /// classic dense model, compressed samples the compression-aware one —
    /// each recovering the law of its own wire.
    #[test]
    fn composite_windows_split_by_wire() {
        let dense_law = |ap: f64, px: f64| 1e-8 * ap + 4e-8 * px + 1e-3;
        let rle_law = |ap: f64, px: f64| 2e-8 * ap + 1e-8 * px + 5e-4;
        let mut refit = OnlineRefit::new(64, 4);
        let mut probes = Vec::new();
        for i in 1..=8usize {
            let px = (128.0 * i as f64) * (128.0 * i as f64);
            let ap = px * 0.1 * (1.0 + (i % 3) as f64); // AF varies: full rank
            for (wire, law) in [
                (CompositeWire::Dense, dense_law(ap, px)),
                (CompositeWire::Compressed, rle_law(ap, px)),
            ] {
                refit.observe_composite(CompositeSample {
                    tasks: 64,
                    pixels: px,
                    avg_active_pixels: ap,
                    seconds: law,
                    wire,
                });
            }
            probes.push((ap, px));
        }
        let mut set = prior();
        let rep = refit.refit_into(&mut set);
        assert!(rep.refitted.contains(&"compositing"), "{rep:?}");
        assert!(rep.refitted.contains(&"compositing_compressed"), "{rep:?}");
        let rle = set.comp_compressed.as_ref().expect("compressed model installed");
        for &(ap, px) in &probes {
            let s = CompositeSample {
                tasks: 64,
                pixels: px,
                avg_active_pixels: ap,
                seconds: 0.0,
                wire: CompositeWire::Dense,
            };
            let want_dense = dense_law(ap, px);
            let got_dense = CompositeModel.predict(&set.comp, &s);
            assert!((got_dense - want_dense).abs() / want_dense < 1e-6);
            let want_rle = rle_law(ap, px);
            let got_rle = CompressedCompositeModel.predict(rle, &s);
            assert!((got_rle - want_rle).abs() / want_rle < 1e-6);
        }
    }

    /// DFB-wire observations refit the overlapped-mode model — including its
    /// per-task message-tax term — without disturbing the other wires.
    #[test]
    fn dfb_window_installs_the_overlapped_model() {
        let dfb_law = |ap: f64, px: f64, tasks: f64| 3e-8 * ap + 5e-9 * px + 2e-6 * tasks + 2e-4;
        let mut refit = OnlineRefit::new(64, 4);
        let mut probes = Vec::new();
        for i in 1..=10usize {
            let px = (128.0 * (1 + i % 4) as f64) * (128.0 * (1 + i % 4) as f64);
            let ap = px * 0.1 * (1.0 + (i % 3) as f64);
            let tasks = 1usize << (i % 7);
            refit.observe_composite(CompositeSample {
                tasks,
                pixels: px,
                avg_active_pixels: ap,
                seconds: dfb_law(ap, px, tasks as f64),
                wire: CompositeWire::Dfb,
            });
            probes.push((ap, px, tasks));
        }
        let mut set = prior();
        let rep = refit.refit_into(&mut set);
        assert!(rep.refitted.contains(&"compositing_dfb"), "{rep:?}");
        // No dense or compressed samples were observed: those stay put.
        assert!(!rep.refitted.contains(&"compositing"));
        assert!(set.comp_compressed.is_none());
        let m = set.comp_dfb.as_ref().expect("dfb model installed");
        for &(ap, px, tasks) in &probes {
            let s = CompositeSample {
                tasks,
                pixels: px,
                avg_active_pixels: ap,
                seconds: 0.0,
                wire: CompositeWire::Dfb,
            };
            let want = dfb_law(ap, px, tasks as f64);
            let got = DfbCompositeModel.predict(m, &s);
            assert!((got - want).abs() / want < 1e-5, "{got} vs {want}");
        }
    }

    /// A window whose re-solve carries a negative coefficient (here: cost
    /// *decreasing* with active pixels) must not replace the prior — the
    /// predictor would silently clip the negative term to zero and schedule
    /// on fiction.
    /// Per-pass windows from graph-executor timings fit the pass models,
    /// recovering each pass's planted per-work-unit law — the features
    /// behind pass-granular admission.
    #[test]
    fn pass_windows_fit_the_pass_models() {
        let ao_law = |w: f64| 2.5e-8 * w + 4e-4;
        let sh_law = |w: f64| 1.2e-8 * w + 2e-4;
        let mut refit = OnlineRefit::new(64, 4);
        for i in 1..=10usize {
            let w = 5000.0 * i as f64;
            refit.observe_pass(PassSample {
                pass: "ambient_occlusion".into(),
                work_units: w,
                seconds: ao_law(w),
            });
            refit.observe_pass(PassSample {
                pass: "shadows".into(),
                work_units: w * 0.4,
                seconds: sh_law(w * 0.4),
            });
            // Non-sheddable passes are not windowed.
            refit.observe_pass(PassSample {
                pass: "intersect".into(),
                work_units: w,
                seconds: 1.0,
            });
        }
        assert_eq!(refit.len(), 20);
        let mut set = prior();
        let rep = refit.refit_into(&mut set);
        assert!(rep.refitted.contains(&"pass_ambient_occlusion"), "{rep:?}");
        assert!(rep.refitted.contains(&"pass_shadows"), "{rep:?}");
        for w in [7500.0, 40000.0] {
            let got = set.predict_pass_seconds("ambient_occlusion", w).unwrap();
            assert!((got - ao_law(w)).abs() / ao_law(w) < 1e-6, "{got}");
            let got = set.predict_pass_seconds("shadows", w).unwrap();
            assert!((got - sh_law(w)).abs() / sh_law(w) < 1e-6, "{got}");
        }
        assert!(set.predict_pass_seconds("intersect", 1.0).is_none());
    }

    /// Decimated-render windows fit the LOD rung models, so admission can
    /// price `+lod` rungs from live timings — and unnamed levels are not
    /// windowed.
    #[test]
    fn lod_windows_fit_the_rung_models() {
        let half_law = |c: f64| 4e-8 * c + 9e-5;
        let quarter_law = |c: f64| 3e-8 * c + 6e-5;
        let mut refit = OnlineRefit::new(64, 4);
        for i in 1..=8usize {
            let c = 20_000.0 * i as f64;
            refit.observe_lod(LodSample { level: 1, cells: c, seconds: half_law(c) });
            refit.observe_lod(LodSample {
                level: 2,
                cells: c / 2.0,
                seconds: quarter_law(c / 2.0),
            });
            // No model exists for level 3: not windowed.
            refit.observe_lod(LodSample { level: 3, cells: c, seconds: 1.0 });
        }
        assert_eq!(refit.len(), 16);
        let mut set = prior();
        let rep = refit.refit_into(&mut set);
        assert!(rep.refitted.contains(&"lod_half"), "{rep:?}");
        assert!(rep.refitted.contains(&"lod_quarter"), "{rep:?}");
        for c in [30_000.0, 140_000.0] {
            let got = set.predict_lod_seconds(1, c).unwrap();
            assert!((got - half_law(c)).abs() / half_law(c) < 1e-6, "{got}");
            let got = set.predict_lod_seconds(2, c).unwrap();
            assert!((got - quarter_law(c)).abs() / quarter_law(c) < 1e-6, "{got}");
        }
        assert!(set.predict_lod_seconds(3, 1.0).is_none());
    }

    #[test]
    fn implausible_refits_keep_the_prior() {
        let mut refit = OnlineRefit::new(64, 4);
        for i in 1..=8usize {
            let ap = 1e4 * i as f64;
            refit.observe_composite(CompositeSample {
                tasks: 64,
                pixels: (1 << 20) as f64,
                avg_active_pixels: ap,
                seconds: 0.2 - 1e-6 * ap,
                wire: CompositeWire::Dense,
            });
        }
        let mut set = prior();
        let before = set.comp.fit.coeffs.clone();
        let rep = refit.refit_into(&mut set);
        assert_eq!(set.comp.fit.coeffs, before, "implausible candidate must keep prior");
        assert!(rep.rejected.contains(&"compositing"), "{rep:?}");
        assert!(!rep.refitted.contains(&"compositing"));
    }

    #[test]
    fn small_windows_keep_the_prior() {
        let k = MappingConstants::default();
        let mut refit = OnlineRefit::new(64, 8);
        let cfg = RenderConfig {
            renderer: RendererKind::Rasterization,
            cells_per_task: 40,
            pixels: 256 * 256,
            tasks: 8,
        };
        for _ in 0..3 {
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = 0.5;
            refit.observe_render(s);
        }
        let mut set = prior();
        let before = set.rast.fit.coeffs.clone();
        refit.refit_into(&mut set);
        assert_eq!(set.rast.fit.coeffs, before, "3 < min_samples must not refit");
    }

    #[test]
    fn window_slides() {
        let k = MappingConstants::default();
        let mut refit = OnlineRefit::new(4, 4);
        let cfg = RenderConfig {
            renderer: RendererKind::RayTracing,
            cells_per_task: 40,
            pixels: 128 * 128,
            tasks: 8,
        };
        for i in 0..10 {
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = i as f64;
            refit.observe_render(s);
        }
        assert_eq!(refit.rt.len(), 4);
        assert_eq!(refit.rt.back().unwrap().render_seconds, 9.0);
        assert_eq!(refit.rt.front().unwrap().render_seconds, 6.0);
    }
}
