//! Live model refinement: measured runtimes accumulate in per-family sliding
//! windows, and each window is periodically re-solved through
//! [`perfmodel::regression::LinearRegression`] (via the [`ModelForm`] fits),
//! replacing the corresponding model in the scheduler's [`ModelSet`].
//!
//! A windowed re-solve — rather than, say, exponential smoothing of the
//! coefficients — keeps the refit exactly the paper's estimator, just over
//! recent data, so the residual statistics stay meaningful.

use perfmodel::feasibility::ModelSet;
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::{CompositeSample, RenderSample, RendererKind};
use std::collections::VecDeque;

/// Sliding observation windows for the five model families.
#[derive(Debug, Clone)]
pub struct OnlineRefit {
    window: usize,
    min_samples: usize,
    rt: VecDeque<RenderSample>,
    rast: VecDeque<RenderSample>,
    vr: VecDeque<RenderSample>,
    comp: VecDeque<CompositeSample>,
}

impl OnlineRefit {
    /// `window` caps each family's retained samples; `min_samples` is the
    /// floor below which a family keeps its prior model (re-solving a 3-term
    /// regression on 2 points would be noise, not refinement).
    pub fn new(window: usize, min_samples: usize) -> OnlineRefit {
        OnlineRefit {
            window: window.max(1),
            min_samples: min_samples.max(4),
            rt: VecDeque::new(),
            rast: VecDeque::new(),
            vr: VecDeque::new(),
            comp: VecDeque::new(),
        }
    }

    fn push(q: &mut VecDeque<RenderSample>, s: RenderSample, window: usize) {
        if q.len() == window {
            q.pop_front();
        }
        q.push_back(s);
    }

    /// Record a measured render (routed to its renderer's window).
    pub fn observe_render(&mut self, s: RenderSample) {
        let q = match s.renderer {
            RendererKind::RayTracing => &mut self.rt,
            RendererKind::Rasterization => &mut self.rast,
            RendererKind::VolumeRendering => &mut self.vr,
        };
        Self::push(q, s, self.window);
    }

    /// Record a measured compositing exchange.
    pub fn observe_composite(&mut self, s: CompositeSample) {
        if self.comp.len() == self.window {
            self.comp.pop_front();
        }
        self.comp.push_back(s);
    }

    /// Total buffered observations, for reporting.
    pub fn len(&self) -> usize {
        self.rt.len() + self.rast.len() + self.vr.len() + self.comp.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-solve every family whose window has enough samples, replacing the
    /// corresponding model in `set`. Families below the floor keep their
    /// prior. The BVH-build model additionally requires enough samples with a
    /// *measured* build (hook-driven observations fold the build into render
    /// time and would otherwise collapse the build model to zero).
    pub fn refit_into(&self, set: &mut ModelSet) {
        if self.rt.len() >= self.min_samples {
            let rt: Vec<RenderSample> = self.rt.iter().cloned().collect();
            set.rt = RtModel.fit(&rt);
            let with_build: Vec<RenderSample> =
                rt.iter().filter(|s| s.build_seconds > 0.0).cloned().collect();
            if with_build.len() >= self.min_samples {
                set.rt_build = RtBuildModel.fit(&with_build);
            }
        }
        if self.rast.len() >= self.min_samples {
            let xs: Vec<RenderSample> = self.rast.iter().cloned().collect();
            set.rast = RastModel.fit(&xs);
        }
        if self.vr.len() >= self.min_samples {
            let xs: Vec<RenderSample> = self.vr.iter().cloned().collect();
            set.vr = VrModel.fit(&xs);
        }
        if self.comp.len() >= self.min_samples {
            let xs: Vec<CompositeSample> = self.comp.iter().cloned().collect();
            set.comp = CompositeModel.fit(&xs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::mapping::{map_inputs, MappingConstants, RenderConfig};
    use perfmodel::regression::LinearRegression;

    fn constant_model(
        name: &'static str,
        coeffs: Vec<f64>,
    ) -> perfmodel::models::FittedLinearModel {
        perfmodel::models::FittedLinearModel {
            name,
            fit: LinearRegression { coeffs, r_squared: 1.0, residual_std: 0.0, n: 10 },
            feature_names: Vec::new(),
        }
    }

    fn prior() -> ModelSet {
        ModelSet {
            device: "test".into(),
            rt: constant_model("ray_tracing", vec![1e-6, 1e-6, 1.0]),
            rt_build: constant_model("ray_tracing_build", vec![1e-6, 1.0]),
            rast: constant_model("rasterization", vec![1e-6, 1e-6, 1.0]),
            vr: constant_model("volume_rendering", vec![1e-6, 1e-6, 1.0]),
            comp: constant_model("compositing", vec![1e-6, 1e-6, 1.0]),
        }
    }

    #[test]
    fn refit_recovers_true_model_from_window() {
        // Observations generated from a known VR law; the refit must recover
        // predictions from the window even though the prior is far off.
        let k = MappingConstants::default();
        let truth = |s: &RenderSample| {
            2e-10 * s.active_pixels * s.cells_spanned
                + 1e-9 * s.active_pixels * s.samples_per_ray
                + 1e-2
        };
        let mut refit = OnlineRefit::new(64, 8);
        let mut cfgs = Vec::new();
        for (i, side) in
            [128u32, 256, 512, 640, 768, 896, 1024, 1152, 1280, 1408].into_iter().enumerate()
        {
            let cfg = RenderConfig {
                renderer: RendererKind::VolumeRendering,
                cells_per_task: 40 + 4 * i, // vary data size: full-rank features
                pixels: (side as usize) * (side as usize),
                tasks: 8,
            };
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = truth(&s);
            refit.observe_render(s);
            cfgs.push(cfg);
        }
        let mut set = prior();
        let before = set.predict_frame_seconds(&cfgs[9], &k);
        refit.refit_into(&mut set);
        let inputs = map_inputs(&cfgs[9], &k);
        let after = VrModel.predict(&set.vr, &inputs);
        let want = truth(&inputs);
        assert!((after - want).abs() / want < 1e-6, "refit {after} vs truth {want}");
        assert!((before - want).abs() / want > 1.0, "prior should have been far off");
    }

    #[test]
    fn small_windows_keep_the_prior() {
        let k = MappingConstants::default();
        let mut refit = OnlineRefit::new(64, 8);
        let cfg = RenderConfig {
            renderer: RendererKind::Rasterization,
            cells_per_task: 40,
            pixels: 256 * 256,
            tasks: 8,
        };
        for _ in 0..3 {
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = 0.5;
            refit.observe_render(s);
        }
        let mut set = prior();
        let before = set.rast.fit.coeffs.clone();
        refit.refit_into(&mut set);
        assert_eq!(set.rast.fit.coeffs, before, "3 < min_samples must not refit");
    }

    #[test]
    fn window_slides() {
        let k = MappingConstants::default();
        let mut refit = OnlineRefit::new(4, 4);
        let cfg = RenderConfig {
            renderer: RendererKind::RayTracing,
            cells_per_task: 40,
            pixels: 128 * 128,
            tasks: 8,
        };
        for i in 0..10 {
            let mut s = map_inputs(&cfg, &k);
            s.render_seconds = i as f64;
            refit.observe_render(s);
        }
        assert_eq!(refit.rt.len(), 4);
        assert_eq!(refit.rt.back().unwrap().render_seconds, 9.0);
        assert_eq!(refit.rt.front().unwrap().render_seconds, 6.0);
    }
}
