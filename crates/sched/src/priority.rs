//! Per-request priority classes for admission under load.
//!
//! The original queue was FIFO and the ladder level applied uniformly to
//! every request in a cycle. Priorities split that: under pressure the
//! scheduler sheds *classes* bottom-up instead of degrading everything, and
//! a `MustRender` request preempts lower classes outright — it is answered
//! first and is never shed, no matter how deep the queue runs.

/// Priority of one request. The derived order is shedding order: lower
/// variants are shed first, and [`Priority::MustRender`] is never shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Speculative "what if" probes — the first class shed under pressure.
    Speculative,
    /// Ordinary interactive requests.
    Normal,
    /// Must-answer requests: preempt the queue, never shed.
    MustRender,
}

/// Every priority class, lowest to highest.
pub const PRIORITIES: [Priority; 3] =
    [Priority::Speculative, Priority::Normal, Priority::MustRender];

impl Priority {
    /// Stable lowercase label used in transcripts, tables, and the wire form.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Speculative => "speculative",
            Priority::Normal => "normal",
            Priority::MustRender => "must-render",
        }
    }

    /// Inverse of [`Priority::label`].
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "speculative" => Some(Priority::Speculative),
            "normal" => Some(Priority::Normal),
            "must-render" => Some(Priority::MustRender),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_shedding_order() {
        assert!(Priority::Speculative < Priority::Normal);
        assert!(Priority::Normal < Priority::MustRender);
    }

    #[test]
    fn labels_round_trip() {
        for p in PRIORITIES {
            assert_eq!(Priority::parse(p.label()), Some(p));
        }
        assert_eq!(Priority::parse("urgent"), None);
    }
}
