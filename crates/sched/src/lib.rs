//! Model-driven in situ scheduling: online admission control against a
//! per-cycle time budget, a deterministic degradation ladder with hysteresis,
//! and live refinement of the performance models from measured runtimes.
//!
//! The paper fits performance models offline and uses them to answer
//! feasibility questions ("how many images fit in X seconds?", Figure 14;
//! "when does ray tracing beat rasterization?", Figure 15). This crate closes
//! the loop at run time: each simulation cycle, render requests enter a queue
//! with a time budget; the [`Scheduler`] predicts each job's cost from a
//! [`perfmodel::feasibility::ModelSet`] (frame + amortized BVH build +
//! compositing) and admits, degrades, or rejects it. Degradation walks the
//! fixed [`ladder::LADDER`] — shrink the image side 2×, then 4×, then switch
//! ray tracing to rasterization when past the Figure-15 crossover, then drop
//! the frame — and hysteresis keeps fidelity from flapping cycle to cycle.
//! After execution, measured (simulated-clock) runtimes feed a windowed
//! re-solve over [`perfmodel::regression::LinearRegression`], shrinking
//! prediction error over the run.
//!
//! [`Scheduler`] implements [`strawman::AdmissionHook`], so it plugs straight
//! into [`strawman::Options`] to gate real renders by wall clock; the
//! [`demo`] module drives the same scheduler from the proxy apps against a
//! [`SimulatedExecutor`] standing in for a 64-rank machine.

pub mod backpressure;
pub mod demo;
pub mod ladder;
pub mod passes;
pub mod priority;
pub mod rebalance;
pub mod refit;
pub mod scheduler;
pub mod simexec;

pub use backpressure::QueuePressure;
pub use demo::{run_budgeted_demo, CycleOutcome, DemoConfig, DemoReport};
pub use ladder::{Ladder, Rung, LADDER};
pub use passes::{PassLadder, PassRung, PassWork, PASS_DROP_LEVEL, PASS_LADDER};
pub use priority::{Priority, PRIORITIES};
pub use rebalance::{RebalanceConfig, Rebalancer};
pub use refit::OnlineRefit;
pub use scheduler::{CycleRecord, Decision, PlannedJob, RenderRequest, Scheduler, SchedulerConfig};
pub use simexec::{JobCost, SimulatedExecutor};
