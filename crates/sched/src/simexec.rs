//! A simulated multi-rank render executor: stands in for the 64-rank machine
//! the demo schedules against. Job runtimes come from a hidden ground-truth
//! [`ModelSet`] (which the scheduler does *not* see — it starts from a
//! miscalibrated prior) on a simulated clock, perturbed by seeded,
//! deterministic noise so runs are reproducible end to end.

use perfmodel::feasibility::{ModelSet, MIN_PREDICTED_SECONDS};
use perfmodel::mapping::{map_inputs, MappingConstants, RenderConfig};
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::{CompositeSample, CompositeWire, RendererKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulated cost of one executed job, split the way the models split it.
#[derive(Debug, Clone, Copy)]
pub struct JobCost {
    /// Local render seconds (max over ranks; excludes build + compositing).
    pub local_s: f64,
    /// BVH build seconds (0 unless this job triggered a build).
    pub build_s: f64,
    /// Compositing-exchange seconds for the frame.
    pub comp_s: f64,
    /// Image pixels, for feeding the compositing observation back.
    pub pixels: f64,
    /// Mapped average active pixels per rank.
    pub avg_active_pixels: f64,
}

impl JobCost {
    pub fn total(&self) -> f64 {
        self.local_s + self.build_s + self.comp_s
    }
}

/// The executor: ground truth + noise + simulated clock.
pub struct SimulatedExecutor {
    truth: ModelSet,
    constants: MappingConstants,
    /// Relative runtime jitter amplitude (e.g. 0.03 for ±3%).
    noise: f64,
    rng: StdRng,
}

impl SimulatedExecutor {
    pub fn new(truth: ModelSet, constants: MappingConstants, noise: f64, seed: u64) -> Self {
        SimulatedExecutor { truth, constants, noise, rng: StdRng::seed_from_u64(seed) }
    }

    fn jitter(&mut self) -> f64 {
        1.0 + self.noise * (2.0 * self.rng.gen::<f64>() - 1.0)
    }

    /// Noise-free ground-truth frame cost (local + compositing) — what the
    /// scheduler's predictions converge toward.
    pub fn true_frame_seconds(&self, cfg: &RenderConfig) -> f64 {
        self.truth.predict_frame_seconds(cfg, &self.constants).max(MIN_PREDICTED_SECONDS)
    }

    /// Noise-free ground-truth build cost.
    pub fn true_build_seconds(&self, cfg: &RenderConfig) -> f64 {
        self.truth.predict_build_seconds(cfg, &self.constants).max(0.0)
    }

    /// "Run" a job on the simulated clock. `charge_build` charges the BVH
    /// build (the caller amortizes builds across a cycle's ray-traced
    /// frames).
    pub fn execute(&mut self, cfg: &RenderConfig, charge_build: bool) -> JobCost {
        let inputs = map_inputs(cfg, &self.constants);
        let local = match cfg.renderer {
            RendererKind::RayTracing => RtModel.predict(&self.truth.rt, &inputs),
            RendererKind::Rasterization => RastModel.predict(&self.truth.rast, &inputs),
            RendererKind::VolumeRendering => VrModel.predict(&self.truth.vr, &inputs),
        }
        .max(0.0)
            * self.jitter();
        let build = if cfg.renderer == RendererKind::RayTracing && charge_build {
            RtBuildModel.predict(&self.truth.rt_build, &inputs).max(0.0) * self.jitter()
        } else {
            0.0
        };
        let comp = CompositeModel
            .predict(
                &self.truth.comp,
                &CompositeSample {
                    tasks: cfg.tasks,
                    pixels: cfg.pixels as f64,
                    avg_active_pixels: inputs.active_pixels,
                    seconds: 0.0,
                    wire: CompositeWire::Compressed,
                },
            )
            .max(0.0)
            * self.jitter();
        JobCost {
            local_s: local,
            build_s: build,
            comp_s: comp,
            pixels: cfg.pixels as f64,
            avg_active_pixels: inputs.active_pixels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::ground_truth;

    #[test]
    fn execution_is_deterministic_per_seed() {
        let cfg = RenderConfig {
            renderer: RendererKind::RayTracing,
            cells_per_task: 20,
            pixels: 512 * 512,
            tasks: 64,
        };
        let k = MappingConstants::default();
        let mut a = SimulatedExecutor::new(ground_truth(), k, 0.05, 42);
        let mut b = SimulatedExecutor::new(ground_truth(), k, 0.05, 42);
        for _ in 0..5 {
            let ca = a.execute(&cfg, true);
            let cb = b.execute(&cfg, true);
            assert_eq!(ca.total().to_bits(), cb.total().to_bits());
        }
        let mut c = SimulatedExecutor::new(ground_truth(), k, 0.05, 43);
        assert_ne!(a.execute(&cfg, true).total(), c.execute(&cfg, true).total());
    }

    #[test]
    fn noise_stays_within_amplitude() {
        let cfg = RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 20,
            pixels: 256 * 256,
            tasks: 64,
        };
        let k = MappingConstants::default();
        let mut ex = SimulatedExecutor::new(ground_truth(), k, 0.1, 7);
        let want = ex.true_frame_seconds(&cfg);
        for _ in 0..50 {
            let c = ex.execute(&cfg, false);
            assert_eq!(c.build_s, 0.0);
            let got = c.local_s + c.comp_s;
            assert!((got - want).abs() <= 0.1 * want + 1e-12, "{got} vs {want}");
        }
    }
}
