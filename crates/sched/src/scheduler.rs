//! Online admission control against a per-cycle render-time budget.
//!
//! The [`Scheduler`] holds a (possibly miscalibrated) [`ModelSet`], predicts
//! each queued job's cost — local frame + compositing, plus the BVH build for
//! the cycle's first ray-traced job (subsequent frames amortize it) — and
//! packs jobs against the budget. When a job does not fit at the current
//! fidelity, it walks down the degradation [`LADDER`]; measured runtimes flow
//! back through [`OnlineRefit`] so predictions tighten as the run proceeds.

use crate::ladder::{Ladder, Rung, DROP_LEVEL, LADDER};
use crate::refit::{OnlineRefit, RefitReport};
use perfmodel::feasibility::{ModelSet, MIN_PREDICTED_SECONDS};
use perfmodel::mapping::{map_inputs, MappingConstants, RenderConfig};
use perfmodel::sample::{CompositeSample, CompositeWire, RendererKind};

/// One queued render request (what the simulation asked for).
#[derive(Debug, Clone, Copy)]
pub struct RenderRequest {
    pub renderer: RendererKind,
    pub width: u32,
    pub height: u32,
    /// Cells per axis of one task's block (N of N^3).
    pub cells_per_task: usize,
}

/// An admitted (possibly degraded) job, ready to execute.
#[derive(Debug, Clone, Copy)]
pub struct PlannedJob {
    pub width: u32,
    pub height: u32,
    /// The model-level configuration the job will run as (renderer may
    /// differ from the request after a ladder switch).
    pub cfg: RenderConfig,
    pub rung: Rung,
    /// Predicted cost charged against the budget (frame + compositing, plus
    /// the BVH build if this job triggers one).
    pub predicted_s: f64,
}

/// Outcome of [`Scheduler::decide`] for one request.
#[derive(Debug, Clone, Copy)]
pub enum Decision {
    /// Fits at full fidelity.
    Admit(PlannedJob),
    /// Fits only at reduced fidelity.
    Degrade(PlannedJob),
    /// Does not fit even at the deepest executable rung; drop the frame.
    Reject,
}

impl Decision {
    pub fn job(&self) -> Option<&PlannedJob> {
        match self {
            Decision::Admit(j) | Decision::Degrade(j) => Some(j),
            Decision::Reject => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Decision::Admit(_) => "admit",
            Decision::Degrade(_) => "degrade",
            Decision::Reject => "reject",
        }
    }
}

/// Scheduler tuning knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Per-cycle render-time budget (seconds).
    pub budget_s: f64,
    /// MPI tasks of the configuration being scheduled (weak scaling).
    pub tasks: usize,
    /// Degradation never shrinks an image side below this (and never below
    /// 1 even when a request is already smaller). The default of 64 keeps a
    /// degraded image at least one full rasterizer tile per side, so every
    /// ladder rung yields a renderable, nonzero-pixel config.
    pub min_image_side: u32,
    /// Jobs are packed against `safety * budget_s`, leaving headroom for
    /// prediction noise so small errors do not blow the budget.
    pub safety: f64,
    /// Consecutive headroom cycles required before regaining one rung.
    pub hysteresis_cycles: u32,
    /// Upgrading requires the cycle's demand one level up to fit within
    /// `upgrade_margin` of the effective budget (second hysteresis band).
    pub upgrade_margin: f64,
    /// Sliding-window size for the online refit.
    pub refit_window: usize,
    /// Minimum samples before a model family is re-solved.
    pub refit_min_samples: usize,
}

impl SchedulerConfig {
    pub fn new(budget_s: f64, tasks: usize) -> SchedulerConfig {
        SchedulerConfig {
            budget_s,
            tasks,
            min_image_side: 64,
            safety: 0.9,
            hysteresis_cycles: 3,
            upgrade_margin: 0.8,
            refit_window: 96,
            refit_min_samples: 8,
        }
    }
}

/// What one closed cycle looked like.
#[derive(Debug, Clone, Copy)]
pub struct CycleRecord {
    pub cycle: i64,
    /// Ladder level the cycle operated at (deepest rung reached).
    pub level: usize,
    pub admitted: u32,
    pub degraded: u32,
    pub rejected: u32,
    /// Budget in force for the cycle.
    pub budget_s: f64,
    /// Predicted cost of the executed jobs at decision time.
    pub predicted_s: f64,
    /// Measured cost of the executed jobs.
    pub actual_s: f64,
}

impl CycleRecord {
    pub fn within_budget(&self) -> bool {
        self.actual_s <= self.budget_s
    }

    /// `|predicted - actual| / actual` for the cycle's executed work.
    pub fn abs_rel_error(&self) -> f64 {
        (self.predicted_s - self.actual_s).abs() / self.actual_s.max(MIN_PREDICTED_SECONDS)
    }
}

struct OpenCycle {
    cycle: i64,
    budget_s: f64,
    spent_predicted_s: f64,
    actual_s: f64,
    admitted: u32,
    degraded: u32,
    rejected: u32,
    /// Everything requested this cycle (including rejected jobs), for the
    /// end-of-cycle headroom computation.
    requests: Vec<RenderRequest>,
    /// A BVH build has been charged this cycle; later RT frames reuse it.
    build_charged: bool,
}

/// The online scheduler. Create it with calibrated (or deliberately
/// conservative) models; per cycle call [`begin_cycle`](Scheduler::begin_cycle),
/// [`decide`](Scheduler::decide) per request, the observe methods per
/// executed job, then [`end_cycle`](Scheduler::end_cycle).
pub struct Scheduler {
    pub models: ModelSet,
    pub constants: MappingConstants,
    pub cfg: SchedulerConfig,
    ladder: Ladder,
    refit: OnlineRefit,
    /// Closed cycles, oldest first.
    pub history: Vec<CycleRecord>,
    /// What the most recent end-of-cycle refit did (installed, rejected,
    /// condition-warned families).
    pub last_refit: RefitReport,
    cur: Option<OpenCycle>,
}

impl Scheduler {
    pub fn new(models: ModelSet, constants: MappingConstants, cfg: SchedulerConfig) -> Scheduler {
        let ladder = Ladder::new(cfg.hysteresis_cycles);
        let refit = OnlineRefit::new(cfg.refit_window, cfg.refit_min_samples);
        Scheduler {
            models,
            constants,
            cfg,
            ladder,
            refit,
            history: Vec::new(),
            last_refit: RefitReport::default(),
            cur: None,
        }
    }

    /// Current ladder level (0 = full fidelity).
    pub fn level(&self) -> usize {
        self.ladder.level()
    }

    /// Open a cycle with the configured budget.
    pub fn begin_cycle(&mut self, cycle: i64) {
        self.begin_cycle_with_budget(cycle, self.cfg.budget_s)
    }

    /// Open a cycle with an explicit budget (closes any cycle still open).
    pub fn begin_cycle_with_budget(&mut self, cycle: i64, budget_s: f64) {
        if self.cur.is_some() {
            self.end_cycle();
        }
        self.cur = Some(OpenCycle {
            cycle,
            budget_s,
            spent_predicted_s: 0.0,
            actual_s: 0.0,
            admitted: 0,
            degraded: 0,
            rejected: 0,
            requests: Vec::new(),
            build_charged: false,
        });
    }

    /// Degraded dimensions for a request on a rung (never upsizes, never
    /// shrinks below the configured minimum side, and always at least 1×1 so
    /// every executable rung stays renderable). The shift is clamped to 31:
    /// a degenerate `Rung::Halved { halvings: 32+ }` would otherwise
    /// overflow the u32 shift (a debug-build panic), not degrade harder —
    /// past 31 halvings the floor decides anyway.
    fn shrunk(&self, req: &RenderRequest, halvings: u8) -> (u32, u32) {
        let min = self.cfg.min_image_side;
        let shift = u32::from(halvings).min(31);
        let w = (req.width >> shift).max(min).min(req.width).max(1);
        let h = (req.height >> shift).max(min).min(req.height).max(1);
        (w, h)
    }

    /// Predicted frame seconds (local + compositing), floored.
    fn frame_cost(&self, cfg: &RenderConfig) -> f64 {
        self.models.predict_frame_seconds(cfg, &self.constants).max(MIN_PREDICTED_SECONDS)
    }

    /// True when the models put this config past the Figure-15 crossover:
    /// rasterization predicted faster per frame than ray tracing.
    fn past_crossover(&self, cells_per_task: usize, pixels: usize) -> bool {
        let rt = RenderConfig {
            renderer: RendererKind::RayTracing,
            cells_per_task,
            pixels,
            tasks: self.cfg.tasks,
        };
        let ra = RenderConfig { renderer: RendererKind::Rasterization, ..rt };
        self.frame_cost(&ra) < self.frame_cost(&rt)
    }

    /// Concrete (width, height, renderer) for a request at a rung, or `None`
    /// for the drop rung.
    fn configure(&self, req: &RenderRequest, rung: Rung) -> Option<(u32, u32, RendererKind)> {
        match rung {
            Rung::Drop => None,
            Rung::Full => Some((req.width, req.height, req.renderer)),
            Rung::Halved { halvings } => {
                let (w, h) = self.shrunk(req, halvings);
                Some((w, h, req.renderer))
            }
            Rung::Switched { halvings } => {
                let (w, h) = self.shrunk(req, halvings);
                let pixels = w as usize * h as usize;
                let renderer = if req.renderer == RendererKind::RayTracing
                    && self.past_crossover(req.cells_per_task, pixels)
                {
                    RendererKind::Rasterization
                } else {
                    req.renderer
                };
                Some((w, h, renderer))
            }
        }
    }

    /// Predicted cost of a job: frame + compositing, plus the BVH build if
    /// this would be the cycle's first ray-traced frame (`build_charged`).
    fn job_cost(&self, cfg: &RenderConfig, build_charged: bool) -> f64 {
        let mut cost = self.frame_cost(cfg);
        if cfg.renderer == RendererKind::RayTracing && !build_charged {
            cost += self.models.predict_build_seconds(cfg, &self.constants).max(0.0);
        }
        cost
    }

    /// Decide one queued request. Deterministic: walks [`LADDER`] from the
    /// hysteresis level down; the level is sticky upward within a cycle (a
    /// job that forced a deeper rung pins later jobs there too, so a cycle's
    /// frames stay at a coherent fidelity).
    pub fn decide(&mut self, req: RenderRequest) -> Decision {
        let (effective_budget, spent, build_charged) = {
            // xlint::allow(X006): public-API misuse guard; the message is the contract.
            let cur = self.cur.as_ref().expect("decide() called outside begin_cycle()/end_cycle()");
            (cur.budget_s * self.cfg.safety, cur.spent_predicted_s, cur.build_charged)
        };

        let mut outcome = None;
        for (level, &rung) in LADDER.iter().enumerate().take(DROP_LEVEL).skip(self.ladder.level()) {
            let Some((w, h, renderer)) = self.configure(&req, rung) else { break };
            let cfg = RenderConfig {
                renderer,
                cells_per_task: req.cells_per_task,
                pixels: w as usize * h as usize,
                tasks: self.cfg.tasks,
            };
            let predicted = self.job_cost(&cfg, build_charged);
            if spent + predicted <= effective_budget {
                let job = PlannedJob { width: w, height: h, cfg, rung, predicted_s: predicted };
                outcome = Some((level, job));
                break;
            }
        }

        // xlint::allow(X006): same guard as above — cur was checked at function entry.
        let cur = self.cur.as_mut().unwrap();
        cur.requests.push(req);
        match outcome {
            Some((level, job)) => {
                cur.spent_predicted_s += job.predicted_s;
                if job.cfg.renderer == RendererKind::RayTracing {
                    cur.build_charged = true;
                }
                if level == 0 {
                    cur.admitted += 1;
                    Decision::Admit(job)
                } else {
                    cur.degraded += 1;
                    self.ladder.escalate_to(level);
                    Decision::Degrade(job)
                }
            }
            None => {
                cur.rejected += 1;
                // Even the deepest executable rung did not fit: operate the
                // rest of the cycle (and the next, until hysteresis relaxes)
                // fully degraded.
                self.ladder.escalate_to(DROP_LEVEL - 1);
                Decision::Reject
            }
        }
    }

    /// Feed back a measured (or simulated) local render time for an executed
    /// job, excluding compositing (reported via
    /// [`observe_composite`](Scheduler::observe_composite)).
    pub fn observe_render(&mut self, cfg: &RenderConfig, local_seconds: f64, build_seconds: f64) {
        if let Some(cur) = self.cur.as_mut() {
            cur.actual_s += local_seconds + build_seconds;
        }
        let mut s = map_inputs(cfg, &self.constants);
        s.render_seconds = local_seconds;
        s.build_seconds = build_seconds;
        self.refit.observe_render(s);
    }

    /// Feed back a measured render-graph pass timing (from a
    /// `PassRecord`), so the per-pass models refit alongside the
    /// whole-frame families at [`end_cycle`](Scheduler::end_cycle). Only
    /// the sheddable passes are windowed; see
    /// [`OnlineRefit::observe_pass`](crate::refit::OnlineRefit::observe_pass).
    pub fn observe_pass(&mut self, pass: &str, work_units: f64, seconds: f64) {
        self.refit.observe_pass(perfmodel::sample::PassSample {
            pass: pass.to_string(),
            work_units,
            seconds,
        });
    }

    /// Feed back a measured compositing exchange for one frame. `compressed`
    /// and `dfb` name the exchange wire the measurement used, so the refit
    /// fits each composite model on the behavior it actually describes: the
    /// asynchronous tile-owner protocol feeds the DFB model, otherwise the
    /// span compression choice picks between the compressed and dense models.
    pub fn observe_composite(
        &mut self,
        pixels: f64,
        avg_active_pixels: f64,
        seconds: f64,
        compressed: bool,
        dfb: bool,
    ) {
        if let Some(cur) = self.cur.as_mut() {
            cur.actual_s += seconds;
        }
        let wire = if dfb {
            CompositeWire::Dfb
        } else if compressed {
            CompositeWire::Compressed
        } else {
            CompositeWire::Dense
        };
        self.refit.observe_composite(CompositeSample {
            tasks: self.cfg.tasks,
            pixels,
            avg_active_pixels,
            seconds,
            wire,
        });
    }

    /// Cost of the cycle's full request list if every job ran at `level`
    /// (the headroom probe for hysteresis upgrades).
    fn cycle_cost_at_level(&self, requests: &[RenderRequest], level: usize) -> f64 {
        let mut total = 0.0;
        let mut build_charged = false;
        for req in requests {
            if let Some((w, h, renderer)) = self.configure(req, LADDER[level]) {
                let cfg = RenderConfig {
                    renderer,
                    cells_per_task: req.cells_per_task,
                    pixels: w as usize * h as usize,
                    tasks: self.cfg.tasks,
                };
                total += self.job_cost(&cfg, build_charged);
                if cfg.renderer == RendererKind::RayTracing {
                    build_charged = true;
                }
            }
        }
        total
    }

    /// Close the cycle: refit models from the observation windows, decide
    /// whether fidelity may recover, and append the cycle record. Returns the
    /// record just appended, or `None` if no cycle was open.
    pub fn end_cycle(&mut self) -> Option<&CycleRecord> {
        let cur = self.cur.take()?;
        self.last_refit = self.refit.refit_into(&mut self.models);
        let level = self.ladder.level();
        let headroom = if level > 0 {
            let up_cost = self.cycle_cost_at_level(&cur.requests, level - 1);
            up_cost <= self.cfg.upgrade_margin * self.cfg.safety * cur.budget_s
        } else {
            false
        };
        self.ladder.relax(headroom);
        self.history.push(CycleRecord {
            cycle: cur.cycle,
            level,
            admitted: cur.admitted,
            degraded: cur.degraded,
            rejected: cur.rejected,
            budget_s: cur.budget_s,
            predicted_s: cur.spent_predicted_s,
            actual_s: cur.actual_s,
        });
        self.history.last()
    }
}

/// Map Strawman's renderer labels onto the model renderer kinds.
fn renderer_kind(label: &str) -> Option<RendererKind> {
    match label {
        "raytracer" => Some(RendererKind::RayTracing),
        "rasterizer" => Some(RendererKind::Rasterization),
        s if s.starts_with("volume") => Some(RendererKind::VolumeRendering),
        _ => None,
    }
}

impl strawman::AdmissionHook for Scheduler {
    fn admit(&mut self, req: &strawman::AdmissionRequest) -> strawman::AdmissionDecision {
        if self.cur.as_ref().map(|c| c.cycle) != Some(req.cycle) {
            self.begin_cycle_with_budget(req.cycle, req.budget_s);
        }
        let Some(renderer) = renderer_kind(req.renderer) else {
            return strawman::AdmissionDecision::Admit;
        };
        let cells_per_task = (req.cells as f64).cbrt().round().max(1.0) as usize;
        let request =
            RenderRequest { renderer, width: req.width, height: req.height, cells_per_task };
        match self.decide(request) {
            Decision::Admit(_) => strawman::AdmissionDecision::Admit,
            Decision::Degrade(job) => strawman::AdmissionDecision::Degrade {
                width: job.width,
                height: job.height,
                switch_to_rasterizer: renderer == RendererKind::RayTracing
                    && job.cfg.renderer == RendererKind::Rasterization,
            },
            Decision::Reject => strawman::AdmissionDecision::Reject,
        }
    }

    fn observe(&mut self, done: &strawman::ExecutedRender) {
        let Some(renderer) = renderer_kind(done.renderer) else { return };
        let cfg = RenderConfig {
            renderer,
            cells_per_task: (done.cells as f64).cbrt().round().max(1.0) as usize,
            pixels: done.width as usize * done.height as usize,
            tasks: self.cfg.tasks,
        };
        // Wall-clock observations fold any build into the render time; the
        // refit gates the build model on nonzero build samples.
        self.observe_render(&cfg, done.seconds, 0.0);
    }

    fn observe_composite(&mut self, done: &strawman::CompositeObservation) {
        Scheduler::observe_composite(
            self,
            done.pixels,
            done.avg_active_pixels,
            done.seconds,
            done.compressed,
            done.dfb,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demo::ground_truth;

    fn sched(budget_s: f64) -> Scheduler {
        Scheduler::new(
            ground_truth(),
            MappingConstants::default(),
            SchedulerConfig::new(budget_s, 64),
        )
    }

    fn req(renderer: RendererKind, side: u32) -> RenderRequest {
        RenderRequest { renderer, width: side, height: side, cells_per_task: 20 }
    }

    /// Acceptance (c): the ladder is deterministic and hysteretic. A fixed
    /// request stream — four calm cycles, a three-cycle spike whose showcase
    /// frame never fits, then calm again — must produce exactly this
    /// transcript: immediate escalation (with rejects while the spike lasts),
    /// then stepwise recovery, one rung per three headroom cycles.
    #[test]
    fn decisions_are_deterministic_and_hysteretic() {
        let mut s = sched(0.08);
        let mut transcript = Vec::new();
        for cycle in 0..17i64 {
            s.begin_cycle(cycle);
            let mut line = format!("c{cycle:02}");
            let mut requests =
                vec![req(RendererKind::VolumeRendering, 512), req(RendererKind::RayTracing, 512)];
            if (4..7).contains(&cycle) {
                requests.push(req(RendererKind::VolumeRendering, 4096));
            }
            for r in requests {
                let d = s.decide(r);
                match d.job() {
                    Some(j) => {
                        line.push_str(&format!(" {}:{}@{}", d.label(), j.rung.label(), j.width))
                    }
                    None => line.push_str(" reject"),
                }
            }
            s.end_cycle();
            let rec = s.history.last().unwrap();
            line.push_str(&format!(
                " | L{} a{} d{} r{}",
                rec.level, rec.admitted, rec.degraded, rec.rejected
            ));
            transcript.push(line);
        }
        let expected = [
            "c00 admit:full@512 admit:full@512 | L0 a2 d0 r0",
            "c01 admit:full@512 admit:full@512 | L0 a2 d0 r0",
            "c02 admit:full@512 admit:full@512 | L0 a2 d0 r0",
            "c03 admit:full@512 admit:full@512 | L0 a2 d0 r0",
            "c04 admit:full@512 admit:full@512 reject | L3 a2 d0 r1",
            "c05 degrade:switch@128 degrade:switch@128 reject | L3 a0 d2 r1",
            "c06 degrade:switch@128 degrade:switch@128 reject | L3 a0 d2 r1",
            "c07 degrade:switch@128 degrade:switch@128 | L3 a0 d2 r0",
            "c08 degrade:switch@128 degrade:switch@128 | L3 a0 d2 r0",
            "c09 degrade:switch@128 degrade:switch@128 | L3 a0 d2 r0",
            "c10 degrade:quarter@128 degrade:quarter@128 | L2 a0 d2 r0",
            "c11 degrade:quarter@128 degrade:quarter@128 | L2 a0 d2 r0",
            "c12 degrade:quarter@128 degrade:quarter@128 | L2 a0 d2 r0",
            "c13 degrade:half@256 degrade:half@256 | L1 a0 d2 r0",
            "c14 degrade:half@256 degrade:half@256 | L1 a0 d2 r0",
            "c15 degrade:half@256 degrade:half@256 | L1 a0 d2 r0",
            "c16 admit:full@512 admit:full@512 | L0 a2 d0 r0",
        ];
        assert_eq!(transcript, expected);
        // Re-running the identical stream reproduces the identical transcript.
        let mut s2 = sched(0.08);
        for cycle in 0..17i64 {
            s2.begin_cycle(cycle);
            let mut requests =
                vec![req(RendererKind::VolumeRendering, 512), req(RendererKind::RayTracing, 512)];
            if (4..7).contains(&cycle) {
                requests.push(req(RendererKind::VolumeRendering, 4096));
            }
            for r in requests {
                s2.decide(r);
            }
            s2.end_cycle();
        }
        for (a, b) in s.history.iter().zip(s2.history.iter()) {
            assert_eq!(a.predicted_s.to_bits(), b.predicted_s.to_bits());
            assert_eq!((a.level, a.admitted, a.degraded), (b.level, b.admitted, b.degraded));
        }
    }

    /// The cycle's first ray-traced job is charged the BVH build; the second
    /// reuses it and is cheaper by exactly the predicted build time.
    #[test]
    fn bvh_build_amortizes_within_a_cycle() {
        let mut s = sched(10.0);
        s.begin_cycle(0);
        let r = req(RendererKind::RayTracing, 512);
        let first = s.decide(r).job().unwrap().predicted_s;
        let second = s.decide(r).job().unwrap().predicted_s;
        let build = s.models.predict_build_seconds(
            &RenderConfig {
                renderer: RendererKind::RayTracing,
                cells_per_task: 20,
                pixels: 512 * 512,
                tasks: 64,
            },
            &s.constants,
        );
        assert!(build > 0.0);
        assert!((first - second - build).abs() < 1e-15, "{first} vs {second} + {build}");
        s.end_cycle();
        // A fresh cycle charges the build again.
        s.begin_cycle(1);
        let again = s.decide(r).job().unwrap().predicted_s;
        assert_eq!(again.to_bits(), first.to_bits());
    }

    /// Packing is cumulative: a job that fits alone degrades once earlier
    /// admissions have consumed the budget.
    #[test]
    fn packing_degrades_when_budget_is_consumed() {
        let frame = |s: &Scheduler, side: u32| {
            s.models.predict_frame_seconds(
                &RenderConfig {
                    renderer: RendererKind::VolumeRendering,
                    cells_per_task: 20,
                    pixels: (side as usize) * (side as usize),
                    tasks: 64,
                },
                &s.constants,
            )
        };
        let probe = sched(1.0);
        // Budget fits one full frame plus a half-size frame, not two full.
        let budget = (frame(&probe, 512) + 1.1 * frame(&probe, 256)) / probe.cfg.safety;
        let mut s = sched(budget);
        s.begin_cycle(0);
        let r = req(RendererKind::VolumeRendering, 512);
        assert!(matches!(s.decide(r), Decision::Admit(_)));
        match s.decide(r) {
            Decision::Degrade(j) => {
                assert_eq!((j.width, j.rung), (256, Rung::Halved { halvings: 1 }))
            }
            d => panic!("expected degrade, got {}", d.label()),
        }
        s.end_cycle();
    }

    /// The switch rung respects the Figure-15 crossover: ray tracing only
    /// becomes rasterization when the models predict rasterization faster.
    /// Heavy geometry under a small image stays ray traced.
    #[test]
    fn switch_rung_respects_crossover() {
        // Heavy geometry, small image: rasterization would be slower, so the
        // switch rung keeps ray tracing (and costs the same as Halved{2},
        // meaning a budget below the quarter-size cost rejects outright).
        let mut s = sched(1.0);
        let heavy = RenderRequest {
            renderer: RendererKind::RayTracing,
            width: 256,
            height: 256,
            cells_per_task: 500,
        };
        let quarter_cost = s.job_cost(
            &RenderConfig {
                renderer: RendererKind::RayTracing,
                cells_per_task: 500,
                pixels: 64 * 64,
                tasks: 64,
            },
            false,
        );
        assert!(!s.past_crossover(500, 64 * 64));
        s.cfg.budget_s = 0.9 * quarter_cost / s.cfg.safety;
        s.begin_cycle(0);
        assert!(matches!(s.decide(heavy), Decision::Reject));
        s.end_cycle();

        // Light geometry, large image: rasterization wins, so the switch rung
        // admits what Halved{2} could not.
        let mut s = sched(1.0);
        let light = RenderRequest {
            renderer: RendererKind::RayTracing,
            width: 2048,
            height: 2048,
            cells_per_task: 3,
        };
        let rt_quarter = s.job_cost(
            &RenderConfig {
                renderer: RendererKind::RayTracing,
                cells_per_task: 3,
                pixels: 512 * 512,
                tasks: 64,
            },
            false,
        );
        let ra_quarter = s.job_cost(
            &RenderConfig {
                renderer: RendererKind::Rasterization,
                cells_per_task: 3,
                pixels: 512 * 512,
                tasks: 64,
            },
            false,
        );
        assert!(s.past_crossover(3, 512 * 512));
        assert!(ra_quarter < rt_quarter);
        s.cfg.budget_s = 0.5 * (rt_quarter + ra_quarter) / s.cfg.safety;
        s.begin_cycle(0);
        match s.decide(light) {
            Decision::Degrade(j) => {
                assert_eq!(j.rung, Rung::Switched { halvings: 2 });
                assert_eq!(j.cfg.renderer, RendererKind::Rasterization);
                assert_eq!(j.width, 512);
            }
            d => panic!("expected switched degrade, got {}", d.label()),
        }
        s.end_cycle();
    }

    /// Degradation never shrinks below the configured minimum side.
    #[test]
    fn min_image_side_floors_degradation() {
        let s = sched(1.0);
        let r = req(RendererKind::VolumeRendering, 100);
        assert_eq!(s.shrunk(&r, 2), (64, 64));
        // Requests already below the floor are left alone rather than upsized.
        let tiny = req(RendererKind::VolumeRendering, 32);
        assert_eq!(s.shrunk(&tiny, 2), (32, 32));
    }

    /// The shrink audit pinned: every ladder rung — whole-frame and the
    /// frame components of the pass-granular ladder — yields a renderable,
    /// nonzero-pixel config for every seed image size, including odd sides,
    /// sides below the tile floor, and a 1-pixel request. Degenerate
    /// halvings (>= 32, a u32 shift overflow before the audit) clamp to the
    /// floor instead of panicking.
    #[test]
    fn every_rung_stays_renderable_at_all_seed_sizes() {
        let s = sched(1.0);
        let sides = [1u32, 31, 63, 64, 65, 72, 101, 256, 333, 512, 1024, 1080, 2047, 4096];
        let mut rungs: Vec<Rung> = LADDER.to_vec();
        rungs.extend(crate::passes::PASS_LADDER.iter().map(|p| p.frame));
        rungs.push(Rung::Halved { halvings: 31 });
        rungs.push(Rung::Halved { halvings: 40 });
        rungs.push(Rung::Switched { halvings: 255 });
        for &side in &sides {
            for kind in [
                RendererKind::RayTracing,
                RendererKind::Rasterization,
                RendererKind::VolumeRendering,
            ] {
                let r = req(kind, side);
                for &rung in &rungs {
                    let Some((w, h, _)) = s.configure(&r, rung) else {
                        assert_eq!(rung, Rung::Drop, "only the drop rung may yield no config");
                        continue;
                    };
                    assert!(w >= 1 && h >= 1, "{rung:?} @ {side}: {w}x{h}");
                    assert!(w <= r.width && h <= r.height, "{rung:?} @ {side} upsized: {w}x{h}");
                    // At or above the floor, shrinking stops at the floor.
                    if side >= s.cfg.min_image_side && rung.halvings() > 0 {
                        assert!(w >= s.cfg.min_image_side, "{rung:?} @ {side}: {w}");
                    }
                    // Below the floor, the request passes through unshrunk.
                    if side < s.cfg.min_image_side {
                        assert_eq!((w, h), (r.width, r.height));
                    }
                }
            }
        }
    }
}
