//! The degradation ladder: a fixed, ordered list of fidelity reductions the
//! scheduler walks when a cycle's predicted rendering cost exceeds the
//! budget, plus the hysteresis that governs recovering fidelity.
//!
//! Determinism matters here: given the same models, budget, and request
//! stream, the ladder must produce the same decisions every run (the pinned
//! transcript test in `scheduler.rs` holds it to that).

/// One rung of the ladder, in increasing order of fidelity loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Render exactly as requested.
    Full,
    /// Shrink the image side by `2^halvings` (pixels by `4^halvings`).
    Halved { halvings: u8 },
    /// Shrink *and* switch ray tracing to rasterization — but only when the
    /// models say the config is past the Figure-15 crossover (rasterization
    /// predicted faster); otherwise the switch would cost time, not save it.
    Switched { halvings: u8 },
    /// Drop the frame entirely.
    Drop,
}

impl Rung {
    /// How many times the requested image side is halved on this rung.
    pub fn halvings(&self) -> u8 {
        match self {
            Rung::Full | Rung::Drop => 0,
            Rung::Halved { halvings } | Rung::Switched { halvings } => *halvings,
        }
    }

    /// Short label for transcripts and tables. Halvings beyond the ladder's
    /// deepest rung label as `shrunk` rather than masquerading as `quarter`.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::Full => "full",
            Rung::Halved { halvings: 1 } => "half",
            Rung::Halved { halvings: 2 } => "quarter",
            Rung::Halved { .. } => "shrunk",
            Rung::Switched { .. } => "switch",
            Rung::Drop => "drop",
        }
    }
}

/// The ladder the scheduler walks, top (full fidelity) to bottom (drop).
pub const LADDER: [Rung; 5] = [
    Rung::Full,
    Rung::Halved { halvings: 1 },
    Rung::Halved { halvings: 2 },
    Rung::Switched { halvings: 2 },
    Rung::Drop,
];

/// Index of the terminal `Drop` rung.
pub const DROP_LEVEL: usize = LADDER.len() - 1;

/// Hysteretic position on the ladder. Escalation (losing fidelity) is
/// immediate — a blown budget must be honored *now* — but recovery steps up
/// one rung at a time, and only after `hysteresis_cycles` consecutive cycles
/// with headroom at the higher fidelity. A single cheap cycle therefore
/// never flips the schedule back and forth.
#[derive(Debug, Clone)]
pub struct Ladder {
    level: usize,
    streak: u32,
    hysteresis_cycles: u32,
}

impl Ladder {
    pub fn new(hysteresis_cycles: u32) -> Ladder {
        Ladder { level: 0, streak: 0, hysteresis_cycles: hysteresis_cycles.max(1) }
    }

    /// Current operating level (index into [`LADDER`]).
    pub fn level(&self) -> usize {
        self.level
    }

    pub fn rung(&self) -> Rung {
        LADDER[self.level]
    }

    /// Degrade to at least `level`, immediately. Resets the recovery streak.
    pub fn escalate_to(&mut self, level: usize) {
        if level > self.level {
            self.level = level.min(DROP_LEVEL);
            self.streak = 0;
        }
    }

    /// Call once per cycle after execution with whether the cycle's demand
    /// would have fit one level up (with margin). Steps up at most one level
    /// per call, and only after a full streak of headroom cycles.
    pub fn relax(&mut self, headroom: bool) {
        if self.level == 0 || !headroom {
            self.streak = 0;
            return;
        }
        self.streak += 1;
        if self.streak >= self.hysteresis_cycles {
            self.level -= 1;
            self.streak = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_fidelity_loss() {
        assert_eq!(LADDER[0], Rung::Full);
        assert_eq!(LADDER[DROP_LEVEL], Rung::Drop);
        // Halvings are monotone over the executable rungs.
        let h: Vec<u8> = LADDER[..DROP_LEVEL].iter().map(|r| r.halvings()).collect();
        assert!(h.windows(2).all(|w| w[0] <= w[1]), "{h:?}");
    }

    #[test]
    fn escalation_is_immediate_and_recovery_is_hysteretic() {
        let mut l = Ladder::new(3);
        l.escalate_to(2);
        assert_eq!(l.level(), 2);
        // Two headroom cycles are not enough.
        l.relax(true);
        l.relax(true);
        assert_eq!(l.level(), 2);
        // A bad cycle resets the streak entirely.
        l.relax(false);
        l.relax(true);
        l.relax(true);
        assert_eq!(l.level(), 2);
        // The third consecutive headroom cycle steps up exactly one level.
        l.relax(true);
        assert_eq!(l.level(), 1);
        // Escalation mid-recovery wins instantly.
        l.relax(true);
        l.escalate_to(3);
        assert_eq!(l.level(), 3);
        // Escalating below the current level is a no-op.
        l.escalate_to(1);
        assert_eq!(l.level(), 3);
    }

    #[test]
    fn relax_never_rises_above_full() {
        let mut l = Ladder::new(1);
        l.relax(true);
        assert_eq!(l.level(), 0);
        l.escalate_to(9); // clamped to the drop rung
        assert_eq!(l.level(), DROP_LEVEL);
    }
}
