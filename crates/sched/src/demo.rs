//! The budgeted in situ demo: a proxy app (LULESH / Kripke / CloverLeaf)
//! drives per-cycle render requests through the [`Scheduler`] against a
//! simulated 64-rank machine, on a simulated clock.
//!
//! The scheduler starts from a deliberately miscalibrated prior (ground truth
//! scaled by `prior_scale`), so early predictions are badly conservative;
//! the online refit then converges them toward the executor's hidden truth,
//! which is what the `repro sched` table and the acceptance tests measure:
//! budget adherence stays high the whole run, and prediction error shrinks
//! from the first quartile of cycles to the last.

use crate::scheduler::{Decision, RenderRequest, Scheduler, SchedulerConfig};
use crate::simexec::SimulatedExecutor;
use perfmodel::feasibility::ModelSet;
use perfmodel::mapping::{MappingConstants, RenderConfig};
use perfmodel::models::FittedLinearModel;
use perfmodel::regression::LinearRegression;
use perfmodel::sample::RendererKind;
use sims::ProxySim;

/// Demo parameters. `Default` is the 64-rank quick configuration the
/// acceptance tests and the `repro sched` table use.
#[derive(Debug, Clone)]
pub struct DemoConfig {
    /// Simulated MPI ranks (weak scaling; each owns one block).
    pub tasks: usize,
    /// Simulation cycles to run.
    pub cycles: usize,
    /// Requested (full-fidelity) image side.
    pub image_side: u32,
    /// Per-cycle budget as a fraction of the ground-truth full-fidelity
    /// cycle cost — 0.5 means "you may spend half of what blind rendering
    /// would".
    pub budget_fraction: f64,
    /// Scheduler prior = ground truth scaled by this factor (the
    /// miscalibration the refit has to work off).
    pub prior_scale: f64,
    /// Relative runtime noise amplitude in the executor.
    pub noise: f64,
    pub seed: u64,
    /// `false` renders everything at full fidelity (the blind baseline).
    pub scheduled: bool,
}

impl DemoConfig {
    pub fn quick(scheduled: bool) -> DemoConfig {
        DemoConfig {
            tasks: 64,
            cycles: 40,
            image_side: 1024,
            budget_fraction: 0.5,
            prior_scale: 1.6,
            noise: 0.03,
            seed: 0x5EED,
            scheduled,
        }
    }
}

/// One demo cycle, as reported.
#[derive(Debug, Clone, Copy)]
pub struct CycleOutcome {
    pub cycle: i64,
    pub level: usize,
    pub admitted: u32,
    pub degraded: u32,
    pub rejected: u32,
    pub predicted_s: f64,
    pub actual_s: f64,
    pub within: bool,
}

impl CycleOutcome {
    pub fn abs_rel_error(&self) -> f64 {
        (self.predicted_s - self.actual_s).abs() / self.actual_s.max(1e-12)
    }
}

/// Full-run report.
#[derive(Debug, Clone)]
pub struct DemoReport {
    pub sim: &'static str,
    pub budget_s: f64,
    pub cycles: Vec<CycleOutcome>,
}

impl DemoReport {
    /// Fraction of cycles whose measured render cost stayed within budget.
    pub fn adherence(&self) -> f64 {
        if self.cycles.is_empty() {
            return 1.0;
        }
        self.cycles.iter().filter(|c| c.within).count() as f64 / self.cycles.len() as f64
    }

    pub fn degraded_total(&self) -> u32 {
        self.cycles.iter().map(|c| c.degraded).sum()
    }

    pub fn rejected_total(&self) -> u32 {
        self.cycles.iter().map(|c| c.rejected).sum()
    }

    /// Median absolute relative prediction error over the first quartile of
    /// cycles (the miscalibrated-prior regime).
    pub fn first_quartile_error(&self) -> f64 {
        let q = (self.cycles.len() / 4).max(1);
        median(self.cycles[..q].iter().map(|c| c.abs_rel_error()))
    }

    /// Same over the last quartile (the refit-converged regime).
    pub fn last_quartile_error(&self) -> f64 {
        let q = (self.cycles.len() / 4).max(1);
        median(self.cycles[self.cycles.len() - q..].iter().map(|c| c.abs_rel_error()))
    }
}

fn median(xs: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = xs.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        0.5 * (v[mid - 1] + v[mid])
    }
}

/// The seconds-scale synthetic model set standing in for a calibrated 64-rank
/// machine (the executor's hidden truth). Coefficients match the toy set the
/// feasibility tests use, so regimes (RT/RAST crossover, comp-dominated large
/// images) behave like the paper's Figure 14/15 curves.
pub fn ground_truth() -> ModelSet {
    let fit = |coeffs: Vec<f64>| LinearRegression::with_stats(coeffs, 1.0, 0.0, 10);
    ModelSet {
        device: "sim-rank".into(),
        rt: FittedLinearModel {
            name: "ray_tracing",
            fit: fit(vec![2e-9, 1e-8, 1e-3]),
            feature_names: vec!["AP*log2(O)", "AP", "1"],
        },
        rt_build: FittedLinearModel {
            name: "ray_tracing_build",
            fit: fit(vec![2e-8, 1e-3]),
            feature_names: vec!["O", "1"],
        },
        rast: FittedLinearModel {
            name: "rasterization",
            fit: fit(vec![4e-9, 4e-10, 1e-3]),
            feature_names: vec!["O", "VO*PPT", "1"],
        },
        vr: FittedLinearModel {
            name: "volume_rendering",
            fit: fit(vec![2e-10, 1e-9, 1e-2]),
            feature_names: vec!["AP*CS", "AP*SPR", "1"],
        },
        comp: FittedLinearModel {
            name: "compositing",
            fit: fit(vec![2e-8, 5e-8, 1e-3]),
            feature_names: vec!["avg(AP)", "Pixels", "1"],
        },
        // The executor's wire truth is the dense-form law above; leaving the
        // compressed and DFB slots empty keeps the scheduler transcripts (and
        // their pinned tests) on the classic prediction path until a refit
        // installs per-wire models from observations.
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    }
}

/// A copy of `set` with every coefficient scaled by `factor` — the simplest
/// way to build a uniformly miscalibrated prior.
pub fn scale_model_set(set: &ModelSet, factor: f64) -> ModelSet {
    let mut out = set.clone();
    let mut models =
        vec![&mut out.rt, &mut out.rt_build, &mut out.rast, &mut out.vr, &mut out.comp];
    if let Some(m) = out.comp_compressed.as_mut() {
        models.push(m);
    }
    if let Some(m) = out.comp_dfb.as_mut() {
        models.push(m);
    }
    for m in models {
        for c in m.fit.coeffs.iter_mut() {
            *c *= factor;
        }
    }
    out
}

/// Cells per axis of one rank's block under weak scaling.
fn cells_per_task_axis(num_cells: usize, tasks: usize) -> usize {
    ((num_cells as f64 / tasks as f64).cbrt().round() as usize).max(2)
}

/// Run the budgeted demo loop: step the sim, queue its renderer pairings
/// (plus a periodic double-side burst frame), schedule, execute on the
/// simulated machine, observe, repeat.
pub fn run_budgeted_demo(sim: &mut dyn ProxySim, cfg: &DemoConfig) -> DemoReport {
    let constants = MappingConstants::default();
    let truth = ground_truth();
    let mut exec = SimulatedExecutor::new(truth.clone(), constants, cfg.noise, cfg.seed);

    let n = cells_per_task_axis(sim.num_cells(), cfg.tasks);
    let renderers: Vec<RendererKind> =
        sim.vis_renderers().iter().filter_map(|s| RendererKind::parse(s)).collect();
    assert!(!renderers.is_empty(), "sim requested no renderers");

    // Budget: a fraction of the noise-free ground-truth cost of rendering
    // everything the sim asks for at full fidelity.
    let pixels = (cfg.image_side as usize) * (cfg.image_side as usize);
    let mut full_cost = 0.0;
    let mut build_counted = false;
    for &renderer in &renderers {
        let c = RenderConfig { renderer, cells_per_task: n, pixels, tasks: cfg.tasks };
        full_cost += exec.true_frame_seconds(&c);
        if renderer == RendererKind::RayTracing && !build_counted {
            full_cost += exec.true_build_seconds(&c);
            build_counted = true;
        }
    }
    let budget_s = cfg.budget_fraction * full_cost;

    // The blind baseline reuses the same machinery with an infinite admission
    // budget: everything admits at full fidelity, and adherence is judged
    // against the real budget below.
    let admission_budget = if cfg.scheduled { budget_s } else { f64::INFINITY };
    let mut sched = Scheduler::new(
        scale_model_set(&truth, cfg.prior_scale),
        constants,
        SchedulerConfig::new(admission_budget, cfg.tasks),
    );

    let mut cycles = Vec::with_capacity(cfg.cycles);
    for c in 0..cfg.cycles {
        sim.step();
        sched.begin_cycle(sim.cycle() as i64);
        let mut requests: Vec<RenderRequest> = renderers
            .iter()
            .map(|&renderer| RenderRequest {
                renderer,
                width: cfg.image_side,
                height: cfg.image_side,
                cells_per_task: n,
            })
            .collect();
        if c % 8 == 4 {
            // Periodic load burst: an extra showcase frame at twice the side.
            requests.push(RenderRequest {
                renderer: RendererKind::RayTracing,
                width: cfg.image_side * 2,
                height: cfg.image_side * 2,
                cells_per_task: n,
            });
        }
        let mut built = false;
        for req in requests {
            match sched.decide(req) {
                Decision::Admit(job) | Decision::Degrade(job) => {
                    let charge = job.cfg.renderer == RendererKind::RayTracing && !built;
                    let cost = exec.execute(&job.cfg, charge);
                    if charge {
                        built = true;
                    }
                    sched.observe_render(&job.cfg, cost.local_s, cost.build_s);
                    // The executor models the default barriered RLE exchange.
                    sched.observe_composite(
                        cost.pixels,
                        cost.avg_active_pixels,
                        cost.comp_s,
                        true,
                        false,
                    );
                }
                Decision::Reject => {}
            }
        }
        let Some(rec) = sched.end_cycle() else { continue };
        cycles.push(CycleOutcome {
            cycle: rec.cycle,
            level: rec.level,
            admitted: rec.admitted,
            degraded: rec.degraded,
            rejected: rec.rejected,
            predicted_s: rec.predicted_s,
            actual_s: rec.actual_s,
            within: rec.actual_s <= budget_s,
        });
    }
    DemoReport { sim: sim.name(), budget_s, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median([3.0, 1.0, 2.0].into_iter()), 2.0);
        assert_eq!(median([4.0, 1.0, 2.0, 3.0].into_iter()), 2.5);
        assert_eq!(median(std::iter::empty()), 0.0);
    }

    #[test]
    fn scaled_prior_overestimates_uniformly() {
        let truth = ground_truth();
        let prior = scale_model_set(&truth, 1.6);
        let k = MappingConstants::default();
        let cfg = RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 3,
            pixels: 1024 * 1024,
            tasks: 64,
        };
        let t = truth.predict_frame_seconds(&cfg, &k);
        let p = prior.predict_frame_seconds(&cfg, &k);
        assert!((p / t - 1.6).abs() < 1e-12, "{p} / {t}");
    }

    #[test]
    fn demo_runs_all_three_sims() {
        let mut cfg = DemoConfig::quick(true);
        cfg.cycles = 10;
        let mut lulesh = sims::Lulesh::new(8);
        let mut kripke = sims::Kripke::new(10);
        let mut clover = sims::Cloverleaf::new(10);
        let sims: [&mut dyn ProxySim; 3] = [&mut lulesh, &mut kripke, &mut clover];
        for sim in sims {
            let report = run_budgeted_demo(sim, &cfg);
            assert_eq!(report.cycles.len(), 10);
            assert!(report.budget_s > 0.0);
            // Something executed every cycle.
            assert!(report.cycles.iter().all(|c| c.actual_s > 0.0));
        }
    }
}
