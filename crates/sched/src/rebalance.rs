//! Measured-time dynamic rebalancing of object-space partitions.
//!
//! The paper's multi-node total `T_total = max_tasks(T_LR) + T_COMP`
//! (Equation 5.4) is dominated by its max term whenever work is skewed —
//! and a static object-space partition of a simulation like LULESH *is*
//! skewed, because per-cell render cost tracks the physics (dense isosurface
//! crossings near the blast front, nothing elsewhere). This module closes
//! the loop the way Equalizer-style load balancing does: per-rank render
//! times come back from the `mpirt` executors each cycle, are attributed to
//! the cells each rank owns (EWMA-smoothed so one noisy frame cannot thrash
//! the layout), and on *sustained* imbalance the partition's split planes
//! are recomputed from the measured per-cell costs via
//! [`Partition::weighted_bisect`]. The migration that reconciles old and new
//! layouts is charged to the event clock — `observe` → `charge_migration` —
//! so the rebalanced `T_total` honestly pays for the cells it moved.
//!
//! The trigger is hysteretic: imbalance = `max(T_LR) / mean(T_LR)` must
//! exceed [`RebalanceConfig::threshold`] for
//! [`RebalanceConfig::sustain_cycles`] *consecutive* cycles before a
//! rebalance fires, and the streak resets after each one. A one-cycle spike
//! (a page fault, a cache-cold frame) never moves data.

use mesh::partition::{Migration, Partition};
use mpirt::event::EventWorld;
use mpirt::lockstep::{LockstepWorld, RoundCost};
use perfmodel::regression::LinearRegression;
use vecmath::Vec3;

/// Trigger and accounting knobs for [`Rebalancer`].
#[derive(Debug, Clone, Copy)]
pub struct RebalanceConfig {
    /// Imbalance ratio `max(T_LR)/mean(T_LR)` above which a cycle counts
    /// toward the trigger streak.
    pub threshold: f64,
    /// Consecutive over-threshold cycles required before rebalancing.
    pub sustain_cycles: u32,
    /// Payload bytes per migrated cell (geometry + fields) charged to the
    /// simulated network.
    pub bytes_per_cell: u64,
    /// EWMA weight of the newest per-cell cost observation in `[0, 1]`.
    pub smoothing: f64,
}

impl Default for RebalanceConfig {
    fn default() -> RebalanceConfig {
        RebalanceConfig { threshold: 1.2, sustain_cycles: 3, bytes_per_cell: 256, smoothing: 0.5 }
    }
}

/// Imbalance ratio `max / mean` of per-rank seconds (1.0 = perfectly flat;
/// 0 when the cycle did no work).
pub fn imbalance(per_rank_seconds: &[f64]) -> f64 {
    if per_rank_seconds.is_empty() {
        return 0.0;
    }
    let max = per_rank_seconds.iter().copied().fold(0.0f64, f64::max);
    let mean = per_rank_seconds.iter().sum::<f64>() / per_rank_seconds.len() as f64;
    if mean > 0.0 {
        max / mean
    } else {
        0.0
    }
}

/// The rebalancing controller: owns the live [`Partition`] and the measured
/// per-cell cost field it is recomputed from.
#[derive(Debug, Clone)]
pub struct Rebalancer {
    cfg: RebalanceConfig,
    centroids: Vec<Vec3>,
    part: Partition,
    /// EWMA-smoothed measured cost per cell, the weights of the next
    /// weighted bisection.
    cost: Vec<f64>,
    streak: u32,
    /// Last observed cycle: per-rank cell counts and seconds, the samples
    /// behind [`Rebalancer::predict_max_seconds`].
    last_obs: Option<(Vec<usize>, Vec<f64>)>,
}

impl Rebalancer {
    /// Start from the unweighted bisection of `centroids` over `ranks`.
    pub fn new(centroids: Vec<Vec3>, ranks: usize, cfg: RebalanceConfig) -> Rebalancer {
        let part = Partition::bisect(&centroids, ranks);
        Rebalancer::with_partition(centroids, part, cfg)
    }

    /// Start from an existing partition (e.g. a deliberately skewed layout
    /// in an experiment); `centroids` must cover the same cells.
    pub fn with_partition(
        centroids: Vec<Vec3>,
        part: Partition,
        cfg: RebalanceConfig,
    ) -> Rebalancer {
        assert_eq!(centroids.len(), part.num_cells(), "one centroid per cell");
        let cost = vec![1.0; centroids.len()];
        Rebalancer { cfg, centroids, part, cost, streak: 0, last_obs: None }
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// EWMA-smoothed measured cost per cell.
    pub fn cell_costs(&self) -> &[f64] {
        &self.cost
    }

    /// Feed one cycle's measured per-rank render seconds. Each rank's time
    /// is attributed uniformly to the cells it owns (EWMA against previous
    /// cycles); on the [`RebalanceConfig::sustain_cycles`]-th consecutive
    /// over-threshold cycle the split planes are recomputed from the
    /// smoothed costs and the reconciling [`Migration`] is returned. The
    /// caller must charge that migration to its simulated network
    /// ([`charge_migration`] / [`migration_round`]) — the win is only honest
    /// if the moved bytes are paid for.
    pub fn observe_cycle(&mut self, per_rank_seconds: &[f64]) -> Option<Migration> {
        assert_eq!(per_rank_seconds.len(), self.part.ranks(), "one time per rank");
        let counts = self.part.counts();
        // The first observation seeds the cost field outright — the initial
        // placeholder weights carry no timing information to average against.
        let a = if self.last_obs.is_none() { 1.0 } else { self.cfg.smoothing };
        for (rank, &t) in per_rank_seconds.iter().enumerate() {
            if counts[rank] == 0 {
                continue;
            }
            let per_cell = t / counts[rank] as f64;
            for cell in self.part.cells_of(rank) {
                self.cost[cell] = a * per_cell + (1.0 - a) * self.cost[cell];
            }
        }
        self.last_obs = Some((counts, per_rank_seconds.to_vec()));
        if imbalance(per_rank_seconds) > self.cfg.threshold {
            self.streak += 1;
        } else {
            self.streak = 0;
            return None;
        }
        if self.streak < self.cfg.sustain_cycles {
            return None;
        }
        self.streak = 0;
        let next = Partition::weighted_bisect(&self.centroids, &self.cost, self.part.ranks());
        let mig = self.part.migration(&next);
        self.part = next;
        if mig.moved_cells() == 0 {
            None
        } else {
            Some(mig)
        }
    }

    /// Fit `T_LR = c0*cells + c1` to the last observed cycle and predict the
    /// max term the *current* partition's cell counts imply — the fitted
    /// model's claim about the post-rebalance `max(T_LR)`, checkable against
    /// the next measured cycle. `None` before the first observation.
    pub fn predict_max_seconds(&self) -> Option<f64> {
        let (counts, seconds) = self.last_obs.as_ref()?;
        let xs: Vec<Vec<f64>> = counts.iter().map(|&c| vec![c as f64, 1.0]).collect();
        let fit = LinearRegression::fit(&xs, seconds);
        Some(
            self.part
                .counts()
                .iter()
                .map(|&c| fit.predict(&[c as f64, 1.0]).max(0.0))
                .fold(0.0f64, f64::max),
        )
    }
}

/// Charge a migration's traffic to the event clock: one message per
/// `(from, to)` link, `cells * bytes_per_cell` on the wire (cell payloads
/// are raw floats — no compression), receiver blocked until arrival.
/// Returns the total bytes charged.
pub fn charge_migration(world: &mut EventWorld, mig: &Migration, bytes_per_cell: u64) -> u64 {
    let mut total = 0u64;
    for (&(from, to), &cells) in &mig.per_link {
        let bytes = cells as u64 * bytes_per_cell;
        let arrival = world.send(from as usize, bytes as usize, bytes as usize);
        world.recv(to as usize, arrival);
        total += bytes;
    }
    total
}

/// The same migration expressed as one lockstep superstep: per-rank
/// [`RoundCost`]s with the bytes and message counts each source rank sends.
/// Feed to [`LockstepWorld::finish_round`].
pub fn migration_round(
    world: &LockstepWorld,
    mig: &Migration,
    bytes_per_cell: u64,
) -> Vec<RoundCost> {
    let mut costs = vec![RoundCost::default(); world.size];
    for (&(from, _), &cells) in &mig.per_link {
        let c = &mut costs[from as usize];
        c.bytes_sent += cells * bytes_per_cell as usize;
        c.bytes_dense += cells * bytes_per_cell as usize;
        c.messages += 1;
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpirt::net::NetModel;

    /// A 1-D cell line whose right half costs `skew`× the left half.
    fn line(n: usize) -> Vec<Vec3> {
        (0..n).map(|i| Vec3::new(i as f32, 0.0, 0.0)).collect()
    }

    fn skewed_seconds(part: &Partition, per_cell: impl Fn(usize) -> f64) -> Vec<f64> {
        (0..part.ranks()).map(|r| part.cells_of(r).iter().map(|&c| per_cell(c)).sum()).collect()
    }

    #[test]
    fn imbalance_ratio() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
        assert!((imbalance(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((imbalance(&[3.0, 1.0]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sustained_skew_triggers_rebalance_and_flattens_it() {
        let n = 256;
        let cfg = RebalanceConfig { sustain_cycles: 3, ..Default::default() };
        let mut rb = Rebalancer::new(line(n), 4, cfg);
        // Right-half cells cost 9x: the uniform split is badly imbalanced.
        let per_cell = |c: usize| if c >= n / 2 { 9e-4 } else { 1e-4 };
        let mut migrated = None;
        let mut cycles = 0;
        for _ in 0..10 {
            cycles += 1;
            let t = skewed_seconds(rb.partition(), per_cell);
            if let Some(m) = rb.observe_cycle(&t) {
                migrated = Some(m);
                break;
            }
        }
        // Fires on exactly the sustain_cycles-th consecutive bad cycle.
        assert_eq!(cycles, 3);
        let mig = migrated.expect("sustained imbalance must trigger");
        assert!(mig.moved_cells() > 0);
        // The recomputed partition flattens the measured imbalance.
        let before = imbalance(&skewed_seconds(&Partition::bisect(&line(n), 4), per_cell));
        let after = imbalance(&skewed_seconds(rb.partition(), per_cell));
        assert!(after < before, "{after} !< {before}");
        assert!(after < 1.2, "rebalanced imbalance still {after}");
        // No cell lost or duplicated.
        assert_eq!(rb.partition().num_cells(), n);
        assert_eq!(rb.partition().counts().iter().sum::<usize>(), n);
    }

    #[test]
    fn single_spike_does_not_move_data() {
        let n = 64;
        let cfg = RebalanceConfig { sustain_cycles: 3, ..Default::default() };
        let mut rb = Rebalancer::new(line(n), 4, cfg);
        let flat = skewed_seconds(rb.partition(), |_| 1e-4);
        let spiky = skewed_seconds(rb.partition(), |c| if c < 8 { 1e-3 } else { 1e-4 });
        assert!(rb.observe_cycle(&spiky).is_none());
        assert!(rb.observe_cycle(&spiky).is_none());
        // The streak resets on a healthy cycle: two more bad cycles are not
        // enough to fire.
        assert!(rb.observe_cycle(&flat).is_none());
        assert!(rb.observe_cycle(&spiky).is_none());
        assert!(rb.observe_cycle(&spiky).is_none());
    }

    #[test]
    fn migration_charges_the_event_clock() {
        let n = 128;
        let cfg = RebalanceConfig { sustain_cycles: 1, bytes_per_cell: 512, ..Default::default() };
        let mut rb = Rebalancer::new(line(n), 4, cfg);
        let per_cell = |c: usize| if c >= n / 2 { 9e-4 } else { 1e-4 };
        let t = skewed_seconds(rb.partition(), per_cell);
        let mig = rb.observe_cycle(&t).expect("sustain=1 fires immediately");
        let mut world = EventWorld::new(4, NetModel::cluster());
        let bytes = charge_migration(&mut world, &mig, 512);
        assert_eq!(bytes, mig.moved_cells() as u64 * 512);
        assert_eq!(world.total_bytes, bytes);
        assert!(world.elapsed() > 0.0, "migration must cost simulated time");
        // Lockstep sees the same wire bytes.
        let lw = LockstepWorld::new(4, NetModel::cluster());
        let costs = migration_round(&lw, &mig, 512);
        assert_eq!(costs.iter().map(|c| c.bytes_sent as u64).sum::<u64>(), bytes);
    }

    #[test]
    fn fitted_model_predicts_post_rebalance_max() {
        let n = 256;
        // Uniform per-cell cost: T_LR is exactly linear in cells, so the
        // fitted model's post-rebalance max must match the measured next
        // cycle almost exactly.
        let cfg = RebalanceConfig { sustain_cycles: 1, threshold: 1.05, ..Default::default() };
        let mut rb = Rebalancer::with_partition(
            line(n),
            // A skewed-but-legal starting point: weight the left end so the
            // uniform-cost render is imbalanced.
            Partition::weighted_bisect(
                &line(n),
                &(0..n).map(|i| if i < 32 { 20.0 } else { 1.0 }).collect::<Vec<_>>(),
                4,
            ),
            cfg,
        );
        let t = skewed_seconds(rb.partition(), |_| 1e-4);
        assert!(imbalance(&t) > 1.05, "starting layout must be skewed: {}", imbalance(&t));
        let _ = rb.observe_cycle(&t).expect("fires");
        let predicted = rb.predict_max_seconds().expect("observed at least one cycle");
        let measured =
            skewed_seconds(rb.partition(), |_| 1e-4).iter().copied().fold(0.0f64, f64::max);
        assert!(
            (predicted - measured).abs() / measured < 0.05,
            "predicted {predicted} vs measured {measured}"
        );
    }
}
