//! End-to-end: the [`sched::Scheduler`] plugged into Strawman's admission
//! hook gates real (small) renders — admitting, degrading, or rejecting
//! depending on the per-cycle budget.

use conduit_node::Node;
use dpp::Device;
use perfmodel::feasibility::ModelSet;
use perfmodel::mapping::MappingConstants;
use perfmodel::models::FittedLinearModel;
use perfmodel::regression::LinearRegression;
use sched::{Scheduler, SchedulerConfig};
use strawman::{Options, Strawman, StrawmanError};

fn model(name: &'static str, coeffs: Vec<f64>) -> FittedLinearModel {
    FittedLinearModel {
        name,
        fit: LinearRegression::with_stats(coeffs, 1.0, 0.0, 10),
        feature_names: Vec::new(),
    }
}

/// A model set where cost is purely pixel-driven (1 µs/pixel of compositing,
/// no local-render or build cost), so budget thresholds in the test map
/// directly onto image sizes.
fn pixel_cost_models() -> ModelSet {
    ModelSet {
        device: "test".into(),
        rt: model("ray_tracing", vec![0.0, 0.0, 0.0]),
        rt_build: model("ray_tracing_build", vec![0.0, 0.0]),
        rast: model("rasterization", vec![0.0, 0.0, 0.0]),
        vr: model("volume_rendering", vec![0.0, 0.0, 0.0]),
        comp: model("compositing", vec![0.0, 1e-6, 0.0]),
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    }
}

fn scheduler(budget_s: f64) -> Scheduler {
    let mut cfg = SchedulerConfig::new(budget_s, 8);
    cfg.min_image_side = 8;
    Scheduler::new(pixel_cost_models(), MappingConstants::default(), cfg)
}

fn uniform_data(n: usize) -> Node {
    let g = mesh::datasets::field_grid(mesh::datasets::FieldKind::ShockShell, [n; 3]);
    let mut d = Node::new();
    d.set("state/time", 0.5f64);
    d.set("state/cycle", 3i64);
    d.set("coords/type", "uniform");
    d.set("coords/dims/i", g.dims[0] as i64);
    d.set("coords/dims/j", g.dims[1] as i64);
    d.set("coords/dims/k", g.dims[2] as i64);
    d.set("fields/scalar/association", "vertex");
    d.set("fields/scalar/values", g.field("scalar").unwrap().values.clone());
    d
}

fn actions(side: i64) -> Node {
    let mut a = Node::new();
    let add = a.append();
    add.set("action", "AddPlot");
    add.set("var", "scalar");
    add.set("type", "pseudocolor");
    a.append().set("action", "DrawPlots");
    let save = a.append();
    save.set("action", "SaveImage");
    save.set("fileName", "");
    save.set("width", side);
    save.set("height", side);
    a
}

fn run(budget_s: f64) -> (Strawman, Result<(), StrawmanError>) {
    let mut sm = Strawman::open(Options {
        device: Device::Serial,
        output_dir: std::env::temp_dir(),
        cycle_budget_s: Some(budget_s),
        scheduler: Some(Box::new(scheduler(budget_s))),
        ..Options::default()
    });
    sm.publish(&uniform_data(12)).unwrap();
    let result = sm.execute(&actions(64));
    (sm, result)
}

#[test]
fn generous_budget_admits_at_full_size() {
    // 64x64 = 4096 px -> 4.1 ms predicted; 0.1 s budget fits easily.
    let (sm, result) = run(0.1);
    result.expect("should render");
    assert_eq!(sm.records.len(), 1);
    assert_eq!((sm.records[0].width, sm.records[0].height), (64, 64));
    assert_eq!(sm.admissions.totals(), (1, 0, 0));
}

#[test]
fn tight_budget_degrades_the_image() {
    // Effective budget 2.7 ms: the 4.1 ms full frame misses, the ~1.0 ms
    // half-size frame fits.
    let (sm, result) = run(3e-3);
    result.expect("should render degraded");
    assert_eq!(sm.records.len(), 1);
    assert_eq!((sm.records[0].width, sm.records[0].height), (32, 32));
    assert_eq!(sm.admissions.totals(), (0, 1, 0));
}

#[test]
fn impossible_budget_rejects_the_render() {
    // 9 µs effective budget is below even the 8x8 floor (64 px -> 64 µs).
    let (sm, result) = run(1e-5);
    assert!(matches!(result, Err(StrawmanError::Rejected)));
    assert!(sm.records.is_empty());
    assert_eq!(sm.admissions.totals(), (0, 0, 1));
}
