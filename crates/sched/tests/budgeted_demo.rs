//! Acceptance tests for the budgeted demo loop (ISSUE 2, criteria a and b):
//! a 64-rank LULESH-driven run must keep at least 95% of cycles within the
//! render budget while the unscheduled baseline blows it, and the online
//! refit must strictly reduce median prediction error between the first and
//! last quartile of cycles.

use sched::{run_budgeted_demo, DemoConfig};
use sims::Lulesh;

#[test]
fn lulesh_scheduled_run_keeps_budget_while_unscheduled_blows_it() {
    let mut sim = Lulesh::new(10);
    let scheduled = run_budgeted_demo(&mut sim, &DemoConfig::quick(true));

    let mut sim = Lulesh::new(10);
    let blind = run_budgeted_demo(&mut sim, &DemoConfig::quick(false));

    assert_eq!(scheduled.budget_s, blind.budget_s, "both runs judge the same budget");
    assert!(
        scheduled.adherence() >= 0.95,
        "scheduled adherence {} < 0.95 (budget {} s)",
        scheduled.adherence(),
        scheduled.budget_s
    );
    assert!(
        blind.adherence() < 0.5,
        "unscheduled baseline should blow the budget, adherence {}",
        blind.adherence()
    );
    // The budget only holds because the scheduler actually intervened.
    assert!(scheduled.degraded_total() > 0, "expected at least one degraded frame");
    assert_eq!(blind.degraded_total(), 0, "the blind run must not degrade anything");
}

#[test]
fn online_refit_strictly_reduces_prediction_error() {
    let mut sim = Lulesh::new(10);
    let report = run_budgeted_demo(&mut sim, &DemoConfig::quick(true));

    let first = report.first_quartile_error();
    let last = report.last_quartile_error();
    assert!(
        last < first,
        "median abs rel error must strictly drop: first quartile {first}, last quartile {last}"
    );
    // The prior is off by prior_scale (60%); converged predictions should sit
    // near the executor's noise floor.
    assert!(first > 0.15, "first-quartile error {first} should reflect the bad prior");
    assert!(last < 0.10, "last-quartile error {last} should be near the noise level");
}

#[test]
fn all_three_proxies_hold_the_budget() {
    let mut lulesh = Lulesh::new(10);
    let mut kripke = sims::Kripke::new(12);
    let mut clover = sims::Cloverleaf::new(12);
    let sims: [&mut dyn sims::ProxySim; 3] = [&mut lulesh, &mut kripke, &mut clover];
    for sim in sims {
        let report = run_budgeted_demo(sim, &DemoConfig::quick(true));
        assert!(
            report.adherence() >= 0.95,
            "{}: adherence {} < 0.95",
            report.sim,
            report.adherence()
        );
    }
}
