//! Byte-accounting guarantees of the compressed exchange: compression must
//! strictly shrink the wire for mostly-background images, cost exactly the
//! dense bytes for fully-active images (the raw fallback), and never change
//! the simulated-clock rules (latency on messages, bytes over bandwidth).

use compositing::{
    binary_swap_opts, direct_send_opts, radix_k_opts, CompositeMode, ExchangeOptions, RankImage,
};
use mpirt::NetModel;
use vecmath::Color;

/// `p` rank images with exactly `active` payload pixels each (at staggered
/// offsets so overlap patterns vary), the rest background.
fn images_with_active(p: usize, w: u32, h: u32, active: usize) -> Vec<RankImage> {
    (0..p)
        .map(|r| {
            let mut img = RankImage::empty(w, h);
            let n = img.num_pixels();
            for k in 0..active.min(n) {
                let i = (k + r * 17) % n;
                let a = 0.25 + 0.5 * ((k % 7) as f32 / 7.0);
                img.color[i] = Color::new(0.6 * a, 0.3 * a, 0.1 * a, a);
                img.depth[i] = r as f32 + (k % 5) as f32 * 0.1;
            }
            img
        })
        .collect()
}

#[test]
fn mostly_background_strictly_decreases_total_bytes() {
    // ~6% active pixels: every algorithm must move strictly fewer bytes
    // compressed than dense, in both merge modes.
    let imgs = images_with_active(8, 32, 32, 64);
    let factors = compositing::algorithms::default_factors(8);
    for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
        for (name, comp, dense) in [
            (
                "direct_send",
                direct_send_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::default()).1,
                direct_send_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::dense()).1,
            ),
            (
                "binary_swap",
                binary_swap_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::default()).1,
                binary_swap_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::dense()).1,
            ),
            (
                "radix_k",
                radix_k_opts(
                    &imgs,
                    mode,
                    NetModel::cluster(),
                    &factors,
                    ExchangeOptions::default(),
                )
                .1,
                radix_k_opts(&imgs, mode, NetModel::cluster(), &factors, ExchangeOptions::dense())
                    .1,
            ),
        ] {
            assert!(
                comp.total_bytes < dense.total_bytes,
                "{name} {mode:?}: {} !< {}",
                comp.total_bytes,
                dense.total_bytes
            );
            // Dense accounting is representation-independent.
            assert_eq!(comp.dense_bytes, dense.total_bytes, "{name} {mode:?}");
            assert!(comp.compression_ratio() > 1.0, "{name} {mode:?}");
        }
    }
}

#[test]
fn fully_active_images_cost_exactly_dense_bytes() {
    // Every pixel carries payload: the raw fallback must make the compressed
    // exchange byte-identical to the dense one.
    let n_px = 24 * 24;
    let imgs = images_with_active(8, 24, 24, n_px);
    for img in &imgs {
        assert_eq!(img.active_pixels(), n_px);
    }
    let factors = compositing::algorithms::default_factors(8);
    for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
        let (_, comp) =
            radix_k_opts(&imgs, mode, NetModel::cluster(), &factors, ExchangeOptions::default());
        let (_, dense) =
            radix_k_opts(&imgs, mode, NetModel::cluster(), &factors, ExchangeOptions::dense());
        assert_eq!(comp.total_bytes, dense.total_bytes, "{mode:?}");
        assert_eq!(comp.dense_bytes, comp.total_bytes, "{mode:?}");
        assert!((comp.compression_ratio() - 1.0).abs() < 1e-12, "{mode:?}");
    }
}

#[test]
fn simulated_time_tracks_wire_bytes() {
    // On a slow interconnect (1 MB/s) wire time dwarfs measured compute, so
    // the exchange that moves fewer bytes must finish sooner on the
    // simulated clock — this is the whole point of compressing.
    let imgs = images_with_active(8, 48, 48, 96);
    let net = NetModel { latency_s: 0.0, bandwidth_bps: 1e6 };
    let factors = compositing::algorithms::default_factors(8);
    let mode = CompositeMode::ZBuffer;
    let (_, comp) = radix_k_opts(&imgs, mode, net, &factors, ExchangeOptions::default());
    let (_, dense) = radix_k_opts(&imgs, mode, net, &factors, ExchangeOptions::dense());
    assert!(comp.total_bytes < dense.total_bytes);
    assert!(
        comp.simulated_seconds < dense.simulated_seconds,
        "compressed {} s !< dense {} s",
        comp.simulated_seconds,
        dense.simulated_seconds
    );
    // Per-round records: wire never exceeds dense, and both sum to totals.
    for (i, r) in comp.per_round.iter().enumerate() {
        assert!(r.wire_bytes <= r.dense_bytes, "round {i}");
    }
    assert_eq!(comp.per_round.iter().map(|r| r.wire_bytes).sum::<u64>(), comp.total_bytes);
    assert_eq!(comp.per_round.iter().map(|r| r.dense_bytes).sum::<u64>(), comp.dense_bytes);
}
