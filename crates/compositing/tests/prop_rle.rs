//! Property tests for the run-length active-pixel codec: the compressed
//! representation must be information-lossless and its compositing operators
//! bit-exact against the dense oracle, for arbitrary images — including the
//! adversarial payloads (zero-alpha colored pixels, active pixels with
//! infinite depth) that a naive "active == visible" predicate would drop.

use compositing::rle::composite;
use compositing::{CompositeMode, RankImage, SpanImage};
use proptest::prelude::*;
use vecmath::Color;

/// Pixel descriptor: selector picks background or one of three active
/// flavors, exercising every codec edge case.
type Px = (u8, f32, f32);

fn build_image(w: u32, h: u32, pixels: &[Px]) -> RankImage {
    let mut img = RankImage::empty(w, h);
    if pixels.is_empty() {
        return img;
    }
    for i in 0..img.num_pixels() {
        let (sel, a, d) = pixels[i % pixels.len()];
        match sel % 4 {
            0 => {} // background
            1 => {
                // Ordinary premultiplied fragment.
                img.color[i] = Color::new(0.8 * a, 0.5 * a, 0.25 * a, a);
                img.depth[i] = d;
            }
            2 => {
                // Zero-alpha but colored: payload the codec must not drop.
                img.color[i] = Color::new(a, 0.0, a * 0.5, 0.0);
                img.depth[i] = d;
            }
            _ => {
                // Colored but infinitely deep: loses every z test, yet is
                // not background.
                img.color[i] = Color::new(0.1, 0.2, 0.3, a.max(0.05));
                img.depth[i] = f32::INFINITY;
            }
        }
    }
    img
}

fn assert_bit_exact(a: &RankImage, b: &RankImage) -> Result<(), String> {
    prop_assert_eq!(a.color.len(), b.color.len());
    for i in 0..a.color.len() {
        prop_assert!(a.color[i] == b.color[i], "color {}: {:?} vs {:?}", i, a.color[i], b.color[i]);
        prop_assert!(a.depth[i] == b.depth[i], "depth {}: {} vs {}", i, a.depth[i], b.depth[i]);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_is_identity(
        w in 1u32..12,
        h in 1u32..8,
        pixels in proptest::collection::vec((0u8..8, 0.0f32..1.0, 0.0f32..10.0), 0..96)
    ) {
        let img = build_image(w, h, &pixels);
        let span = SpanImage::encode(&img);
        prop_assert_eq!(span.num_pixels(), img.num_pixels());
        assert_bit_exact(&span.decode(), &img)?;
    }

    #[test]
    fn wire_bytes_never_exceed_dense(
        w in 1u32..12,
        h in 1u32..8,
        pixels in proptest::collection::vec((0u8..8, 0.0f32..1.0, 0.0f32..10.0), 0..96)
    ) {
        let img = build_image(w, h, &pixels);
        let span = SpanImage::encode(&img);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let dense = img.num_pixels() * RankImage::bytes_per_pixel(mode);
            prop_assert!(span.wire_bytes(mode) <= dense);
        }
    }

    #[test]
    fn sparse_merge_equals_dense_merge(
        w in 1u32..12,
        h in 1u32..8,
        front_px in proptest::collection::vec((0u8..8, 0.0f32..1.0, 0.0f32..10.0), 0..96),
        back_px in proptest::collection::vec((0u8..8, 0.0f32..1.0, 0.0f32..10.0), 0..96)
    ) {
        let front = build_image(w, h, &front_px);
        let back = build_image(w, h, &back_px);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let mut dense = back.clone();
            dense.merge_front(&front, mode);
            let merged = composite(&SpanImage::encode(&front), &SpanImage::encode(&back), mode);
            assert_bit_exact(&merged.decode(), &dense)?;
        }
    }

    #[test]
    fn slice_commutes_with_decode(
        w in 1u32..12,
        h in 1u32..8,
        pixels in proptest::collection::vec((0u8..8, 0.0f32..1.0, 0.0f32..10.0), 0..96),
        cut_a in 0usize..96,
        cut_b in 0usize..96
    ) {
        let img = build_image(w, h, &pixels);
        let n = img.num_pixels();
        let (s, e) = {
            let a = cut_a % (n + 1);
            let b = cut_b % (n + 1);
            (a.min(b), a.max(b))
        };
        let span = SpanImage::encode(&img);
        assert_bit_exact(&span.slice(s, e).decode(), &img.slice(s, e))?;
    }
}
