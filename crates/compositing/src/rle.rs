//! Run-length active-pixel compression — the IceT optimization that makes
//! sort-last compositing scale.
//!
//! Rendered rank images are mostly background (an isosurface covers a
//! fraction of the screen, and domain decomposition shrinks each rank's
//! footprint further), so shipping dense pixel arrays wastes almost all of
//! the wire. [`SpanImage`] stores a fragment as alternating runs of
//! *background* (no payload) and *active* pixels (color + depth payload),
//! and implements the compositing operators directly on that representation:
//!
//! * background ⊕ background — free, no per-pixel work;
//! * active ⊕ background — a payload copy (plus the z test against the
//!   background's infinite depth);
//! * active ⊕ active — the exact per-pixel blend of the dense path.
//!
//! Every operation is **bit-exact** against [`RankImage::merge_front`]: a
//! pixel is encoded as background only when its payload equals the canonical
//! background `(Color::TRANSPARENT, +inf)`, so `decode(encode(img)) == img`
//! and compressed compositing produces pixel-identical images. (This
//! predicate is deliberately stricter than [`RankImage::active_pixels`],
//! which is a *model statistic* and ignores zero-alpha colored pixels.)
//!
//! Wire cost: a compressed fragment costs an 8-byte header, 8 bytes per run
//! pair, and `bytes_per_pixel(mode)` per active pixel. [`SpanImage::wire_bytes`]
//! charges `min(dense, compressed)` — a sender always falls back to the raw
//! representation when run structure would inflate a dense image, exactly as
//! IceT's per-scanline compression flag does, so fully-active images cost
//! the same bytes as the uncompressed path.

use crate::image::{CompositeMode, RankImage};
use vecmath::{over, Color};

/// Wire-format overhead charged per compressed fragment (pixel count + run
/// count, two u32s).
pub const HEADER_BYTES: usize = 8;
/// Wire-format overhead charged per run pair (background length + active
/// length, two u32s).
pub const RUN_BYTES: usize = 8;

/// One alternating run pair: `background` payload-free pixels followed by
/// `active` payload-carrying pixels. Either count may be zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    pub background: u32,
    pub active: u32,
}

/// A run-length-compressed image fragment.
#[derive(Debug, Clone)]
pub struct SpanImage {
    width: u32,
    height: u32,
    /// Total pixels covered (sum of all run lengths).
    len: usize,
    runs: Vec<Run>,
    /// Color payload of active pixels, in pixel order.
    color: Vec<Color>,
    /// Depth payload of active pixels, in pixel order.
    depth: Vec<f32>,
}

/// True when the pixel carries information the background default does not.
#[inline]
fn is_active(c: Color, d: f32) -> bool {
    c.a != 0.0 || c.r != 0.0 || c.g != 0.0 || c.b != 0.0 || d.is_finite()
}

/// Incremental [`SpanImage`] constructor that coalesces adjacent runs.
struct Builder {
    width: u32,
    height: u32,
    len: usize,
    runs: Vec<Run>,
    color: Vec<Color>,
    depth: Vec<f32>,
}

impl Builder {
    fn new(width: u32, height: u32) -> Builder {
        Builder { width, height, len: 0, runs: Vec::new(), color: Vec::new(), depth: Vec::new() }
    }

    fn push_background(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.len += n;
        match self.runs.last_mut() {
            // Extend a trailing pure-background run; an active run in
            // progress forces a fresh pair.
            Some(r) if r.active == 0 => r.background += n as u32,
            _ => self.runs.push(Run { background: n as u32, active: 0 }),
        }
    }

    fn push_pixel(&mut self, c: Color, d: f32) {
        self.len += 1;
        match self.runs.last_mut() {
            Some(r) => r.active += 1,
            None => self.runs.push(Run { background: 0, active: 1 }),
        }
        self.color.push(c);
        self.depth.push(d);
    }

    fn push_active(&mut self, colors: &[Color], depths: &[f32]) {
        if colors.is_empty() {
            return;
        }
        self.len += colors.len();
        match self.runs.last_mut() {
            Some(r) => r.active += colors.len() as u32,
            None => self.runs.push(Run { background: 0, active: colors.len() as u32 }),
        }
        self.color.extend_from_slice(colors);
        self.depth.extend_from_slice(depths);
    }

    fn finish(self) -> SpanImage {
        SpanImage {
            width: self.width,
            height: self.height,
            len: self.len,
            runs: self.runs,
            color: self.color,
            depth: self.depth,
        }
    }
}

/// Cursor over the alternating segments of a [`SpanImage`], supporting
/// partial consumption (needed when two images' run boundaries interleave).
struct SegCursor<'a> {
    runs: &'a [Run],
    /// Index of the current run pair.
    run: usize,
    /// Currently inside the active half of the pair?
    in_active: bool,
    /// Pixels left in the current half.
    remaining: usize,
    /// Payload index of the next active pixel.
    payload: usize,
}

impl<'a> SegCursor<'a> {
    fn new(img: &'a SpanImage) -> SegCursor<'a> {
        let remaining = img.runs.first().map_or(0, |r| r.background as usize);
        SegCursor { runs: &img.runs, run: 0, in_active: false, remaining, payload: 0 }
    }

    /// `(is_active, available)` of the current non-empty segment, or `None`
    /// at the end.
    fn peek(&mut self) -> Option<(bool, usize)> {
        while self.remaining == 0 {
            if !self.in_active {
                if self.run >= self.runs.len() {
                    return None;
                }
                self.in_active = true;
                self.remaining = self.runs[self.run].active as usize;
            } else {
                self.run += 1;
                if self.run >= self.runs.len() {
                    return None;
                }
                self.in_active = false;
                self.remaining = self.runs[self.run].background as usize;
            }
        }
        Some((self.in_active, self.remaining))
    }

    /// Consume `n` pixels of the current segment (`n <= peek().1`); returns
    /// the payload start index (meaningful only for active segments).
    fn take(&mut self, n: usize) -> usize {
        debug_assert!(n <= self.remaining);
        let start = self.payload;
        if self.in_active {
            self.payload += n;
        }
        self.remaining -= n;
        start
    }
}

impl SpanImage {
    /// Compress a dense rank image (or fragment).
    pub fn encode(img: &RankImage) -> SpanImage {
        let mut b = Builder::new(img.width, img.height);
        for (c, d) in img.color.iter().zip(img.depth.iter()) {
            if is_active(*c, *d) {
                b.push_pixel(*c, *d);
            } else {
                b.push_background(1);
            }
        }
        b.finish()
    }

    /// Decompress back to the dense representation.
    pub fn decode(&self) -> RankImage {
        let mut out = RankImage {
            width: self.width,
            height: self.height,
            color: vec![Color::TRANSPARENT; self.len],
            depth: vec![f32::INFINITY; self.len],
        };
        self.write_into(&mut out, 0);
        out
    }

    /// Write the fragment's pixels into `out` starting at pixel `start`.
    pub fn write_into(&self, out: &mut RankImage, start: usize) {
        let mut pos = start;
        let mut pay = 0usize;
        for r in &self.runs {
            pos += r.background as usize;
            let n = r.active as usize;
            out.color[pos..pos + n].copy_from_slice(&self.color[pay..pay + n]);
            out.depth[pos..pos + n].copy_from_slice(&self.depth[pay..pay + n]);
            pos += n;
            pay += n;
        }
    }

    /// Total pixels covered by this fragment.
    pub fn num_pixels(&self) -> usize {
        self.len
    }

    /// Payload-carrying pixels.
    pub fn active_pixels(&self) -> usize {
        self.color.len()
    }

    /// Run pairs in the compressed representation.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Bytes this fragment costs on the wire: the compressed encoding
    /// (header + runs + active payloads), or the dense size when run
    /// structure would inflate past it (IceT's raw fallback).
    pub fn wire_bytes(&self, mode: CompositeMode) -> usize {
        let bpp = RankImage::bytes_per_pixel(mode);
        let dense = self.len * bpp;
        let compressed = HEADER_BYTES + self.runs.len() * RUN_BYTES + self.color.len() * bpp;
        dense.min(compressed)
    }

    /// Extract pixels `[start, end)` as a new fragment.
    pub fn slice(&self, start: usize, end: usize) -> SpanImage {
        assert!(start <= end && end <= self.len, "slice {start}..{end} of {}", self.len);
        let mut b = Builder::new(self.width, self.height);
        let mut pos = 0usize;
        let mut pay = 0usize;
        for r in &self.runs {
            for (active, n) in [(false, r.background as usize), (true, r.active as usize)] {
                let seg_start = pos;
                let seg_end = pos + n;
                let lo = seg_start.max(start);
                let hi = seg_end.min(end);
                if lo < hi {
                    if active {
                        let p = pay + (lo - seg_start);
                        b.push_active(&self.color[p..p + (hi - lo)], &self.depth[p..p + (hi - lo)]);
                    } else {
                        b.push_background(hi - lo);
                    }
                }
                pos = seg_end;
                if active {
                    pay += n;
                }
            }
            if pos >= end {
                break;
            }
        }
        // A fragment covers exactly end-start pixels even when the parent's
        // trailing pixels are implicit (no runs past the window).
        if b.len < end - start {
            b.push_background(end - start - b.len);
        }
        b.finish()
    }

    /// Merge `front` into `self` with the same per-pixel semantics (and
    /// bit-exact results) as [`RankImage::merge_front`], operating directly
    /// on the compressed spans.
    pub fn merge_front(&mut self, front: &SpanImage, mode: CompositeMode) {
        *self = composite(front, self, mode);
    }
}

/// Compressed-domain merge: `front` over/in-front-of `back`, mirroring
/// `back.merge_front(&front, mode)` of the dense path exactly.
pub fn composite(front: &SpanImage, back: &SpanImage, mode: CompositeMode) -> SpanImage {
    assert_eq!(front.len, back.len, "fragment size mismatch");
    let mut f = SegCursor::new(front);
    let mut b = SegCursor::new(back);
    let mut out = Builder::new(front.width, front.height);
    while let Some((f_act, f_avail)) = f.peek() {
        // xlint::allow(X006): guarded by the len assert at function top; cursors advance in lockstep.
        let (b_act, b_avail) = b.peek().expect("fragments cover equal pixel counts");
        let n = f_avail.min(b_avail);
        let fp = f.take(n);
        let bp = b.take(n);
        match (f_act, b_act) {
            // Background over background stays background.
            (false, false) => out.push_background(n),
            // Background in front never obscures: z-test against +inf fails,
            // and over(transparent, x) == x; the back payload survives.
            (false, true) => out.push_active(&back.color[bp..bp + n], &back.depth[bp..bp + n]),
            (true, false) => match mode {
                // over(x, transparent) == x, depth min(d, inf) == d.
                CompositeMode::AlphaOrdered => {
                    out.push_active(&front.color[fp..fp + n], &front.depth[fp..fp + n])
                }
                // The z test `front.depth < inf` can still fail for an
                // active pixel whose color is set but whose depth is
                // infinite; the dense path keeps the background there.
                CompositeMode::ZBuffer => {
                    for i in 0..n {
                        let d = front.depth[fp + i];
                        if d < f32::INFINITY {
                            out.push_pixel(front.color[fp + i], d);
                        } else {
                            out.push_background(1);
                        }
                    }
                }
            },
            (true, true) => match mode {
                CompositeMode::ZBuffer => {
                    for i in 0..n {
                        if front.depth[fp + i] < back.depth[bp + i] {
                            out.push_pixel(front.color[fp + i], front.depth[fp + i]);
                        } else {
                            out.push_pixel(back.color[bp + i], back.depth[bp + i]);
                        }
                    }
                }
                CompositeMode::AlphaOrdered => {
                    for i in 0..n {
                        out.push_pixel(
                            over(front.color[fp + i], back.color[bp + i]),
                            back.depth[bp + i].min(front.depth[fp + i]),
                        );
                    }
                }
            },
        }
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image_from(colors: &[(f32, f32)], width: u32) -> RankImage {
        // (alpha, depth) pairs; alpha 0 + inf depth = background.
        let mut img = RankImage::empty(width, colors.len() as u32 / width);
        for (i, &(a, d)) in colors.iter().enumerate() {
            if a != 0.0 || d.is_finite() {
                img.color[i] = Color::new(a * 0.5, a * 0.25, a * 0.125, a);
                img.depth[i] = d;
            }
        }
        img
    }

    fn assert_images_equal(a: &RankImage, b: &RankImage) {
        assert_eq!(a.color.len(), b.color.len());
        for i in 0..a.color.len() {
            assert!(
                a.color[i] == b.color[i] && (a.depth[i] == b.depth[i]),
                "pixel {i}: {:?}/{} vs {:?}/{}",
                a.color[i],
                a.depth[i],
                b.color[i],
                b.depth[i]
            );
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let inf = f32::INFINITY;
        let img = image_from(
            &[(0.0, inf), (0.5, 1.0), (0.25, 2.0), (0.0, inf), (0.0, inf), (1.0, 0.5)],
            6,
        );
        let span = SpanImage::encode(&img);
        assert_eq!(span.num_pixels(), 6);
        assert_eq!(span.active_pixels(), 3);
        assert_eq!(span.num_runs(), 2);
        assert_images_equal(&span.decode(), &img);
    }

    #[test]
    fn zero_alpha_colored_pixel_survives_round_trip() {
        // Stricter than active_pixels(): color payload with a == 0 must not
        // be dropped by the codec.
        let mut img = RankImage::empty(2, 1);
        img.color[0] = Color::new(0.3, 0.0, 0.0, 0.0);
        let span = SpanImage::encode(&img);
        assert_images_equal(&span.decode(), &img);
    }

    #[test]
    fn wire_bytes_compresses_sparse_and_caps_at_dense() {
        let mut sparse = RankImage::empty(100, 1);
        sparse.depth[40] = 1.0;
        sparse.color[40] = Color::new(0.1, 0.1, 0.1, 0.5);
        let span = SpanImage::encode(&sparse);
        let dense = 100 * RankImage::bytes_per_pixel(CompositeMode::ZBuffer);
        assert!(span.wire_bytes(CompositeMode::ZBuffer) < dense / 10);

        let mut full = RankImage::empty(100, 1);
        for i in 0..100 {
            full.depth[i] = 1.0 + i as f32;
            full.color[i] = Color::new(0.5, 0.5, 0.5, 1.0);
        }
        let full_span = SpanImage::encode(&full);
        // Raw fallback: never more than the dense representation.
        assert_eq!(full_span.wire_bytes(CompositeMode::ZBuffer), dense);
        assert_eq!(
            full_span.wire_bytes(CompositeMode::AlphaOrdered),
            100 * RankImage::bytes_per_pixel(CompositeMode::AlphaOrdered)
        );
    }

    #[test]
    fn slice_matches_dense_slice() {
        let inf = f32::INFINITY;
        let img = image_from(
            &[
                (0.1, 3.0),
                (0.0, inf),
                (0.0, inf),
                (0.7, 1.0),
                (0.2, 2.0),
                (0.0, inf),
                (0.4, 0.1),
                (0.0, inf),
            ],
            8,
        );
        let span = SpanImage::encode(&img);
        for (s, e) in [(0, 8), (1, 5), (2, 3), (4, 4), (5, 8), (0, 2)] {
            let got = span.slice(s, e).decode();
            let want = img.slice(s, e);
            assert_images_equal(&got, &want);
        }
    }

    #[test]
    fn merge_front_matches_dense_both_modes() {
        let inf = f32::INFINITY;
        let a = image_from(
            &[(0.5, 2.0), (0.0, inf), (0.3, 1.0), (0.0, inf), (0.9, 4.0), (0.2, 0.5)],
            6,
        );
        let b = image_from(
            &[(0.0, inf), (0.6, 3.0), (0.4, 2.0), (0.0, inf), (0.1, 1.0), (0.8, 0.25)],
            6,
        );
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let mut dense = b.clone();
            dense.merge_front(&a, mode);
            let mut span = SpanImage::encode(&b);
            span.merge_front(&SpanImage::encode(&a), mode);
            assert_images_equal(&span.decode(), &dense);
        }
    }

    #[test]
    fn empty_fragment_is_legal() {
        let img = RankImage::empty(4, 1);
        let span = SpanImage::encode(&img);
        let empty = span.slice(2, 2);
        assert_eq!(empty.num_pixels(), 0);
        assert_eq!(empty.wire_bytes(CompositeMode::ZBuffer), 0);
        assert_eq!(empty.decode().color.len(), 0);
    }
}
