//! Sort-last parallel image compositing — the IceT stand-in.
//!
//! In sort-last rendering every rank renders its own sub-domain into a
//! full-resolution image; compositing merges the per-rank images into one.
//! Two merge semantics exist (Chapter IV / V):
//!
//! * **Z-buffer** — opaque surface rendering (ray tracing, rasterization):
//!   per pixel, the fragment with the smallest depth wins.
//! * **Ordered alpha** — volume rendering: fragments are blended with the
//!   *over* operator in visibility order (rank index = front-to-back order;
//!   the caller sorts ranks by view depth first, as Strawman does).
//!
//! Three classic algorithms are implemented over the [`mpirt::LockstepWorld`]
//! superstep executor, so rank counts up to the paper's 1024-rank Titan runs
//! are simulated with measured compute and modeled transfer time:
//! [`direct_send`], [`binary_swap`], and [`radix_k`] (direct send == radix-k
//! with one factor P; binary swap == radix-k with factors all 2).

pub mod algorithms;
pub mod image;

pub use algorithms::{binary_swap, direct_send, radix_k, reference, CompositeStats};
pub use image::{CompositeMode, RankImage};
