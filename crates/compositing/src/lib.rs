//! Sort-last parallel image compositing — the IceT stand-in.
//!
//! In sort-last rendering every rank renders its own sub-domain into a
//! full-resolution image; compositing merges the per-rank images into one.
//! Two merge semantics exist (Chapter IV / V):
//!
//! * **Z-buffer** — opaque surface rendering (ray tracing, rasterization):
//!   per pixel, the fragment with the smallest depth wins.
//! * **Ordered alpha** — volume rendering: fragments are blended with the
//!   *over* operator in visibility order (rank index = front-to-back order;
//!   the caller sorts ranks by view depth first, as Strawman does).
//!
//! Three classic algorithms are implemented over the [`mpirt::LockstepWorld`]
//! superstep executor, so rank counts up to the paper's 1024-rank Titan runs
//! are simulated with measured compute and modeled transfer time:
//! [`direct_send`], [`binary_swap`], and [`radix_k`] (direct send == radix-k
//! with one factor P; binary swap == radix-k with factors all 2).
//!
//! Exchanges ship run-length-compressed active-pixel spans ([`SpanImage`])
//! by default, mirroring IceT's compression of background pixels; pass
//! [`ExchangeOptions::dense`] to the `*_opts` variants to measure the
//! uncompressed exchange. Both produce pixel-identical output.
//!
//! A fourth, *asynchronous* mode lives in [`dfb`]: Distributed FrameBuffer
//! tile compositing over the barrier-free [`mpirt::EventWorld`], which
//! overlaps rendering with the exchange while staying byte-identical to the
//! serial [`reference()`] under any fragment arrival order.

pub mod algorithms;
pub mod dfb;
pub mod image;
pub mod rle;

pub use algorithms::{
    binary_swap, binary_swap_opts, direct_send, direct_send_opts, radix_k, radix_k_opts, reference,
    CompositeStats, ExchangeOptions, RoundBytes,
};
pub use dfb::{dfb_compose, dfb_compose_opts, dfb_compose_shuffled, dfb_compose_staggered};
pub use image::{CompositeMode, RankImage};
pub use rle::SpanImage;
