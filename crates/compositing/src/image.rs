//! Rank images and per-pixel merge semantics.

use vecmath::{over, Color};

/// How fragments merge during compositing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompositeMode {
    /// Opaque: nearest depth wins.
    ZBuffer,
    /// Translucent: *over* in rank (visibility) order, colors premultiplied.
    AlphaOrdered,
}

/// One rank's full-resolution image contribution. Colors are premultiplied
/// alpha; depth is the camera-space distance of the nearest fragment
/// (infinity = background).
#[derive(Debug, Clone)]
pub struct RankImage {
    pub width: u32,
    pub height: u32,
    pub color: Vec<Color>,
    pub depth: Vec<f32>,
}

impl RankImage {
    /// Empty (fully transparent) image.
    pub fn empty(width: u32, height: u32) -> RankImage {
        let n = (width * height) as usize;
        RankImage {
            width,
            height,
            color: vec![Color::TRANSPARENT; n],
            depth: vec![f32::INFINITY; n],
        }
    }

    pub fn num_pixels(&self) -> usize {
        self.color.len()
    }

    /// Count pixels carrying a fragment (the per-rank *active pixels* input
    /// of the compositing model).
    pub fn active_pixels(&self) -> usize {
        self.color.iter().zip(self.depth.iter()).filter(|(c, d)| c.a > 0.0 || d.is_finite()).count()
    }

    /// Bytes one pixel costs on the wire for the given mode (RGBA f32, plus
    /// depth for z compositing).
    pub fn bytes_per_pixel(mode: CompositeMode) -> usize {
        match mode {
            CompositeMode::ZBuffer => 20,
            CompositeMode::AlphaOrdered => 16,
        }
    }

    /// Extract the pixel range `[start, end)` as a sub-image fragment.
    pub fn slice(&self, start: usize, end: usize) -> RankImage {
        RankImage {
            width: self.width,
            height: self.height,
            color: self.color[start..end].to_vec(),
            depth: self.depth[start..end].to_vec(),
        }
    }

    /// Merge `front` into `self` pixel-by-pixel. For `AlphaOrdered` the
    /// argument must be *in front of* `self` in visibility order.
    pub fn merge_front(&mut self, front: &RankImage, mode: CompositeMode) {
        debug_assert_eq!(self.color.len(), front.color.len());
        match mode {
            CompositeMode::ZBuffer => {
                for i in 0..self.color.len() {
                    if front.depth[i] < self.depth[i] {
                        self.depth[i] = front.depth[i];
                        self.color[i] = front.color[i];
                    }
                }
            }
            CompositeMode::AlphaOrdered => {
                for i in 0..self.color.len() {
                    self.color[i] = over(front.color[i], self.color[i]);
                    self.depth[i] = self.depth[i].min(front.depth[i]);
                }
            }
        }
    }

    /// Max per-channel difference to another image, ignoring depth.
    pub fn max_color_diff(&self, o: &RankImage) -> f32 {
        self.color
            .iter()
            .zip(o.color.iter())
            .map(|(a, b)| {
                (a.r - b.r)
                    .abs()
                    .max((a.g - b.g).abs())
                    .max((a.b - b.b).abs())
                    .max((a.a - b.a).abs())
            })
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zbuffer_merge_keeps_nearest() {
        let mut back = RankImage::empty(2, 1);
        back.color[0] = Color::new(0.0, 1.0, 0.0, 1.0);
        back.depth[0] = 5.0;
        let mut front = RankImage::empty(2, 1);
        front.color[0] = Color::new(1.0, 0.0, 0.0, 1.0);
        front.depth[0] = 2.0;
        front.color[1] = Color::new(0.0, 0.0, 1.0, 1.0);
        front.depth[1] = 9.0;
        back.merge_front(&front, CompositeMode::ZBuffer);
        assert_eq!(back.color[0].r, 1.0);
        assert_eq!(back.depth[0], 2.0);
        assert_eq!(back.color[1].b, 1.0);
    }

    #[test]
    fn alpha_merge_is_over() {
        let mut back = RankImage::empty(1, 1);
        back.color[0] = Color::new(0.0, 0.5, 0.0, 0.5); // premultiplied green
        let mut front = RankImage::empty(1, 1);
        front.color[0] = Color::new(0.25, 0.0, 0.0, 0.25);
        back.merge_front(&front, CompositeMode::AlphaOrdered);
        let c = back.color[0];
        assert!((c.r - 0.25).abs() < 1e-6);
        assert!((c.g - 0.375).abs() < 1e-6);
        assert!((c.a - 0.625).abs() < 1e-6);
    }

    #[test]
    fn active_pixels_counts_fragments() {
        let mut img = RankImage::empty(4, 1);
        assert_eq!(img.active_pixels(), 0);
        img.depth[1] = 3.0;
        img.color[2] = Color::new(0.1, 0.0, 0.0, 0.1);
        assert_eq!(img.active_pixels(), 2);
    }

    #[test]
    fn slice_extracts_range() {
        let mut img = RankImage::empty(4, 1);
        img.depth[2] = 1.0;
        let s = img.slice(2, 4);
        assert_eq!(s.color.len(), 2);
        assert_eq!(s.depth[0], 1.0);
    }
}
