//! Distributed FrameBuffer compositing — the async tile-based exchange.
//!
//! The round-structured algorithms in [`crate::algorithms`] advance every
//! rank through barriered supersteps; a rank that finished its local work
//! early still waits for the round's slowest member. Usher et al.'s
//! *Distributed FrameBuffer* dissolves the barrier: the image is statically
//! partitioned into fixed-size **tiles**, each owned by one rank
//! (round-robin), and every rank streams its per-tile fragments to the
//! owners as soon as its local rendering completes. Owners composite
//! fragments *as they arrive*, overlapping one rank's communication with
//! another's compute, and the exchange is done when the slowest rank's
//! clock stops — not when the last barrier releases.
//!
//! **Determinism invariant (rank, depth):** arrival order is scheduling
//! noise, so it must never reach the pixels. Each tile parks incoming
//! fragments in a rank-indexed buffer (`TileBuffer`) and only ever folds
//! the contiguous *suffix* of ranks already present, back (rank `p-1`) to
//! front (rank 0). That is exactly the serial reference association
//! (`reference` folds back-to-front), so the folded pixels are
//! byte-identical to the reference — and to themselves under **any**
//! arrival permutation. [`dfb_compose_shuffled`] exposes an adversarial
//! entry point that delivers fragments in a seeded random permutation; the
//! property tests pin that the pixels do not move.
//!
//! Timing runs on [`mpirt::EventWorld`]: fragment production and fold
//! compute are *measured*, the wire is *modeled* (eager injection — the
//! sender pays one message latency, the payload's transfer time rides the
//! wire and delays only the receiver). [`dfb_compose_staggered`] seeds
//! per-rank start clocks with render-completion times, so the overlap of
//! rendering and compositing — the DFB's reason to exist — shows up in
//! `simulated_seconds`.

use crate::algorithms::{CompositeStats, ExchangeOptions, Fragment, RoundBytes};
use crate::image::{CompositeMode, RankImage};
use crate::rle::SpanImage;
use mpirt::{EventWorld, NetModel};
use rayon::prelude::*;
use std::time::Instant;

/// Target pixels per tile. Fixed tile *size* (as in the DFB paper) means the
/// tile count tracks the image, not the rank count: message granularity
/// stays constant as ranks scale.
pub const TILE_PIXELS: usize = 2048;

/// Number of tiles an `n_px`-pixel image is split into.
pub fn num_tiles(n_px: usize) -> usize {
    n_px.div_ceil(TILE_PIXELS).max(1)
}

/// Pixel range `[start, end)` of tile `t` out of `tiles` over `n_px` pixels.
fn tile_bounds(t: usize, tiles: usize, n_px: usize) -> (usize, usize) {
    (t * n_px / tiles, (t + 1) * n_px / tiles)
}

/// Owning rank of tile `t`: static round-robin assignment.
fn tile_owner(t: usize, ranks: usize) -> usize {
    t % ranks
}

/// Arrival-order-proof accumulator for one tile's fragments.
///
/// Fragments may be inserted in any order; folding only ever consumes the
/// contiguous suffix of ranks already present, back to front, so the
/// result bits are a function of the fragments alone — never of the
/// insertion permutation.
struct TileBuffer<F> {
    /// Fragments parked until their rank's turn, rank-indexed. A plain Vec:
    /// iteration order must not depend on hasher state (X005).
    pending: Vec<Option<F>>,
    /// Folded suffix `[next, p)` — the back of the image so far.
    acc: Option<F>,
    /// Lowest rank already folded into `acc`; counts down from `p`.
    next: usize,
}

impl<F: Fragment> TileBuffer<F> {
    fn new(ranks: usize) -> TileBuffer<F> {
        TileBuffer { pending: vec![None; ranks], acc: None, next: ranks }
    }

    /// Park `frag` and fold any newly contiguous suffix, returning the
    /// measured fold seconds — the owner's compute for this delivery.
    fn insert(&mut self, rank: usize, frag: F, mode: CompositeMode) -> f64 {
        self.pending[rank] = Some(frag);
        let t0 = Instant::now();
        while self.next > 0 {
            let Some(front) = self.pending[self.next - 1].take() else {
                break;
            };
            self.next -= 1;
            match self.acc.as_mut() {
                None => self.acc = Some(front),
                Some(back) => back.merge_front(&front, mode),
            }
        }
        t0.elapsed().as_secs_f64()
    }

    /// The fully folded tile; `None` only if nothing was ever inserted.
    fn finish(self) -> Option<F> {
        self.acc
    }
}

/// DFB composite with default options (compressed fragments).
pub fn dfb_compose(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
) -> (RankImage, CompositeStats) {
    dfb_compose_opts(images, mode, net, ExchangeOptions::default())
}

/// [`dfb_compose`] with explicit exchange options.
pub fn dfb_compose_opts(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    opts: ExchangeOptions,
) -> (RankImage, CompositeStats) {
    let starts = vec![0.0; images.len()];
    dfb_compose_staggered(images, mode, net, opts, &starts)
}

/// DFB composite where rank `r`'s clock starts at `starts[r]` — its render
/// completion time — so the exchange overlaps the staggered producer.
/// Pixel output is independent of `starts`; only the stats change.
pub fn dfb_compose_staggered(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    opts: ExchangeOptions,
    starts: &[f64],
) -> (RankImage, CompositeStats) {
    if opts.compress {
        run_dfb::<SpanImage>(images, mode, net, starts, None)
    } else {
        run_dfb::<RankImage>(images, mode, net, starts, None)
    }
}

/// Adversarial entry point: deliver every tile's fragments in a seeded
/// random permutation instead of arrival order. The determinism invariant
/// says the pixels must be byte-identical to [`dfb_compose_opts`] for every
/// seed; the property tests pin exactly that.
pub fn dfb_compose_shuffled(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    opts: ExchangeOptions,
    arrival_seed: u64,
) -> (RankImage, CompositeStats) {
    let starts = vec![0.0; images.len()];
    if opts.compress {
        run_dfb::<SpanImage>(images, mode, net, &starts, Some(arrival_seed))
    } else {
        run_dfb::<RankImage>(images, mode, net, &starts, Some(arrival_seed))
    }
}

/// Deterministic Fisher–Yates driven by an inline xorshift stream.
fn shuffle(order: &mut [usize], mut state: u64) {
    state |= 1;
    for i in (1..order.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
}

/// One tile's composited result plus its (rank, fold-seconds) delivery trace.
type MergedTile<F> = (Option<F>, Vec<(usize, f64)>);

fn run_dfb<F: Fragment>(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    starts: &[f64],
    arrival_seed: Option<u64>,
) -> (RankImage, CompositeStats) {
    let p = images.len();
    assert!(p > 0);
    assert_eq!(starts.len(), p, "one start clock per rank");
    let width = images[0].width;
    let height = images[0].height;
    let n_px = images[0].num_pixels();
    let bpp = RankImage::bytes_per_pixel(mode);
    let tiles = num_tiles(n_px);

    let mut world = EventWorld::with_starts(starts, net);
    let mut compute_total = 0.0f64;

    // 1. Fragment production: each rank encodes its image and slices it into
    //    per-tile fragments as its local (render) work completes.
    let produced: Vec<(Vec<F>, f64)> = images
        .par_iter()
        .map(|img| {
            let t0 = Instant::now();
            let whole = F::from_image(img);
            let frags: Vec<F> = (0..tiles)
                .map(|t| {
                    let (s, e) = tile_bounds(t, tiles, n_px);
                    whole.slice(s, e)
                })
                .collect();
            (frags, t0.elapsed().as_secs_f64())
        })
        .collect();
    for (r, (_, dt)) in produced.iter().enumerate() {
        world.compute(r, *dt);
        compute_total += *dt;
    }

    // 2. Scatter: every rank streams its non-owned tile fragments to the
    //    owners, eagerly, in tile order. `arrival[t][r]` is when tile t's
    //    fragment from rank r is available at the owner.
    let mut arrival = vec![vec![0.0f64; p]; tiles];
    for (r, (frags, _)) in produced.iter().enumerate() {
        for (t, frag) in frags.iter().enumerate() {
            if tile_owner(t, p) == r {
                arrival[t][r] = world.now(r);
            } else {
                let (s, e) = tile_bounds(t, tiles, n_px);
                arrival[t][r] = world.send(r, frag.wire_bytes(mode), (e - s) * bpp);
            }
        }
    }
    let scatter = RoundBytes { wire_bytes: world.total_bytes, dense_bytes: world.dense_bytes };

    // 3. Delivery order per tile: arrival order (ties broken by rank), or an
    //    adversarial permutation when a seed is given. The folded pixels must
    //    not depend on this order — that is the invariant the arrival-order
    //    property tests pin.
    let orders: Vec<Vec<usize>> = (0..tiles)
        .map(|t| {
            let mut order: Vec<usize> = (0..p).collect();
            match arrival_seed {
                None => {
                    order.sort_by(|&a, &b| arrival[t][a].total_cmp(&arrival[t][b]).then(a.cmp(&b)))
                }
                Some(seed) => {
                    shuffle(&mut order, seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                }
            }
            order
        })
        .collect();

    // 4. Tile merges — the pixel work, parallel over tiles: deliveries pass
    //    through the TileBuffer in delivery order; each delivery's fold
    //    compute is measured for the clock replay below.
    let merged: Vec<MergedTile<F>> = orders
        .par_iter()
        .enumerate()
        .map(|(t, order)| {
            let mut buf = TileBuffer::new(p);
            let folds: Vec<(usize, f64)> =
                order.iter().map(|&r| (r, buf.insert(r, produced[r].0[t].clone(), mode))).collect();
            (buf.finish(), folds)
        })
        .collect();

    // 5. Clock replay: each tile's owner waits for a delivery, then folds.
    for (t, (_, folds)) in merged.iter().enumerate() {
        let owner = tile_owner(t, p);
        for &(r, fold_s) in folds {
            world.recv(owner, arrival[t][r]);
            world.compute(owner, fold_s);
            compute_total += fold_s;
        }
    }

    // 6. Gather: owners ship finished tiles to rank 0, whose inbound link
    //    drains one tile at a time (the round exchange's gather charges the
    //    root the full incoming volume the same way).
    let mut inbound: Vec<(f64, f64)> = Vec::new(); // (first-byte time, transfer seconds)
    for (t, (frag, _)) in merged.iter().enumerate() {
        let owner = tile_owner(t, p);
        if owner == 0 {
            continue;
        }
        if let Some(f) = frag {
            let (s, e) = tile_bounds(t, tiles, n_px);
            let wire = f.wire_bytes(mode);
            let transfer = wire as f64 / net.bandwidth_bps;
            let at = world.send(owner, wire, (e - s) * bpp);
            inbound.push((at - transfer, transfer));
        }
    }
    inbound.sort_by(|a, b| a.0.total_cmp(&b.0));
    for (first_byte, transfer) in inbound {
        let start = world.now(0).max(first_byte);
        world.recv(0, start + transfer);
    }
    let gather = RoundBytes {
        wire_bytes: world.total_bytes - scatter.wire_bytes,
        dense_bytes: world.dense_bytes - scatter.dense_bytes,
    };

    // 7. Final assembly at the root.
    let t_asm = Instant::now();
    let mut out = RankImage::empty(width, height);
    for (t, (frag, _)) in merged.iter().enumerate() {
        if let Some(f) = frag {
            let (s, _) = tile_bounds(t, tiles, n_px);
            f.write_into(&mut out, s);
        }
    }
    let asm = t_asm.elapsed().as_secs_f64();
    world.compute(0, asm);
    compute_total += asm;

    let stats = CompositeStats {
        simulated_seconds: world.elapsed(),
        compute_seconds: compute_total,
        total_bytes: world.total_bytes,
        dense_bytes: world.dense_bytes,
        per_round: vec![scatter, gather],
        rounds: 2,
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::reference;
    use rand::{Rng, SeedableRng};
    use vecmath::Color;

    fn make_images(p: usize, w: u32, h: u32, seed: u64) -> Vec<RankImage> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..p)
            .map(|r| {
                let mut img = RankImage::empty(w, h);
                let n = img.num_pixels();
                for i in 0..n {
                    if rng.gen::<f32>() < 0.4 {
                        let a = rng.gen::<f32>() * 0.8;
                        img.color[i] = Color::new(
                            rng.gen::<f32>() * a,
                            rng.gen::<f32>() * a,
                            rng.gen::<f32>() * a,
                            a,
                        );
                        img.depth[i] = r as f32 + rng.gen::<f32>();
                    }
                }
                img
            })
            .collect()
    }

    fn bits(img: &RankImage) -> Vec<u32> {
        img.color
            .iter()
            .zip(img.depth.iter())
            .flat_map(|(c, d)| {
                [c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits(), d.to_bits()]
            })
            .collect()
    }

    #[test]
    fn matches_reference_bit_exactly() {
        for p in [1usize, 2, 5, 8] {
            let imgs = make_images(p, 16, 9, 40 + p as u64);
            for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
                let expect = reference(&imgs, mode);
                let (out, _) = dfb_compose(&imgs, mode, NetModel::cluster());
                assert_eq!(bits(&out), bits(&expect), "p={p} {mode:?}");
            }
        }
    }

    #[test]
    fn dense_and_compressed_agree_bit_exactly() {
        let imgs = make_images(6, 20, 11, 7);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let (c, cs) =
                dfb_compose_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::default());
            let (d, ds) =
                dfb_compose_opts(&imgs, mode, NetModel::cluster(), ExchangeOptions::dense());
            assert_eq!(bits(&c), bits(&d), "{mode:?}");
            assert_eq!(cs.dense_bytes, ds.dense_bytes, "{mode:?}");
            assert_eq!(ds.total_bytes, ds.dense_bytes, "dense path is dense");
            assert!(cs.total_bytes < ds.total_bytes, "sparse bands must compress");
        }
    }

    #[test]
    fn shuffled_arrivals_do_not_change_pixels() {
        let imgs = make_images(7, 24, 13, 99);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let (canonical, _) = dfb_compose(&imgs, mode, NetModel::cluster());
            for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let (out, _) = dfb_compose_shuffled(
                    &imgs,
                    mode,
                    NetModel::cluster(),
                    ExchangeOptions::default(),
                    seed,
                );
                assert_eq!(bits(&out), bits(&canonical), "seed={seed} {mode:?}");
            }
        }
    }

    #[test]
    fn single_rank_moves_no_bytes() {
        let imgs = make_images(1, 10, 10, 5);
        let (out, st) = dfb_compose(&imgs, CompositeMode::ZBuffer, NetModel::cluster());
        assert_eq!(bits(&out), bits(&imgs[0]));
        assert_eq!(st.total_bytes, 0);
        assert_eq!(st.dense_bytes, 0);
        assert_eq!(st.rounds, 2);
    }

    #[test]
    fn per_round_tallies_sum_to_totals() {
        let imgs = make_images(8, 64, 48, 21);
        let (_, st) = dfb_compose(&imgs, CompositeMode::AlphaOrdered, NetModel::cluster());
        assert_eq!(st.per_round.len(), 2);
        let wire: u64 = st.per_round.iter().map(|r| r.wire_bytes).sum();
        let dense: u64 = st.per_round.iter().map(|r| r.dense_bytes).sum();
        assert_eq!(wire, st.total_bytes);
        assert_eq!(dense, st.dense_bytes);
        assert!(st.compression_ratio() > 1.0);
        assert!(st.simulated_seconds > 0.0);
        assert!(st.compute_seconds > 0.0);
    }

    #[test]
    fn staggered_starts_floor_the_elapsed_time() {
        let imgs = make_images(4, 32, 32, 3);
        let starts = [0.0, 0.5, 1.0, 2.0];
        let (out, st) = dfb_compose_staggered(
            &imgs,
            CompositeMode::AlphaOrdered,
            NetModel::cluster(),
            ExchangeOptions::default(),
            &starts,
        );
        // The slowest producer bounds the exchange from below; pixels are
        // unaffected by the stagger.
        assert!(st.simulated_seconds >= 2.0);
        let (plain, _) = dfb_compose(&imgs, CompositeMode::AlphaOrdered, NetModel::cluster());
        assert_eq!(bits(&out), bits(&plain));
    }

    #[test]
    fn tile_bounds_cover_every_pixel_once() {
        for n_px in [1usize, 100, 2048, 2049, 65536, 65537] {
            let tiles = num_tiles(n_px);
            let mut next = 0usize;
            for t in 0..tiles {
                let (s, e) = tile_bounds(t, tiles, n_px);
                assert_eq!(s, next, "n_px={n_px} t={t}");
                assert!(e > s || n_px == 0);
                next = e;
            }
            assert_eq!(next, n_px);
        }
    }
}
