//! The compositing algorithms: direct send, binary swap, and radix-k.
//!
//! All three are expressed as the same round-structured partition exchange
//! with different round factorizations (Peterka et al.'s radix-k insight,
//! which IceT implements): factor the rank count `P` into rounds
//! `k_0 * k_1 * ... = P`; in round `i`, groups of `k_i` ranks split their
//! current pixel partition `k_i` ways and exchange so each member keeps one
//! part, composited from all members in visibility order.
//!
//! * factors `[P]`            => direct send (one all-to-all round)
//! * factors `[2, 2, ..., 2]` => binary swap (log2 P pairwise rounds)
//! * anything else            => general radix-k
//!
//! Rounds execute on the [`LockstepWorld`]: per rank we *measure* blending
//! compute and *model* the wire (latency + bytes/bandwidth), advancing the
//! simulated clock by the slowest rank per round.
//!
//! By default every exchange ships **run-length compressed** fragments
//! ([`crate::rle::SpanImage`]) — IceT's active-pixel optimization — and the
//! per-round compression ratio is recorded in [`CompositeStats`]. Pass
//! [`ExchangeOptions`] with `compress: false` (via the `*_opts` entry
//! points) for the dense exchange; both paths produce pixel-identical
//! output, so the delta in `total_bytes`/`simulated_seconds` isolates what
//! compression buys.

use crate::image::{CompositeMode, RankImage};
use crate::rle::SpanImage;
use mpirt::{LockstepWorld, NetModel, RoundCost};
use rayon::prelude::*;
use std::time::Instant;

/// Knobs for the round exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeOptions {
    /// Ship run-length-compressed fragments (active pixels only) instead of
    /// dense partitions. On by default, as in IceT.
    pub compress: bool,
}

impl Default for ExchangeOptions {
    fn default() -> ExchangeOptions {
        ExchangeOptions { compress: true }
    }
}

impl ExchangeOptions {
    /// The uncompressed exchange (for byte-accounting baselines).
    pub fn dense() -> ExchangeOptions {
        ExchangeOptions { compress: false }
    }
}

/// Wire vs. would-have-been-dense bytes of one communication round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundBytes {
    /// Bytes actually moved (compressed when compression is on).
    pub wire_bytes: u64,
    /// Bytes a dense exchange of the same partitions would have moved.
    pub dense_bytes: u64,
}

impl RoundBytes {
    /// Dense-to-wire ratio; 1.0 for an empty round.
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            1.0
        } else {
            self.dense_bytes as f64 / self.wire_bytes as f64
        }
    }
}

/// Result record of one composite.
#[derive(Debug, Clone)]
pub struct CompositeStats {
    /// Simulated wall seconds (sum of per-round maxima, compute + wire).
    pub simulated_seconds: f64,
    /// Total measured blending/assembly compute seconds across ranks.
    pub compute_seconds: f64,
    /// Total bytes moved on the (simulated) wire.
    pub total_bytes: u64,
    /// Bytes the same rounds would have moved without compression; equals
    /// `total_bytes` for a dense exchange.
    pub dense_bytes: u64,
    /// Per-round byte tallies, in execution order (fold round first for
    /// non-power-of-two binary swap, final gather last).
    pub per_round: Vec<RoundBytes>,
    /// Communication rounds (including the final gather).
    pub rounds: usize,
}

impl CompositeStats {
    /// Overall dense-to-wire compression ratio (1.0 when nothing moved).
    pub fn compression_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            1.0
        } else {
            self.dense_bytes as f64 / self.total_bytes as f64
        }
    }
}

/// Serial reference: merge every rank image in visibility order.
pub fn reference(images: &[RankImage], mode: CompositeMode) -> RankImage {
    assert!(!images.is_empty());
    let mut out = images[images.len() - 1].clone();
    for img in images[..images.len() - 1].iter().rev() {
        out.merge_front(img, mode);
    }
    out
}

/// The representation a rank's in-flight fragment travels in: dense pixels
/// or run-length spans. Both implement identical merge semantics, so the
/// round loop (and the [`crate::dfb`] tile exchange) is generic over the
/// wire format.
pub(crate) trait Fragment: Clone + Send + Sync {
    fn from_image(img: &RankImage) -> Self;
    fn slice(&self, start: usize, end: usize) -> Self;
    fn merge_front(&mut self, front: &Self, mode: CompositeMode);
    /// Bytes this whole fragment costs to send.
    fn wire_bytes(&self, mode: CompositeMode) -> usize;
    /// Bytes the sub-range `[start, end)` costs to send.
    fn wire_bytes_range(&self, start: usize, end: usize, mode: CompositeMode) -> usize;
    fn write_into(&self, out: &mut RankImage, start: usize);
}

impl Fragment for RankImage {
    fn from_image(img: &RankImage) -> RankImage {
        img.clone()
    }

    fn slice(&self, start: usize, end: usize) -> RankImage {
        RankImage::slice(self, start, end)
    }

    fn merge_front(&mut self, front: &RankImage, mode: CompositeMode) {
        RankImage::merge_front(self, front, mode)
    }

    fn wire_bytes(&self, mode: CompositeMode) -> usize {
        self.num_pixels() * RankImage::bytes_per_pixel(mode)
    }

    fn wire_bytes_range(&self, start: usize, end: usize, mode: CompositeMode) -> usize {
        (end - start) * RankImage::bytes_per_pixel(mode)
    }

    fn write_into(&self, out: &mut RankImage, start: usize) {
        out.color[start..start + self.num_pixels()].copy_from_slice(&self.color);
        out.depth[start..start + self.num_pixels()].copy_from_slice(&self.depth);
    }
}

impl Fragment for SpanImage {
    fn from_image(img: &RankImage) -> SpanImage {
        SpanImage::encode(img)
    }

    fn slice(&self, start: usize, end: usize) -> SpanImage {
        SpanImage::slice(self, start, end)
    }

    fn merge_front(&mut self, front: &SpanImage, mode: CompositeMode) {
        SpanImage::merge_front(self, front, mode)
    }

    fn wire_bytes(&self, mode: CompositeMode) -> usize {
        SpanImage::wire_bytes(self, mode)
    }

    fn wire_bytes_range(&self, start: usize, end: usize, mode: CompositeMode) -> usize {
        SpanImage::slice(self, start, end).wire_bytes(mode)
    }

    fn write_into(&self, out: &mut RankImage, start: usize) {
        SpanImage::write_into(self, out, start)
    }
}

/// Direct send: every rank owns `1/P` of the pixels and receives that part
/// from all other ranks in one round.
pub fn direct_send(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
) -> (RankImage, CompositeStats) {
    direct_send_opts(images, mode, net, ExchangeOptions::default())
}

/// [`direct_send`] with explicit exchange options.
pub fn direct_send_opts(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    opts: ExchangeOptions,
) -> (RankImage, CompositeStats) {
    radix_k_opts(images, mode, net, &[images.len()], opts)
}

/// Binary swap: pairwise half-exchanges over log2(P) rounds. Non-power-of-two
/// rank counts are handled with IceT's *folding* pre-round: the first
/// `2*(P - 2^floor(log2 P))` ranks merge pairwise (whole-image sends), which
/// leaves a power-of-two group of contiguous visibility blocks for the swap
/// rounds.
pub fn binary_swap(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
) -> (RankImage, CompositeStats) {
    binary_swap_opts(images, mode, net, ExchangeOptions::default())
}

/// [`binary_swap`] with explicit exchange options.
pub fn binary_swap_opts(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    opts: ExchangeOptions,
) -> (RankImage, CompositeStats) {
    let p = images.len();
    assert!(p > 0);
    if p.is_power_of_two() {
        let rounds = p.trailing_zeros() as usize;
        if rounds == 0 {
            return radix_k_opts(images, mode, net, &[1], opts);
        }
        return radix_k_opts(images, mode, net, &vec![2usize; rounds], opts);
    }

    // Fold: with m = p - pow2 extras, ranks 0..2m merge in adjacent pairs
    // (2i, 2i+1) — adjacency keeps the visibility order contiguous for the
    // ordered-alpha mode.
    let pow2 = 1usize << (usize::BITS - 1 - p.leading_zeros());
    let m = p - pow2;
    let bpp = RankImage::bytes_per_pixel(mode);
    let n_px = images[0].num_pixels();
    let mut world = mpirt::LockstepWorld::new(p, net);
    let mut fold_costs = vec![mpirt::RoundCost::default(); p];
    let mut folded: Vec<RankImage> = Vec::with_capacity(pow2);
    let mut fold_compute = 0.0f64;
    for i in 0..m {
        let t0 = Instant::now();
        // The odd member ships its whole image to the even member (active
        // spans only when compression is on).
        let sent = if opts.compress {
            SpanImage::encode(&images[2 * i + 1]).wire_bytes(mode)
        } else {
            n_px * bpp
        };
        let mut back = images[2 * i + 1].clone();
        back.merge_front(&images[2 * i], mode);
        let dt = t0.elapsed().as_secs_f64();
        fold_compute += dt;
        fold_costs[2 * i + 1] = mpirt::RoundCost {
            compute_s: 0.0,
            bytes_sent: sent,
            bytes_dense: n_px * bpp,
            messages: 1,
        };
        fold_costs[2 * i] =
            mpirt::RoundCost { compute_s: dt, bytes_sent: 0, bytes_dense: 0, messages: 0 };
        folded.push(back);
    }
    folded.extend(images[2 * m..].iter().cloned());
    debug_assert_eq!(folded.len(), pow2);
    world.finish_round(&fold_costs);

    let rounds = pow2.trailing_zeros() as usize;
    let (img, swap_stats) = if rounds == 0 {
        radix_k_opts(&folded, mode, net, &[1], opts)
    } else {
        radix_k_opts(&folded, mode, net, &vec![2usize; rounds], opts)
    };
    let mut per_round: Vec<RoundBytes> = world
        .round_bytes
        .iter()
        .map(|&(w, d)| RoundBytes { wire_bytes: w, dense_bytes: d })
        .collect();
    per_round.extend(swap_stats.per_round.iter().copied());
    (
        img,
        CompositeStats {
            simulated_seconds: world.elapsed_s + swap_stats.simulated_seconds,
            compute_seconds: fold_compute + swap_stats.compute_seconds,
            total_bytes: world.total_bytes + swap_stats.total_bytes,
            dense_bytes: world.dense_bytes + swap_stats.dense_bytes,
            per_round,
            rounds: 1 + swap_stats.rounds,
        },
    )
}

/// Factor `p` into radix-k round sizes (2s and small primes, largest last).
pub fn default_factors(p: usize) -> Vec<usize> {
    let mut n = p.max(1);
    let mut out = Vec::new();
    for f in [2usize, 3, 5, 7] {
        while n.is_multiple_of(f) {
            out.push(f);
            n /= f;
        }
    }
    if n > 1 {
        out.push(n);
    }
    if out.is_empty() {
        out.push(1);
    }
    out
}

/// One rank's in-flight state: the pixel range it currently owns and the
/// composited fragment for that range.
#[derive(Clone)]
struct RankState<F> {
    start: usize,
    end: usize,
    frag: F,
}

/// General radix-k compositing. `factors` must multiply to `images.len()`.
/// Rank index is visibility order (front = rank 0) for `AlphaOrdered`.
pub fn radix_k(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    factors: &[usize],
) -> (RankImage, CompositeStats) {
    radix_k_opts(images, mode, net, factors, ExchangeOptions::default())
}

/// [`radix_k`] with explicit exchange options.
pub fn radix_k_opts(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    factors: &[usize],
    opts: ExchangeOptions,
) -> (RankImage, CompositeStats) {
    if opts.compress {
        run_radix::<SpanImage>(images, mode, net, factors)
    } else {
        run_radix::<RankImage>(images, mode, net, factors)
    }
}

fn run_radix<F: Fragment>(
    images: &[RankImage],
    mode: CompositeMode,
    net: NetModel,
    factors: &[usize],
) -> (RankImage, CompositeStats) {
    let p = images.len();
    assert!(p > 0);
    assert_eq!(factors.iter().product::<usize>(), p, "factors {factors:?} do not multiply to {p}");
    let width = images[0].width;
    let height = images[0].height;
    let n_px = images[0].num_pixels();
    let bpp = RankImage::bytes_per_pixel(mode);

    let mut world = LockstepWorld::new(p, net);
    let mut compute_total = 0.0f64;

    // Initial (compressed) fragment construction is compute the ranks do.
    let t_init = Instant::now();
    let mut states: Vec<RankState<F>> = images
        .iter()
        .map(|img| RankState { start: 0, end: n_px, frag: F::from_image(img) })
        .collect();
    compute_total += t_init.elapsed().as_secs_f64();

    let mut stride = 1usize;
    for &k in factors {
        if k == 1 {
            continue;
        }
        // Execute the round: every rank keeps part `d` of its range and
        // merges the same part from its k-1 group partners (digit order =
        // visibility order of the accumulated contiguous blocks).
        let results: Vec<(RankState<F>, RoundCost, f64)> = (0..p)
            .into_par_iter()
            .map(|r| {
                let d = (r / stride) % k;
                let group_base = r - d * stride;
                let my = &states[r];
                let len = my.end - my.start;
                let part = |j: usize| -> (usize, usize) {
                    (my.start + j * len / k, my.start + (j + 1) * len / k)
                };
                let (ps, pe) = part(d);
                let t0 = Instant::now();
                // Merge members front (digit 0) to back (digit k-1).
                let mut frag: Option<F> = None;
                for j in 0..k {
                    let member = group_base + j * stride;
                    let ms = &states[member];
                    // The member's fragment covers [ms.start, ms.end); take
                    // the sub-slice corresponding to [ps, pe).
                    let piece = ms.frag.slice(ps - ms.start, pe - ms.start);
                    frag = Some(match frag {
                        None => piece,
                        Some(mut acc) => {
                            // `acc` holds members 0..j (in front), so the new
                            // piece goes behind: merge acc into piece.
                            match mode {
                                CompositeMode::ZBuffer => {
                                    acc.merge_front(&piece, CompositeMode::ZBuffer);
                                    acc
                                }
                                CompositeMode::AlphaOrdered => {
                                    let mut back = piece;
                                    back.merge_front(&acc, CompositeMode::AlphaOrdered);
                                    back
                                }
                            }
                        }
                    });
                }
                // Wire bytes: this rank sends its own fragment's other k-1
                // parts (compressed sizing included in the timed window — it
                // is the packing cost).
                let mut wire = 0usize;
                for j in 0..k {
                    if j != d {
                        let (s, e) = part(j);
                        wire += my.frag.wire_bytes_range(s - my.start, e - my.start, mode);
                    }
                }
                let compute = t0.elapsed().as_secs_f64();
                let sent_pixels = len - (pe - ps);
                let cost = RoundCost {
                    compute_s: compute,
                    bytes_sent: wire,
                    bytes_dense: sent_pixels * bpp,
                    messages: k - 1,
                };
                // xlint::allow(X006): every rank holds exactly one fragment per radix round by construction.
                (RankState { start: ps, end: pe, frag: frag.unwrap() }, cost, compute)
            })
            .collect();
        let costs: Vec<RoundCost> = results.iter().map(|r| r.1).collect();
        compute_total += results.iter().map(|r| r.2).sum::<f64>();
        states = results.into_iter().map(|r| r.0).collect();
        world.finish_round(&costs);
        stride *= k;
    }

    // Final gather to root: every rank ships its piece; the root's NIC
    // serializes the incoming image, so the root is charged the full byte
    // volume.
    let t0 = Instant::now();
    let mut full = RankImage::empty(width, height);
    for st in &states {
        st.frag.write_into(&mut full, st.start);
    }
    let assemble = t0.elapsed().as_secs_f64();
    compute_total += assemble;
    let mut gather_costs = vec![RoundCost::default(); p];
    let mut incoming_wire = 0usize;
    for (r, st) in states.iter().enumerate() {
        if r != 0 {
            let wire = st.frag.wire_bytes(mode);
            incoming_wire += wire;
            gather_costs[r] = RoundCost {
                compute_s: 0.0,
                bytes_sent: wire,
                bytes_dense: (st.end - st.start) * bpp,
                messages: 1,
            };
        }
    }
    gather_costs[0] = RoundCost {
        compute_s: assemble,
        bytes_sent: incoming_wire,
        bytes_dense: n_px.saturating_sub(states[0].end - states[0].start) * bpp,
        messages: p.saturating_sub(1),
    };
    world.finish_round(&gather_costs);

    let per_round = world
        .round_bytes
        .iter()
        .map(|&(w, d)| RoundBytes { wire_bytes: w, dense_bytes: d })
        .collect();
    (
        full,
        CompositeStats {
            simulated_seconds: world.elapsed_s,
            compute_seconds: compute_total,
            total_bytes: world.total_bytes,
            dense_bytes: world.dense_bytes,
            per_round,
            rounds: world.rounds,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use vecmath::Color;

    /// Random sparse rank images: each rank covers a band of pixels.
    fn make_images(p: usize, w: u32, h: u32, seed: u64) -> Vec<RankImage> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..p)
            .map(|r| {
                let mut img = RankImage::empty(w, h);
                let n = img.num_pixels();
                for i in 0..n {
                    if rng.gen::<f32>() < 0.4 {
                        let a = rng.gen::<f32>() * 0.8;
                        img.color[i] = Color::new(
                            rng.gen::<f32>() * a,
                            rng.gen::<f32>() * a,
                            rng.gen::<f32>() * a,
                            a,
                        );
                        img.depth[i] = r as f32 + rng.gen::<f32>();
                    }
                }
                img
            })
            .collect()
    }

    #[test]
    fn all_algorithms_match_reference_zbuffer() {
        for p in [1usize, 2, 4, 6, 8, 12] {
            let imgs = make_images(p, 16, 9, 42 + p as u64);
            let expect = reference(&imgs, CompositeMode::ZBuffer);
            let (ds, _) = direct_send(&imgs, CompositeMode::ZBuffer, NetModel::zero());
            assert!(ds.max_color_diff(&expect) < 1e-6, "direct send p={p}");
            let (rk, _) =
                radix_k(&imgs, CompositeMode::ZBuffer, NetModel::zero(), &default_factors(p));
            assert!(rk.max_color_diff(&expect) < 1e-6, "radix-k p={p}");
            let (bs, _) = binary_swap(&imgs, CompositeMode::ZBuffer, NetModel::zero());
            assert!(bs.max_color_diff(&expect) < 1e-6, "binary swap p={p}");
        }
    }

    #[test]
    fn all_algorithms_match_reference_alpha() {
        for p in [1usize, 2, 4, 8, 9, 16] {
            let imgs = make_images(p, 13, 7, 1000 + p as u64);
            let expect = reference(&imgs, CompositeMode::AlphaOrdered);
            let (ds, _) = direct_send(&imgs, CompositeMode::AlphaOrdered, NetModel::zero());
            assert!(ds.max_color_diff(&expect) < 2e-5, "direct send p={p}");
            let (rk, _) =
                radix_k(&imgs, CompositeMode::AlphaOrdered, NetModel::zero(), &default_factors(p));
            assert!(rk.max_color_diff(&expect) < 2e-5, "radix-k p={p}");
            let (bs, _) = binary_swap(&imgs, CompositeMode::AlphaOrdered, NetModel::zero());
            assert!(bs.max_color_diff(&expect) < 2e-5, "binary swap p={p}");
        }
    }

    #[test]
    fn binary_swap_has_log_rounds() {
        let imgs = make_images(8, 8, 8, 3);
        let (_, st) = binary_swap(&imgs, CompositeMode::ZBuffer, NetModel::cluster());
        assert_eq!(st.rounds, 3 + 1); // log2(8) + gather
        let (_, st2) = direct_send(&imgs, CompositeMode::ZBuffer, NetModel::cluster());
        assert_eq!(st2.rounds, 1 + 1);
        // Non-power-of-two adds one fold round: 12 -> fold + log2(8) + gather.
        let imgs12 = make_images(12, 8, 8, 4);
        let (out, st3) = binary_swap(&imgs12, CompositeMode::AlphaOrdered, NetModel::cluster());
        assert_eq!(st3.rounds, 1 + 3 + 1);
        let expect = reference(&imgs12, CompositeMode::AlphaOrdered);
        assert!(out.max_color_diff(&expect) < 2e-5);
    }

    #[test]
    fn bigger_images_cost_more_simulated_time() {
        let small = make_images(4, 16, 16, 9);
        let big = make_images(4, 64, 64, 9);
        let (_, a) = binary_swap(&small, CompositeMode::AlphaOrdered, NetModel::cluster());
        let (_, b) = binary_swap(&big, CompositeMode::AlphaOrdered, NetModel::cluster());
        assert!(b.simulated_seconds > a.simulated_seconds);
        assert!(b.total_bytes > a.total_bytes);
    }

    #[test]
    fn default_factors_multiply_back() {
        for p in [1usize, 2, 6, 8, 12, 24, 1024, 1000] {
            let f = default_factors(p);
            assert_eq!(f.iter().product::<usize>(), p, "{f:?}");
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let imgs = make_images(1, 10, 10, 5);
        let (out, st) = direct_send(&imgs, CompositeMode::ZBuffer, NetModel::cluster());
        assert!(out.max_color_diff(&imgs[0]) < 1e-7);
        assert_eq!(st.total_bytes, 0);
        assert_eq!(st.dense_bytes, 0);
    }

    /// Compressed (default) and dense exchanges must agree bit-for-bit.
    #[test]
    fn compressed_and_dense_outputs_are_pixel_identical() {
        for p in [2usize, 4, 6, 12] {
            let imgs = make_images(p, 16, 9, 77 + p as u64);
            for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
                let factors = default_factors(p);
                let (c, cs) = radix_k_opts(
                    &imgs,
                    mode,
                    NetModel::cluster(),
                    &factors,
                    ExchangeOptions::default(),
                );
                let (d, ds) = radix_k_opts(
                    &imgs,
                    mode,
                    NetModel::cluster(),
                    &factors,
                    ExchangeOptions::dense(),
                );
                assert_eq!(c.max_color_diff(&d), 0.0, "p={p} {mode:?}");
                for i in 0..c.depth.len() {
                    assert!(c.depth[i] == d.depth[i], "depth {i} p={p} {mode:?}");
                }
                // Dense accounting must match regardless of representation.
                assert_eq!(cs.dense_bytes, ds.dense_bytes, "p={p} {mode:?}");
                assert_eq!(ds.total_bytes, ds.dense_bytes, "dense path is dense");
            }
        }
    }

    /// Sparse bands compress; the wire total must drop accordingly and the
    /// per-round records must sum to the totals.
    #[test]
    fn sparse_images_compress_on_the_wire() {
        let imgs = make_images(8, 32, 32, 21);
        let factors = default_factors(8);
        let mode = CompositeMode::ZBuffer;
        let (_, comp) =
            radix_k_opts(&imgs, mode, NetModel::cluster(), &factors, ExchangeOptions::default());
        let (_, dense) =
            radix_k_opts(&imgs, mode, NetModel::cluster(), &factors, ExchangeOptions::dense());
        assert!(
            comp.total_bytes < dense.total_bytes,
            "{} vs {}",
            comp.total_bytes,
            dense.total_bytes
        );
        assert!(comp.compression_ratio() > 1.0);
        assert_eq!(comp.per_round.len(), comp.rounds);
        let wire_sum: u64 = comp.per_round.iter().map(|r| r.wire_bytes).sum();
        let dense_sum: u64 = comp.per_round.iter().map(|r| r.dense_bytes).sum();
        assert_eq!(wire_sum, comp.total_bytes);
        assert_eq!(dense_sum, comp.dense_bytes);
    }
}
