//! Property tests for the mesh substrate: isosurface correctness, hex
//! decomposition volume conservation, external-face counting.

use mesh::datasets::{field_grid, FieldKind};
use mesh::external_faces::{external_face_triangle_estimate, external_faces_grid};
use mesh::isosurface::isosurface;
use mesh::structured::UniformGrid;
use mesh::unstructured::HexMesh;
use proptest::prelude::*;
use vecmath::{Aabb, Vec3};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every isosurface vertex interpolates the field to the isovalue: for a
    /// linear field the surface is the exact plane.
    #[test]
    fn isosurface_of_linear_field_is_planar(
        a in -2.0f32..2.0, b in -2.0f32..2.0, c in 0.5f32..2.0, iso in -0.5f32..0.5
    ) {
        let mut g = UniformGrid::new([10; 3], Aabb::from_corners(Vec3::splat(-1.0), Vec3::splat(1.0)));
        g.add_point_field("f", move |p| a * p.x + b * p.y + c * p.z);
        let m = isosurface(&g, "f", iso, None);
        // The plane crosses the cube for small iso given c >= 0.5.
        prop_assert!(m.num_tris() > 0);
        for &p in m.points.iter().step_by(5) {
            let v = a * p.x + b * p.y + c * p.z;
            prop_assert!((v - iso).abs() < 1e-3, "vertex {:?} field {} vs iso {}", p, v, iso);
        }
    }

    /// Hex-to-tet decomposition conserves volume for randomly stretched grids.
    #[test]
    fn hex_decomposition_conserves_volume(
        nx in 1usize..4, ny in 1usize..4, nz in 1usize..4,
        sx in 0.2f32..3.0, sy in 0.2f32..3.0, sz in 0.2f32..3.0
    ) {
        let bounds = Aabb::from_corners(Vec3::ZERO, Vec3::new(sx, sy, sz));
        let g = UniformGrid::new([nx, ny, nz], bounds);
        let h = HexMesh::from_uniform_grid(&g);
        let t = h.to_tets();
        prop_assert_eq!(t.num_tets(), nx * ny * nz * 6);
        let total: f32 = (0..t.num_tets()).map(|i| t.tet_volume(i).abs()).sum();
        let expect = sx * sy * sz;
        prop_assert!((total - expect).abs() / expect < 1e-3, "{} vs {}", total, expect);
    }

    /// External faces of an N^3 grid always produce exactly 12 N^2 triangles
    /// with all vertices on the boundary.
    #[test]
    fn external_faces_exact_count(n in 1usize..7) {
        let mut g = UniformGrid::new([n; 3], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        g.add_point_field("s", |p| p.x);
        let m = external_faces_grid(&g, "s");
        prop_assert_eq!(m.num_tris(), external_face_triangle_estimate(n));
        for &p in &m.points {
            let on = [p.x, p.y, p.z].iter().any(|&v| v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6);
            prop_assert!(on);
        }
    }

    /// Isosurface triangle count is invariant under field negation with
    /// matching isovalue negation (inside/outside symmetry).
    #[test]
    fn isosurface_negation_symmetry(iso in 0.1f32..0.7) {
        let g = field_grid(FieldKind::ShockShell, [12, 12, 12]);
        let pos = isosurface(&g, "scalar", iso, None);
        let mut neg = g.clone();
        let vals: Vec<f32> = g.field("scalar").unwrap().values.iter().map(|v| -v).collect();
        neg.fields.push(mesh::Field::point("neg", vals));
        let m2 = isosurface(&neg, "neg", -iso, None);
        // Same crossing set: identical triangle counts.
        prop_assert_eq!(pos.num_tris(), m2.num_tris());
    }
}
