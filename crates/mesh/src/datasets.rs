//! Synthetic stand-ins for the study's data sets.
//!
//! The paper rendered isosurfaces of a Richtmyer-Meshkov instability, a Lead
//! Telluride charge density, seismic wave speeds, plus graphics benchmark
//! models; and volume-rendered Enzo cosmology and Nek5000 thermal-hydraulics
//! meshes. We do not have those files, so we generate fields with comparable
//! structure (turbulent multi-scale fBm for RM, smooth lattice-periodic for
//! PbTe, radial shells for shocks) on grids of the paper's sizes. The
//! performance models consume *counts*, not physics, so what matters is that
//! triangle/tet counts land in the studied ranges — which these do.

use crate::isosurface::isosurface;
use crate::structured::UniformGrid;
use crate::unstructured::{HexMesh, TetMesh, TriMesh};
use vecmath::{Aabb, Vec3};

/// Deterministic integer hash (SplitMix64 finalizer).
#[inline]
fn hash3(x: i64, y: i64, z: i64, seed: u64) -> u64 {
    let mut h = seed
        ^ (x as u64).wrapping_mul(0x9E3779B97F4A7C15)
        ^ (y as u64).wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ (z as u64).wrapping_mul(0x165667B19E3779F9);
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58476D1CE4E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D049BB133111EB);
    h ^= h >> 31;
    h
}

/// Value noise in `[-1, 1]` at lattice scale 1, trilinearly interpolated.
fn value_noise(p: Vec3, seed: u64) -> f32 {
    let xi = p.x.floor() as i64;
    let yi = p.y.floor() as i64;
    let zi = p.z.floor() as i64;
    let fx = p.x - xi as f32;
    let fy = p.y - yi as f32;
    let fz = p.z - zi as f32;
    // Smoothstep fade.
    let sx = fx * fx * (3.0 - 2.0 * fx);
    let sy = fy * fy * (3.0 - 2.0 * fy);
    let sz = fz * fz * (3.0 - 2.0 * fz);
    let corner = |dx: i64, dy: i64, dz: i64| -> f32 {
        let h = hash3(xi + dx, yi + dy, zi + dz, seed);
        (h as f64 / u64::MAX as f64) as f32 * 2.0 - 1.0
    };
    let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
    let c00 = lerp(corner(0, 0, 0), corner(1, 0, 0), sx);
    let c10 = lerp(corner(0, 1, 0), corner(1, 1, 0), sx);
    let c01 = lerp(corner(0, 0, 1), corner(1, 0, 1), sx);
    let c11 = lerp(corner(0, 1, 1), corner(1, 1, 1), sx);
    let c0 = lerp(c00, c10, sy);
    let c1 = lerp(c01, c11, sy);
    lerp(c0, c1, sz)
}

/// Fractal Brownian motion: `octaves` layers of value noise.
pub fn fbm(p: Vec3, octaves: u32, seed: u64) -> f32 {
    let mut sum = 0.0;
    let mut amp = 0.5;
    let mut freq = 1.0;
    for o in 0..octaves {
        sum += amp * value_noise(p * freq, seed.wrapping_add(o as u64 * 1013));
        amp *= 0.5;
        freq *= 2.03;
    }
    sum
}

/// The classic "tangle cube" implicit field: its zero isosurface is a smooth
/// multi-lobed surface (our PbTe charge-density stand-in).
pub fn tangle(p: Vec3) -> f32 {
    let (x, y, z) = (p.x, p.y, p.z);
    x.powi(4) - 5.0 * x * x + y.powi(4) - 5.0 * y * y + z.powi(4) - 5.0 * z * z + 11.8
}

/// Turbulent interface field: a plane perturbed by fBm — the Richtmyer-
/// Meshkov mixing-layer stand-in. Its 0-isosurface is a crinkled sheet whose
/// triangle count grows ~N^2 with grid resolution, like the RM isosurfaces.
pub fn rm_interface(p: Vec3, seed: u64) -> f32 {
    p.y - 0.15 * fbm(p * 4.0, 5, seed)
}

/// Radial shock shell: density bump at radius `r0` (Sedov-like).
pub fn shock_shell(p: Vec3, center: Vec3, r0: f32, width: f32) -> f32 {
    let r = (p - center).length();
    (-((r - r0) / width).powi(2)).exp()
}

/// The Marschner-Lobb test signal — the classic volume-rendering benchmark
/// field (high-frequency ripples that expose sampling artifacts). Defined on
/// `[-1, 1]^3`, range `[0, 1]`.
pub fn marschner_lobb(p: Vec3) -> f32 {
    const F_M: f32 = 6.0;
    const ALPHA: f32 = 0.25;
    let r = (p.x * p.x + p.y * p.y).sqrt();
    let rho = (std::f32::consts::FRAC_PI_2 * (std::f32::consts::PI * F_M * r).cos() * 0.5).cos();
    ((1.0 - (std::f32::consts::PI * p.z * 0.5).sin()) + ALPHA * (1.0 + rho)) / (2.0 * (1.0 + ALPHA))
}

/// Default domain used by the synthetic fields: `[-1, 1]^3` except tangle,
/// which needs `[-3.2, 3.2]^3`.
pub fn unit_bounds() -> Aabb {
    Aabb::from_corners(Vec3::splat(-1.0), Vec3::splat(1.0))
}

/// Build a uniform grid with the named synthetic field (plus an `elevation`
/// color field) filled in.
pub fn field_grid(kind: FieldKind, cells: [usize; 3]) -> UniformGrid {
    let bounds = match kind {
        FieldKind::Tangle => Aabb::from_corners(Vec3::splat(-3.2), Vec3::splat(3.2)),
        _ => unit_bounds(),
    };
    let mut g = UniformGrid::new(cells, bounds);
    match kind {
        FieldKind::Tangle => g.add_point_field("scalar", tangle),
        FieldKind::RmInterface => g.add_point_field("scalar", |p| rm_interface(p, 0xC0FFEE)),
        FieldKind::Turbulence => g.add_point_field("scalar", |p| fbm(p * 6.0, 5, 0xBEEF)),
        FieldKind::ShockShell => {
            g.add_point_field("scalar", |p| shock_shell(p, Vec3::ZERO, 0.6, 0.15))
        }
        FieldKind::MarschnerLobb => g.add_point_field("scalar", marschner_lobb),
    }
    g.add_point_field("elevation", |p| p.z);
    g
}

/// Which synthetic field to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    Tangle,
    RmInterface,
    Turbulence,
    ShockShell,
    MarschnerLobb,
}

/// One entry of the study's surface data-set pool (Chapter II, Section 2.5),
/// with the grid it is extracted from and the field used.
#[derive(Debug, Clone)]
pub struct SurfaceDatasetSpec {
    pub name: &'static str,
    /// Grid cells per axis at full scale (the paper's grid sizes).
    pub cells: [usize; 3],
    pub kind: FieldKind,
    pub isovalue: f32,
}

/// The Chapter II data-set pool. Grid dims follow the paper; triangle counts
/// from our synthetic fields land in the same order of magnitude per entry.
pub fn surface_dataset_pool() -> Vec<SurfaceDatasetSpec> {
    vec![
        SurfaceDatasetSpec {
            name: "RM 3.2M",
            cells: [400, 400, 256],
            kind: FieldKind::RmInterface,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "RM 1.7M",
            cells: [256, 256, 256],
            kind: FieldKind::RmInterface,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "RM 970K",
            cells: [200, 200, 200],
            kind: FieldKind::RmInterface,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "RM 650K",
            cells: [192, 144, 144],
            kind: FieldKind::RmInterface,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "RM 350K",
            cells: [128, 128, 128],
            kind: FieldKind::RmInterface,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "LT 350K",
            cells: [113, 113, 133],
            kind: FieldKind::Tangle,
            isovalue: 0.0,
        },
        SurfaceDatasetSpec {
            name: "LT 372K",
            cells: [113, 113, 133],
            kind: FieldKind::Tangle,
            isovalue: 1.5,
        },
        SurfaceDatasetSpec {
            name: "Seismic",
            cells: [300, 300, 300],
            kind: FieldKind::Turbulence,
            isovalue: 0.05,
        },
        SurfaceDatasetSpec {
            name: "Dragon",
            cells: [110, 110, 110],
            kind: FieldKind::ShockShell,
            isovalue: 0.5,
        },
        SurfaceDatasetSpec {
            name: "Conference",
            cells: [160, 160, 160],
            kind: FieldKind::Turbulence,
            isovalue: 0.1,
        },
        SurfaceDatasetSpec {
            name: "Sponza",
            cells: [100, 100, 100],
            kind: FieldKind::Tangle,
            isovalue: 2.0,
        },
        SurfaceDatasetSpec {
            name: "Buddha",
            cells: [220, 220, 220],
            kind: FieldKind::ShockShell,
            isovalue: 0.4,
        },
    ]
}

impl SurfaceDatasetSpec {
    /// Extract the triangle soup at `scale` (1.0 = paper-sized grids; smaller
    /// values shrink each axis for quick runs).
    pub fn build(&self, scale: f32) -> TriMesh {
        let s = |n: usize| ((n as f32 * scale) as usize).max(8);
        let g = field_grid(self.kind, [s(self.cells[0]), s(self.cells[1]), s(self.cells[2])]);
        isosurface(&g, "scalar", self.isovalue, Some("elevation"))
    }
}

/// One entry of the Chapter III tetrahedral pool (Enzo / Nek5000 stand-ins).
#[derive(Debug, Clone)]
pub struct TetDatasetSpec {
    pub name: &'static str,
    /// Grid cells per axis; tet count = 6 * cells^3.
    pub cells: [usize; 3],
    pub kind: FieldKind,
}

/// Chapter III pool: grid sizes chosen so 6 tets/cell reproduces the paper's
/// tet counts (1.31M, 10.5M, 50M, 83.9M at scale 1.0).
pub fn tet_dataset_pool() -> Vec<TetDatasetSpec> {
    vec![
        TetDatasetSpec { name: "Enzo-1M", cells: [60, 60, 60], kind: FieldKind::Turbulence },
        TetDatasetSpec { name: "Enzo-10M", cells: [120, 120, 120], kind: FieldKind::Turbulence },
        TetDatasetSpec { name: "Nek5000", cells: [203, 203, 203], kind: FieldKind::ShockShell },
        TetDatasetSpec { name: "Enzo-80M", cells: [240, 240, 240], kind: FieldKind::Turbulence },
    ]
}

impl TetDatasetSpec {
    /// Build the tet mesh at `scale` (axis scale factor).
    pub fn build(&self, scale: f32) -> TetMesh {
        let s = |n: usize| ((n as f32 * scale) as usize).max(4);
        let g = field_grid(self.kind, [s(self.cells[0]), s(self.cells[1]), s(self.cells[2])]);
        let hexes = HexMesh::from_uniform_grid(&g);
        hexes.to_tets()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let p = Vec3::new(0.3, 1.7, -2.2);
        let a = fbm(p, 5, 42);
        let b = fbm(p, 5, 42);
        assert_eq!(a, b);
        assert!(a.abs() < 1.0);
        assert_ne!(fbm(p, 5, 42), fbm(p, 5, 43));
    }

    #[test]
    fn noise_is_continuous() {
        let p = Vec3::new(0.5, 0.25, 0.75);
        let eps = 1e-3;
        let a = value_noise(p, 7);
        let b = value_noise(p + Vec3::splat(eps), 7);
        assert!((a - b).abs() < 0.05);
    }

    #[test]
    fn marschner_lobb_is_bounded_and_rippled() {
        let g = field_grid(FieldKind::MarschnerLobb, [24, 24, 24]);
        let (lo, hi) = g.field("scalar").unwrap().range().unwrap();
        assert!(lo >= -0.01 && hi <= 1.01, "range {lo}..{hi}");
        // The signal has real variation (ripples), not a flat ramp.
        assert!(hi - lo > 0.5);
    }

    #[test]
    fn tangle_isosurface_exists() {
        let g = field_grid(FieldKind::Tangle, [24, 24, 24]);
        let (lo, hi) = g.field("scalar").unwrap().range().unwrap();
        assert!(lo < 0.0 && hi > 0.0, "range {lo}..{hi} must straddle 0");
    }

    #[test]
    fn rm_surface_tri_count_order() {
        let spec = &surface_dataset_pool()[4]; // RM 350K
        let m = spec.build(0.25); // 32^3 grid
                                  // At scale s, tri count ~ s^2 * full count: expect hundreds-to-thousands.
        assert!(m.num_tris() > 500, "got {}", m.num_tris());
    }

    #[test]
    fn tet_pool_counts() {
        let spec = &tet_dataset_pool()[0];
        let m = spec.build(0.2); // 12^3 cells
        assert_eq!(m.num_tets(), 6 * 12 * 12 * 12);
    }

    #[test]
    fn pool_names_are_unique() {
        let pool = surface_dataset_pool();
        let mut names: Vec<_> = pool.iter().map(|s| s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), pool.len());
    }
}
