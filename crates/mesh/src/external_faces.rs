//! External-faces extraction: the geometry filter the SC16 study uses to
//! produce surface workloads ("takes O(N^3) cells and creates O(N^2)
//! geometry"). For an N^3 grid the result is exactly 12 N^2 triangles — the
//! `O = 12 N^2` term of the model-input mapping in Section 5.8.

use crate::structured::UniformGrid;
use crate::unstructured::{HexMesh, TriMesh};
use std::collections::HashMap;

/// External faces of a uniform grid with a point field mapped to per-vertex
/// scalars. Produces `12 * (nx*ny + ny*nz + nz*nx) / 3`-ish triangles —
/// exactly two triangles per boundary cell face.
pub fn external_faces_grid(grid: &UniformGrid, field_name: &str) -> TriMesh {
    let field = &grid
        .field(field_name)
        .unwrap_or_else(|| panic!("no point field named {field_name}"))
        .values;
    let c = grid.cell_dims();
    let mut mesh = TriMesh::default();
    let expected = 4 * (c[0] * c[1] + c[1] * c[2] + c[2] * c[0]);
    mesh.tris.reserve(expected);
    mesh.points.reserve(expected * 2);

    let mut emit_quad = |corners: [(usize, usize, usize); 4]| {
        let base = mesh.points.len() as u32;
        for (i, j, k) in corners {
            mesh.points.push(grid.point_position(i, j, k));
            mesh.scalars.push(field[grid.point_index(i, j, k)]);
        }
        mesh.tris.push([base, base + 1, base + 2]);
        mesh.tris.push([base, base + 2, base + 3]);
    };

    // -z / +z faces.
    for j in 0..c[1] {
        for i in 0..c[0] {
            emit_quad([(i, j, 0), (i, j + 1, 0), (i + 1, j + 1, 0), (i + 1, j, 0)]);
            let k = c[2];
            emit_quad([(i, j, k), (i + 1, j, k), (i + 1, j + 1, k), (i, j + 1, k)]);
        }
    }
    // -y / +y faces.
    for k in 0..c[2] {
        for i in 0..c[0] {
            emit_quad([(i, 0, k), (i + 1, 0, k), (i + 1, 0, k + 1), (i, 0, k + 1)]);
            let j = c[1];
            emit_quad([(i, j, k), (i, j, k + 1), (i + 1, j, k + 1), (i + 1, j, k)]);
        }
    }
    // -x / +x faces.
    for k in 0..c[2] {
        for j in 0..c[1] {
            emit_quad([(0, j, k), (0, j, k + 1), (0, j + 1, k + 1), (0, j + 1, k)]);
            let i = c[0];
            emit_quad([(i, j, k), (i, j + 1, k), (i, j + 1, k + 1), (i, j, k + 1)]);
        }
    }
    mesh
}

/// Quad faces of a hexahedron in VTK ordering, outward-oriented.
const HEX_FACES: [[usize; 4]; 6] = [
    [0, 3, 2, 1], // -z
    [4, 5, 6, 7], // +z
    [0, 1, 5, 4], // -y
    [2, 3, 7, 6], // +y
    [0, 4, 7, 3], // -x
    [1, 2, 6, 5], // +x
];

/// External faces of an unstructured hex mesh: faces referenced by exactly
/// one hexahedron, triangulated, with an optional point field as scalar.
pub fn external_faces_hex(mesh: &HexMesh, field_name: Option<&str>) -> TriMesh {
    let field =
        field_name.map(|n| &mesh.field(n).unwrap_or_else(|| panic!("no field named {n}")).values);
    // Count occurrences of each face by its sorted vertex key.
    let mut counts: HashMap<[u32; 4], (u32, [u32; 4])> =
        HashMap::with_capacity(mesh.num_hexes() * 3);
    for h in &mesh.hexes {
        for f in HEX_FACES {
            let quad = [h[f[0]], h[f[1]], h[f[2]], h[f[3]]];
            let mut key = quad;
            key.sort_unstable();
            counts.entry(key).and_modify(|e| e.0 += 1).or_insert((1, quad));
        }
    }
    let mut out = TriMesh::default();
    let mut boundary: Vec<[u32; 4]> =
        counts.into_values().filter_map(|(n, quad)| (n == 1).then_some(quad)).collect();
    // Deterministic output order.
    boundary.sort_unstable();
    for quad in boundary {
        let base = out.points.len() as u32;
        for &v in &quad {
            let p = mesh.points[v as usize];
            out.points.push(p);
            out.scalars.push(match field {
                Some(f) => f.get(v as usize).copied().unwrap_or(0.0),
                None => p.z,
            });
        }
        out.tris.push([base, base + 1, base + 2]);
        out.tris.push([base, base + 2, base + 3]);
    }
    out
}

/// The study's mapping estimate: `O = 12 N^2` triangles for an N^3 grid.
pub fn external_face_triangle_estimate(n: usize) -> usize {
    12 * n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmath::{Aabb, Vec3};

    fn cube_grid(n: usize) -> UniformGrid {
        let mut g = UniformGrid::new([n; 3], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        g.add_point_field("s", |p| p.x + p.y + p.z);
        g
    }

    #[test]
    fn grid_face_count_matches_formula() {
        for n in [1usize, 2, 5, 8] {
            let m = external_faces_grid(&cube_grid(n), "s");
            assert_eq!(m.num_tris(), external_face_triangle_estimate(n), "n={n}");
        }
    }

    #[test]
    fn faces_lie_on_the_boundary() {
        let m = external_faces_grid(&cube_grid(4), "s");
        for &p in &m.points {
            let on_boundary =
                [p.x, p.y, p.z].iter().any(|&v| v.abs() < 1e-6 || (v - 1.0).abs() < 1e-6);
            assert!(on_boundary, "{p:?} not on the unit cube boundary");
        }
    }

    #[test]
    fn normals_point_outward() {
        let m = external_faces_grid(&cube_grid(2), "s");
        let center = Vec3::splat(0.5);
        for t in 0..m.num_tris() {
            let pts = m.tri_points(t);
            let tri_center = (pts[0] + pts[1] + pts[2]) / 3.0;
            let n = m.tri_normal(t);
            assert!(n.dot(tri_center - center) > 0.0, "tri {t} normal points inward");
        }
    }

    #[test]
    fn hex_mesh_externals_match_grid_externals() {
        let g = cube_grid(3);
        let h = HexMesh::from_uniform_grid(&g);
        let from_hex = external_faces_hex(&h, Some("s"));
        let from_grid = external_faces_grid(&g, "s");
        assert_eq!(from_hex.num_tris(), from_grid.num_tris());
    }

    #[test]
    fn single_hex_has_twelve_tris() {
        let g = cube_grid(1);
        let h = HexMesh::from_uniform_grid(&g);
        let m = external_faces_hex(&h, None);
        assert_eq!(m.num_tris(), 12);
    }
}
