//! Isosurface extraction via marching tetrahedra.
//!
//! The study's surface data sets (the Richtmyer-Meshkov and Lead Telluride
//! isosurfaces of Chapter II) are triangle soups extracted from regular
//! grids. We use marching *tetrahedra* — each grid cell is split into six
//! tets and each tet contributes 0, 1, or 2 triangles — because its case
//! table is small enough to verify by construction while producing the same
//! kind of workload (triangle count proportional to surface area resolution).

use crate::structured::UniformGrid;
use crate::unstructured::{TriMesh, HEX_TO_TETS};
use rayon::prelude::*;
use vecmath::Vec3;

/// Offsets of the 8 cell corners in VTK hexahedron order.
const CORNER_OFFSETS: [[usize; 3]; 8] =
    [[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0], [0, 0, 1], [1, 0, 1], [1, 1, 1], [0, 1, 1]];

/// Extract the isosurface of point field `field_name` at `isovalue`.
///
/// Per-vertex scalars on the output are taken from `color_field` (another
/// point field interpolated onto the surface) when given, else the
/// z-coordinate of the vertex — the paper's renderings color isosurfaces by
/// a secondary quantity the same way.
pub fn isosurface(
    grid: &UniformGrid,
    field_name: &str,
    isovalue: f32,
    color_field: Option<&str>,
) -> TriMesh {
    let field = grid
        .field(field_name)
        .unwrap_or_else(|| panic!("no point field named {field_name}"))
        .values
        .clone();
    let color: Option<Vec<f32>> = color_field.map(|n| {
        grid.field(n).unwrap_or_else(|| panic!("no point field named {n}")).values.clone()
    });

    let c = grid.cell_dims();
    let per_slab: Vec<TriMesh> = (0..c[2])
        .into_par_iter()
        .map(|k| {
            let mut out = TriMesh::default();
            let mut corners_p = [Vec3::ZERO; 8];
            let mut corners_s = [0.0f32; 8];
            let mut corners_c = [0.0f32; 8];
            for j in 0..c[1] {
                for i in 0..c[0] {
                    for (n, off) in CORNER_OFFSETS.iter().enumerate() {
                        let (pi, pj, pk) = (i + off[0], j + off[1], k + off[2]);
                        corners_p[n] = grid.point_position(pi, pj, pk);
                        let idx = grid.point_index(pi, pj, pk);
                        corners_s[n] = field[idx];
                        corners_c[n] = match &color {
                            Some(cf) => cf[idx],
                            None => corners_p[n].z,
                        };
                    }
                    // Cheap reject: whole cell on one side.
                    let lo = corners_s.iter().copied().fold(f32::INFINITY, f32::min);
                    let hi = corners_s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    if lo > isovalue || hi < isovalue {
                        continue;
                    }
                    for tet in HEX_TO_TETS {
                        march_tet(
                            &mut out,
                            [
                                corners_p[tet[0]],
                                corners_p[tet[1]],
                                corners_p[tet[2]],
                                corners_p[tet[3]],
                            ],
                            [
                                corners_s[tet[0]],
                                corners_s[tet[1]],
                                corners_s[tet[2]],
                                corners_s[tet[3]],
                            ],
                            [
                                corners_c[tet[0]],
                                corners_c[tet[1]],
                                corners_c[tet[2]],
                                corners_c[tet[3]],
                            ],
                            isovalue,
                        );
                    }
                }
            }
            out
        })
        .collect();

    let mut mesh = TriMesh::default();
    let total: usize = per_slab.iter().map(|m| m.num_tris()).sum();
    mesh.tris.reserve(total);
    mesh.points.reserve(total * 3);
    mesh.scalars.reserve(total * 3);
    for slab in &per_slab {
        mesh.append(slab);
    }
    mesh
}

/// Emit the triangles of one tetrahedron crossing the isovalue.
fn march_tet(out: &mut TriMesh, p: [Vec3; 4], s: [f32; 4], c: [f32; 4], iso: f32) {
    let inside: Vec<usize> = (0..4).filter(|&i| s[i] > iso).collect();
    let outside: Vec<usize> = (0..4).filter(|&i| s[i] <= iso).collect();

    let interp = |a: usize, b: usize| -> (Vec3, f32) {
        let denom = s[b] - s[a];
        let t = if denom.abs() > 1e-20 { (iso - s[a]) / denom } else { 0.5 };
        let t = t.clamp(0.0, 1.0);
        (p[a].lerp(p[b], t), c[a] + (c[b] - c[a]) * t)
    };

    let mut push_tri = |v: [(Vec3, f32); 3]| {
        let base = out.points.len() as u32;
        for (pt, sc) in v {
            out.points.push(pt);
            out.scalars.push(sc);
        }
        out.tris.push([base, base + 1, base + 2]);
    };

    match inside.len() {
        1 => {
            let a = inside[0];
            push_tri([interp(a, outside[0]), interp(a, outside[1]), interp(a, outside[2])]);
        }
        3 => {
            let a = outside[0];
            push_tri([interp(a, inside[0]), interp(a, inside[1]), interp(a, inside[2])]);
        }
        2 => {
            // Quad between the two crossing pairs, split into two triangles.
            let (a, b) = (inside[0], inside[1]);
            let (x, y) = (outside[0], outside[1]);
            let v0 = interp(a, x);
            let v1 = interp(a, y);
            let v2 = interp(b, y);
            let v3 = interp(b, x);
            push_tri([v0, v1, v2]);
            push_tri([v0, v2, v3]);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmath::Aabb;

    fn sphere_grid(cells: usize) -> UniformGrid {
        let mut g =
            UniformGrid::new([cells; 3], Aabb::from_corners(Vec3::splat(-1.0), Vec3::splat(1.0)));
        g.add_point_field("r", |p| p.length());
        g
    }

    #[test]
    fn sphere_isosurface_lies_on_sphere() {
        let g = sphere_grid(24);
        let m = isosurface(&g, "r", 0.6, None);
        assert!(m.num_tris() > 100, "got {} tris", m.num_tris());
        for &pt in m.points.iter().step_by(37) {
            assert!((pt.length() - 0.6).abs() < 0.08, "vertex {pt:?} off the r=0.6 sphere");
        }
    }

    #[test]
    fn empty_when_isovalue_out_of_range() {
        let g = sphere_grid(8);
        assert_eq!(isosurface(&g, "r", 10.0, None).num_tris(), 0);
        assert_eq!(isosurface(&g, "r", -1.0, None).num_tris(), 0);
    }

    #[test]
    fn triangle_count_scales_with_resolution() {
        let lo = isosurface(&sphere_grid(12), "r", 0.6, None).num_tris();
        let hi = isosurface(&sphere_grid(24), "r", 0.6, None).num_tris();
        // Surface triangle count should scale ~4x when resolution doubles.
        assert!(hi > lo * 2, "lo={lo} hi={hi}");
    }

    #[test]
    fn color_field_is_interpolated() {
        let mut g = sphere_grid(10);
        g.add_point_field("cz", |p| p.z);
        let m = isosurface(&g, "r", 0.5, Some("cz"));
        for (pt, &s) in m.points.iter().zip(m.scalars.iter()).step_by(11) {
            assert!((pt.z - s).abs() < 0.05, "color should track z: {} vs {}", pt.z, s);
        }
    }

    #[test]
    fn all_triangles_nondegenerate_enough() {
        let g = sphere_grid(16);
        let m = isosurface(&g, "r", 0.62, None);
        let degenerate = (0..m.num_tris()).filter(|&t| m.tri_normal(t).length() < 1e-12).count();
        // Marching tets can make slivers but not a meaningful fraction.
        assert!(degenerate < m.num_tris() / 20);
    }
}
