//! Precomputed level-of-detail ladders: edge-collapse decimation for
//! triangle/tet meshes and 2×/4× coarsening for structured grids.
//!
//! Each ladder level is a *deterministic* function of the input mesh — the
//! collapse schedule orders edges by `(length bits, vertex ids)` and picks a
//! maximal independent set per round, so the same mesh at the same level
//! always produces bit-identical geometry. Builds are timed: the ladder
//! carries a measured cost table ([`LodCost`]) that seeds the fitted
//! `lod_half` / `lod_quarter` models the scheduler prices rungs with.
//!
//! Level semantics: level 0 is the full-resolution input; level `l` targets
//! `cells >> l` cells (decimation) or a `2^l`-coarser grid. The ladder never
//! *improves* on the target monotonicity: each level has at most as many
//! cells as the previous one.

use crate::field::Assoc;
use crate::structured::UniformGrid;
use crate::unstructured::{TetMesh, TriMesh};
use std::time::Instant;
use vecmath::Vec3;

/// Measured build cost of one ladder level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LodCost {
    pub level: u8,
    /// Cells (tris / tets / grid cells) at this level.
    pub cells: usize,
    /// Wall-clock seconds to derive this level from level 0.
    pub build_seconds: f64,
}

/// One round of independent-set edge collapse over shared `points`.
/// Returns the vertex remap (`remap[v]` = surviving vertex) or `None` when
/// no edge could be picked.
fn collapse_round(
    points: &mut [Vec3],
    point_attrs: &mut [Vec<f32>],
    edges: &[(u32, u32)],
    max_picks: usize,
) -> Option<Vec<u32>> {
    if edges.is_empty() {
        return None;
    }
    // Shortest edges first; the (bits, v0, v1) key is a total order, so the
    // schedule is a pure function of the geometry.
    let mut order: Vec<(u32, u32, u32)> = edges
        .iter()
        .map(|&(a, b)| {
            let d = points[a as usize] - points[b as usize];
            (d.length_squared().to_bits(), a, b)
        })
        .collect();
    order.sort_unstable();
    let mut used = vec![false; points.len()];
    let mut picked: Vec<(u32, u32)> = Vec::new();
    for &(_, a, b) in &order {
        if picked.len() >= max_picks {
            break;
        }
        if !used[a as usize] && !used[b as usize] {
            used[a as usize] = true;
            used[b as usize] = true;
            picked.push((a, b));
        }
    }
    if picked.is_empty() {
        return None;
    }
    let mut remap: Vec<u32> = (0..points.len() as u32).collect();
    for &(a, b) in &picked {
        let (a, b) = (a as usize, b as usize);
        points[a] = (points[a] + points[b]) * 0.5;
        for attr in point_attrs.iter_mut() {
            if !attr.is_empty() {
                attr[a] = (attr[a] + attr[b]) * 0.5;
            }
        }
        remap[b] = a as u32;
    }
    Some(remap)
}

/// Drop vertices no cell references, rewriting cell indices in place.
/// Returns the kept→old mapping so callers can compact attributes too.
fn compact_points<const N: usize>(num_points: usize, cells: &mut [[u32; N]]) -> Vec<usize> {
    let mut new_id = vec![u32::MAX; num_points];
    let mut kept: Vec<usize> = Vec::new();
    for cell in cells.iter_mut() {
        for v in cell.iter_mut() {
            let old = *v as usize;
            if new_id[old] == u32::MAX {
                new_id[old] = kept.len() as u32;
                kept.push(old);
            }
            *v = new_id[old];
        }
    }
    kept
}

/// Decimate a triangle mesh to at most `target_tris` triangles by rounds of
/// independent-set shortest-edge collapse (midpoint placement, averaged
/// scalars). Stops early when a round makes no progress.
pub fn decimate_tris(mesh: &TriMesh, target_tris: usize) -> TriMesh {
    let mut points = mesh.points.clone();
    let mut scalars = mesh.scalars.clone();
    let mut tris = mesh.tris.clone();
    while tris.len() > target_tris {
        let mut edges: Vec<(u32, u32)> = tris
            .iter()
            .flat_map(|t| [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])])
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        // An interior-edge collapse removes ~2 triangles; cap the round so
        // we land near the target instead of overshooting to nothing.
        let max_picks = (tris.len() - target_tris).div_ceil(2).max(1);
        let mut attrs = [std::mem::take(&mut scalars)];
        let remap = collapse_round(&mut points, &mut attrs, &edges, max_picks);
        scalars = std::mem::take(&mut attrs[0]);
        let Some(remap) = remap else { break };
        let before = tris.len();
        tris = tris
            .iter()
            .map(|t| [remap[t[0] as usize], remap[t[1] as usize], remap[t[2] as usize]])
            .filter(|t| t[0] != t[1] && t[1] != t[2] && t[2] != t[0])
            .collect();
        if tris.len() == before {
            break;
        }
    }
    let kept = compact_points(points.len(), &mut tris);
    TriMesh {
        points: kept.iter().map(|&p| points[p]).collect(),
        scalars: if scalars.is_empty() {
            Vec::new()
        } else {
            kept.iter().map(|&p| scalars[p]).collect()
        },
        tris,
    }
}

/// [`decimate_tris`] for tetrahedral meshes. Point fields average through
/// collapses; cell fields follow the surviving cells.
pub fn decimate_tets(mesh: &TetMesh, target_tets: usize) -> TetMesh {
    let mut points = mesh.points.clone();
    let mut point_attrs: Vec<Vec<f32>> = mesh
        .fields
        .iter()
        .map(|f| if f.assoc == Assoc::Point { f.values.clone() } else { Vec::new() })
        .collect();
    let mut tets = mesh.tets.clone();
    // Track which input cell each surviving tet came from, for cell fields.
    let mut origin: Vec<usize> = (0..tets.len()).collect();
    while tets.len() > target_tets {
        let mut edges: Vec<(u32, u32)> = tets
            .iter()
            .flat_map(|t| {
                [(t[0], t[1]), (t[0], t[2]), (t[0], t[3]), (t[1], t[2]), (t[1], t[3]), (t[2], t[3])]
            })
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        // Collapsing one interior edge of a tet mesh can delete many
        // incident tets; a conservative cap still converges in few rounds.
        let max_picks = (tets.len() - target_tets).div_ceil(4).max(1);
        let Some(remap) = collapse_round(&mut points, &mut point_attrs, &edges, max_picks) else {
            break;
        };
        let before = tets.len();
        let mut next = Vec::with_capacity(tets.len());
        let mut next_origin = Vec::with_capacity(origin.len());
        for (t, &o) in tets.iter().zip(origin.iter()) {
            let m = [
                remap[t[0] as usize],
                remap[t[1] as usize],
                remap[t[2] as usize],
                remap[t[3] as usize],
            ];
            let degenerate = m[0] == m[1]
                || m[0] == m[2]
                || m[0] == m[3]
                || m[1] == m[2]
                || m[1] == m[3]
                || m[2] == m[3];
            if !degenerate {
                next.push(m);
                next_origin.push(o);
            }
        }
        tets = next;
        origin = next_origin;
        if tets.len() == before {
            break;
        }
    }
    let kept = compact_points(points.len(), &mut tets);
    let fields = mesh
        .fields
        .iter()
        .zip(point_attrs.iter())
        .map(|(f, attr)| {
            let mut g = f.clone();
            g.values = match f.assoc {
                Assoc::Point => kept.iter().map(|&p| attr[p]).collect(),
                Assoc::Cell => origin.iter().map(|&c| f.values[c]).collect(),
            };
            g
        })
        .collect();
    TetMesh { points: kept.iter().map(|&p| points[p]).collect(), tets, fields }
}

/// Coarsen a uniform grid by an integer `factor` per axis (2 for one LOD
/// level, 4 for two). Point fields are block-averaged over the `factor³`
/// fine points nearest each coarse point; cell fields are dropped (convert
/// to point fields first if needed). Each axis keeps at least one cell.
pub fn coarsen_grid(grid: &UniformGrid, factor: usize) -> UniformGrid {
    let factor = factor.max(1);
    let fine = grid.cell_dims();
    let coarse = [(fine[0] / factor).max(1), (fine[1] / factor).max(1), (fine[2] / factor).max(1)];
    let mut out = UniformGrid::new(coarse, grid.bounds());
    for f in grid.fields.iter().filter(|f| f.assoc == Assoc::Point) {
        let dims = out.dims;
        let mut values = vec![0.0f32; out.num_points()];
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    // Average the fine points in the block centred on this
                    // coarse point (clamped at the boundary).
                    let (fi, fj, fk) = (i * factor, j * factor, k * factor);
                    let mut sum = 0.0f64;
                    let mut n = 0u32;
                    for dk in 0..factor {
                        for dj in 0..factor {
                            for di in 0..factor {
                                let (x, y, z) = (
                                    (fi + di).min(grid.dims[0] - 1),
                                    (fj + dj).min(grid.dims[1] - 1),
                                    (fk + dk).min(grid.dims[2] - 1),
                                );
                                sum += f.values[grid.point_index(x, y, z)] as f64;
                                n += 1;
                            }
                        }
                    }
                    values[(k * dims[1] + j) * dims[0] + i] = (sum / n as f64) as f32;
                }
            }
        }
        out.fields.push(crate::field::Field::point(f.name.clone(), values));
    }
    out
}

/// A precomputed triangle-mesh LOD ladder: level 0 is the input, level `l`
/// targets `num_tris >> l`, each with a measured build cost.
#[derive(Debug, Clone)]
pub struct TriLadder {
    levels: Vec<TriMesh>,
    costs: Vec<LodCost>,
}

impl TriLadder {
    pub fn build(mesh: &TriMesh, max_level: u8) -> TriLadder {
        let mut levels = vec![mesh.clone()];
        let mut costs = vec![LodCost { level: 0, cells: mesh.num_tris(), build_seconds: 0.0 }];
        for l in 1..=max_level {
            let t0 = Instant::now();
            let m = decimate_tris(mesh, mesh.num_tris() >> l);
            let dt = t0.elapsed().as_secs_f64();
            costs.push(LodCost { level: l, cells: m.num_tris(), build_seconds: dt });
            levels.push(m);
        }
        TriLadder { levels, costs }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Mesh at `level`, clamped to the deepest available rung.
    pub fn level(&self, level: u8) -> &TriMesh {
        &self.levels[(level as usize).min(self.levels.len() - 1)]
    }

    pub fn costs(&self) -> &[LodCost] {
        &self.costs
    }
}

/// [`TriLadder`] for tetrahedral meshes.
#[derive(Debug, Clone)]
pub struct TetLadder {
    levels: Vec<TetMesh>,
    costs: Vec<LodCost>,
}

impl TetLadder {
    pub fn build(mesh: &TetMesh, max_level: u8) -> TetLadder {
        let mut levels = vec![mesh.clone()];
        let mut costs = vec![LodCost { level: 0, cells: mesh.num_tets(), build_seconds: 0.0 }];
        for l in 1..=max_level {
            let t0 = Instant::now();
            let m = decimate_tets(mesh, mesh.num_tets() >> l);
            let dt = t0.elapsed().as_secs_f64();
            costs.push(LodCost { level: l, cells: m.num_tets(), build_seconds: dt });
            levels.push(m);
        }
        TetLadder { levels, costs }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn level(&self, level: u8) -> &TetMesh {
        &self.levels[(level as usize).min(self.levels.len() - 1)]
    }

    pub fn costs(&self) -> &[LodCost] {
        &self.costs
    }
}

/// [`TriLadder`] for uniform grids: level `l` is a `2^l`-coarser grid.
#[derive(Debug, Clone)]
pub struct GridLadder {
    levels: Vec<UniformGrid>,
    costs: Vec<LodCost>,
}

impl GridLadder {
    pub fn build(grid: &UniformGrid, max_level: u8) -> GridLadder {
        let mut levels = vec![grid.clone()];
        let mut costs = vec![LodCost { level: 0, cells: grid.num_cells(), build_seconds: 0.0 }];
        for l in 1..=max_level {
            let t0 = Instant::now();
            let g = coarsen_grid(grid, 1 << l);
            let dt = t0.elapsed().as_secs_f64();
            costs.push(LodCost { level: l, cells: g.num_cells(), build_seconds: dt });
            levels.push(g);
        }
        GridLadder { levels, costs }
    }

    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    pub fn level(&self, level: u8) -> &UniformGrid {
        &self.levels[(level as usize).min(self.levels.len() - 1)]
    }

    pub fn costs(&self) -> &[LodCost] {
        &self.costs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{field_grid, FieldKind};
    use crate::isosurface::isosurface;
    use crate::unstructured::HexMesh;
    use vecmath::Aabb;

    fn sample_mesh() -> TriMesh {
        let grid = field_grid(FieldKind::Tangle, [14, 14, 14]);
        isosurface(&grid, "scalar", 0.0, Some("elevation"))
    }

    fn tri_bytes(m: &TriMesh) -> Vec<u32> {
        let mut v: Vec<u32> =
            m.points.iter().flat_map(|p| [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]).collect();
        v.extend(m.scalars.iter().map(|s| s.to_bits()));
        v.extend(m.tris.iter().flatten().copied());
        v
    }

    #[test]
    fn decimation_reduces_and_is_deterministic() {
        let m = sample_mesh();
        assert!(m.num_tris() > 100);
        let a = decimate_tris(&m, m.num_tris() / 2);
        let b = decimate_tris(&m, m.num_tris() / 2);
        assert!(a.num_tris() <= m.num_tris() / 2, "{} vs {}", a.num_tris(), m.num_tris());
        assert!(a.num_tris() > 0);
        assert_eq!(tri_bytes(&a), tri_bytes(&b), "same mesh + level must be bit-identical");
        // Scalars follow the vertices.
        assert_eq!(a.scalars.len(), a.points.len());
        // Decimated bounds stay inside (a hair around) the input bounds.
        let (ib, db) = (m.bounds(), a.bounds());
        assert!(db.min.x >= ib.min.x - 1e-4 && db.max.x <= ib.max.x + 1e-4);
    }

    #[test]
    fn tri_ladder_is_monotone_with_cost_table() {
        let m = sample_mesh();
        let ladder = TriLadder::build(&m, 2);
        assert_eq!(ladder.num_levels(), 3);
        let cells: Vec<usize> = ladder.costs().iter().map(|c| c.cells).collect();
        assert!(cells[1] <= cells[0] && cells[2] <= cells[1], "{cells:?}");
        assert!(cells[2] <= m.num_tris() / 4 + 1);
        assert!(ladder.costs()[1].build_seconds >= 0.0);
        // Clamping past the deepest rung returns the deepest rung.
        assert_eq!(ladder.level(9).num_tris(), ladder.level(2).num_tris());
    }

    #[test]
    fn tet_decimation_carries_fields() {
        let g = UniformGrid::new([6, 6, 6], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        let mut h = HexMesh::from_uniform_grid(&g);
        h.fields
            .push(crate::field::Field::cell("rho", (0..h.num_hexes()).map(|i| i as f32).collect()));
        h.fields.push(crate::field::Field::point(
            "e",
            (0..h.points.len()).map(|i| i as f32 * 0.25).collect(),
        ));
        let tets = h.to_tets();
        let dec = decimate_tets(&tets, tets.num_tets() / 2);
        assert!(dec.num_tets() <= tets.num_tets() / 2);
        assert!(dec.num_tets() > 0);
        let rho = dec.field("rho").unwrap();
        assert_eq!(rho.values.len(), dec.num_tets());
        let e = dec.field("e").unwrap();
        assert_eq!(e.values.len(), dec.points.len());
        // Determinism.
        let again = decimate_tets(&tets, tets.num_tets() / 2);
        assert_eq!(dec.tets, again.tets);
        assert_eq!(
            dec.points.iter().map(|p| p.x.to_bits()).collect::<Vec<_>>(),
            again.points.iter().map(|p| p.x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn grid_coarsening_halves_axes_and_averages() {
        let mut g = UniformGrid::new([8, 8, 8], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        g.add_point_field("f", |p| p.x);
        let c = coarsen_grid(&g, 2);
        assert_eq!(c.cell_dims(), [4, 4, 4]);
        // Bounds are preserved.
        assert!((c.bounds().max - g.bounds().max).length() < 1e-6);
        // A linear field block-averages to (roughly) itself shifted half a
        // fine cell — still monotone along x.
        let f = &c.field("f").unwrap().values;
        assert!(f[1] > f[0]);
        let ladder = GridLadder::build(&g, 2);
        assert_eq!(ladder.level(2).cell_dims(), [2, 2, 2]);
        assert_eq!(ladder.costs()[2].cells, 8);
        // Never coarser than one cell per axis.
        let tiny = coarsen_grid(ladder.level(2), 4);
        assert_eq!(tiny.cell_dims(), [1, 1, 1]);
    }
}
