//! Unstructured meshes: tetrahedra (volume rendering, Chapter III), hexahedra
//! (LULESH-style Lagrangian meshes), and triangle soups (ray tracing and
//! rasterization geometry, Chapter II).

use crate::field::{find, Field};
use crate::structured::UniformGrid;
use vecmath::{Aabb, Vec3};

/// Triangle surface mesh with optional per-vertex scalars for pseudocoloring.
#[derive(Debug, Clone, Default)]
pub struct TriMesh {
    pub points: Vec<Vec3>,
    pub tris: Vec<[u32; 3]>,
    /// Per-vertex scalar (same length as `points`) or empty.
    pub scalars: Vec<f32>,
}

impl TriMesh {
    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    pub fn num_tris(&self) -> usize {
        self.tris.len()
    }

    /// Vertices of triangle `t`.
    #[inline]
    pub fn tri_points(&self, t: usize) -> [Vec3; 3] {
        let [a, b, c] = self.tris[t];
        [self.points[a as usize], self.points[b as usize], self.points[c as usize]]
    }

    /// Geometric (unnormalized) normal of triangle `t`.
    #[inline]
    pub fn tri_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.tri_points(t);
        (b - a).cross(c - a)
    }

    /// Scalar range over vertices (0..=1 fallback if no scalars).
    pub fn scalar_range(&self) -> (f32, f32) {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &s in &self.scalars {
            if s.is_finite() {
                lo = lo.min(s);
                hi = hi.max(s);
            }
        }
        if lo <= hi {
            (lo, hi)
        } else {
            (0.0, 1.0)
        }
    }

    /// Append another mesh (indices rebased).
    pub fn append(&mut self, o: &TriMesh) {
        let base = self.points.len() as u32;
        self.points.extend_from_slice(&o.points);
        self.scalars.extend_from_slice(&o.scalars);
        self.tris.extend(o.tris.iter().map(|t| [t[0] + base, t[1] + base, t[2] + base]));
    }
}

/// Tetrahedral mesh with point and/or cell fields.
#[derive(Debug, Clone, Default)]
pub struct TetMesh {
    pub points: Vec<Vec3>,
    pub tets: Vec<[u32; 4]>,
    pub fields: Vec<Field>,
}

impl TetMesh {
    pub fn num_tets(&self) -> usize {
        self.tets.len()
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    #[inline]
    pub fn tet_points(&self, t: usize) -> [Vec3; 4] {
        let ix = self.tets[t];
        [
            self.points[ix[0] as usize],
            self.points[ix[1] as usize],
            self.points[ix[2] as usize],
            self.points[ix[3] as usize],
        ]
    }

    /// Signed volume of tet `t` (positive for right-handed orientation).
    pub fn tet_volume(&self, t: usize) -> f32 {
        let [a, b, c, d] = self.tet_points(t);
        (b - a).cross(c - a).dot(d - a) / 6.0
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        find(&self.fields, name)
    }
}

/// Hexahedral mesh in VTK vertex ordering (bottom quad 0-1-2-3 counter-
/// clockwise, top quad 4-5-6-7 above it).
#[derive(Debug, Clone, Default)]
pub struct HexMesh {
    pub points: Vec<Vec3>,
    pub hexes: Vec<[u32; 8]>,
    pub fields: Vec<Field>,
}

/// Decomposition of each hexahedron into 6 tetrahedra around its main
/// diagonal (v0-v6): a space-filling partition of the hex volume, used to
/// turn simulation meshes into the tetrahedral input of the unstructured
/// volume renderer (the paper decomposed Enzo and Nek5000 the same way).
pub const HEX_TO_TETS: [[usize; 4]; 6] =
    [[0, 1, 2, 6], [0, 2, 3, 6], [0, 3, 7, 6], [0, 7, 4, 6], [0, 4, 5, 6], [0, 5, 1, 6]];

impl HexMesh {
    pub fn num_hexes(&self) -> usize {
        self.hexes.len()
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_points(&self.points)
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        find(&self.fields, name)
    }

    /// Decompose into a tetrahedral mesh (points shared, fields carried:
    /// point fields as-is, cell fields replicated 6x per hex).
    pub fn to_tets(&self) -> TetMesh {
        let mut tets = Vec::with_capacity(self.hexes.len() * 6);
        for h in &self.hexes {
            for t in HEX_TO_TETS {
                tets.push([h[t[0]], h[t[1]], h[t[2]], h[t[3]]]);
            }
        }
        let fields = self
            .fields
            .iter()
            .map(|f| match f.assoc {
                crate::field::Assoc::Point => f.clone(),
                crate::field::Assoc::Cell => {
                    let mut v = Vec::with_capacity(f.values.len() * 6);
                    for &x in &f.values {
                        v.extend_from_slice(&[x; 6]);
                    }
                    Field::cell(f.name.clone(), v)
                }
            })
            .collect();
        TetMesh { points: self.points.clone(), tets, fields }
    }

    /// Build a structured-connectivity hex mesh covering a uniform grid
    /// (LULESH's mesh is logically structured but stored unstructured).
    pub fn from_uniform_grid(grid: &UniformGrid) -> HexMesh {
        let d = grid.dims;
        let mut points = Vec::with_capacity(grid.num_points());
        for k in 0..d[2] {
            for j in 0..d[1] {
                for i in 0..d[0] {
                    points.push(grid.point_position(i, j, k));
                }
            }
        }
        let c = grid.cell_dims();
        let mut hexes = Vec::with_capacity(grid.num_cells());
        let pid = |i: usize, j: usize, k: usize| ((k * d[1] + j) * d[0] + i) as u32;
        for k in 0..c[2] {
            for j in 0..c[1] {
                for i in 0..c[0] {
                    hexes.push([
                        pid(i, j, k),
                        pid(i + 1, j, k),
                        pid(i + 1, j + 1, k),
                        pid(i, j + 1, k),
                        pid(i, j, k + 1),
                        pid(i + 1, j, k + 1),
                        pid(i + 1, j + 1, k + 1),
                        pid(i, j + 1, k + 1),
                    ]);
                }
            }
        }
        HexMesh { points, hexes, fields: grid.fields.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_hex() -> HexMesh {
        let g = UniformGrid::new([1, 1, 1], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        HexMesh::from_uniform_grid(&g)
    }

    #[test]
    fn hex_decomposition_fills_volume() {
        let tets = unit_hex().to_tets();
        assert_eq!(tets.num_tets(), 6);
        let total: f32 = (0..6).map(|t| tets.tet_volume(t).abs()).sum();
        assert!((total - 1.0).abs() < 1e-5, "volume was {total}");
        // All tets non-degenerate.
        for t in 0..6 {
            assert!(tets.tet_volume(t).abs() > 1e-6);
        }
    }

    #[test]
    fn grid_hex_counts() {
        let g = UniformGrid::new([3, 2, 4], Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        let h = HexMesh::from_uniform_grid(&g);
        assert_eq!(h.num_hexes(), 24);
        assert_eq!(h.points.len(), 4 * 3 * 5);
        let t = h.to_tets();
        assert_eq!(t.num_tets(), 144);
        // Total decomposed volume equals the box volume.
        let total: f32 = (0..t.num_tets()).map(|i| t.tet_volume(i).abs()).sum();
        assert!((total - 1.0).abs() < 1e-4);
    }

    #[test]
    fn cell_fields_replicate_through_decomposition() {
        let mut h = unit_hex();
        h.fields.push(Field::cell("rho", vec![2.5]));
        let t = h.to_tets();
        let f = t.field("rho").unwrap();
        assert_eq!(f.values, vec![2.5; 6]);
    }

    #[test]
    fn trimesh_normals_and_append() {
        let mut m = TriMesh {
            points: vec![Vec3::ZERO, Vec3::X, Vec3::Y],
            tris: vec![[0, 1, 2]],
            scalars: vec![0.0, 0.5, 1.0],
        };
        assert!((m.tri_normal(0) - Vec3::Z).length() < 1e-6);
        let other = m.clone();
        m.append(&other);
        assert_eq!(m.num_tris(), 2);
        assert_eq!(m.tris[1], [3, 4, 5]);
        assert_eq!(m.scalar_range(), (0.0, 1.0));
    }
}
