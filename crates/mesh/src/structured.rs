//! Structured grids: uniform (Kripke-style) and rectilinear
//! (CloverLeaf3D-style). Point dimensions are stored; cell dimensions are
//! one less per axis.

use crate::field::{find, Assoc, Field};
use vecmath::{Aabb, Vec3};

/// A uniform (regular) grid: `dims` points per axis, constant spacing.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    /// Point counts per axis (>= 2 per axis for a non-degenerate grid).
    pub dims: [usize; 3],
    pub origin: Vec3,
    pub spacing: Vec3,
    pub fields: Vec<Field>,
}

impl UniformGrid {
    /// Grid over `bounds` with `cells` cells per axis.
    pub fn new(cells: [usize; 3], bounds: Aabb) -> UniformGrid {
        let dims = [cells[0] + 1, cells[1] + 1, cells[2] + 1];
        let e = bounds.extent();
        UniformGrid {
            dims,
            origin: bounds.min,
            spacing: Vec3::new(e.x / cells[0] as f32, e.y / cells[1] as f32, e.z / cells[2] as f32),
            fields: Vec::new(),
        }
    }

    pub fn num_points(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    pub fn cell_dims(&self) -> [usize; 3] {
        [self.dims[0] - 1, self.dims[1] - 1, self.dims[2] - 1]
    }

    pub fn num_cells(&self) -> usize {
        let c = self.cell_dims();
        c[0] * c[1] * c[2]
    }

    #[inline]
    pub fn point_index(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    #[inline]
    pub fn cell_index(&self, i: usize, j: usize, k: usize) -> usize {
        let c = self.cell_dims();
        (k * c[1] + j) * c[0] + i
    }

    #[inline]
    pub fn point_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        self.origin
            + Vec3::new(
                i as f32 * self.spacing.x,
                j as f32 * self.spacing.y,
                k as f32 * self.spacing.z,
            )
    }

    pub fn bounds(&self) -> Aabb {
        let c = self.cell_dims();
        Aabb::from_corners(
            self.origin,
            self.origin
                + Vec3::new(
                    c[0] as f32 * self.spacing.x,
                    c[1] as f32 * self.spacing.y,
                    c[2] as f32 * self.spacing.z,
                ),
        )
    }

    /// Fill a point field by evaluating `f` at every point position.
    pub fn add_point_field(&mut self, name: &str, f: impl Fn(Vec3) -> f32 + Sync) {
        let mut values = vec![0.0f32; self.num_points()];
        let dims = self.dims;
        let origin = self.origin;
        let spacing = self.spacing;
        // Parallel fill via rayon directly (generation is not a studied kernel).
        use rayon::prelude::*;
        values.par_chunks_mut(dims[0] * dims[1]).enumerate().for_each(|(k, slab)| {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let p = origin
                        + Vec3::new(
                            i as f32 * spacing.x,
                            j as f32 * spacing.y,
                            k as f32 * spacing.z,
                        );
                    slab[j * dims[0] + i] = f(p);
                }
            }
        });
        self.fields.push(Field { name: name.to_string(), assoc: Assoc::Point, values });
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        find(&self.fields, name)
    }

    /// Trilinear interpolation of a point field at a world position; `None`
    /// outside the grid bounds.
    pub fn sample_trilinear(&self, values: &[f32], p: Vec3) -> Option<f32> {
        let local = (p - self.origin) * self.spacing.recip();
        let c = self.cell_dims();
        if local.x < 0.0 || local.y < 0.0 || local.z < 0.0 {
            return None;
        }
        let i = (local.x as usize).min(c[0].saturating_sub(1));
        let j = (local.y as usize).min(c[1].saturating_sub(1));
        let k = (local.z as usize).min(c[2].saturating_sub(1));
        if local.x > c[0] as f32 || local.y > c[1] as f32 || local.z > c[2] as f32 {
            return None;
        }
        let fx = (local.x - i as f32).clamp(0.0, 1.0);
        let fy = (local.y - j as f32).clamp(0.0, 1.0);
        let fz = (local.z - k as f32).clamp(0.0, 1.0);
        let idx = |ii, jj, kk| values[self.point_index(ii, jj, kk)];
        let c00 = idx(i, j, k) * (1.0 - fx) + idx(i + 1, j, k) * fx;
        let c10 = idx(i, j + 1, k) * (1.0 - fx) + idx(i + 1, j + 1, k) * fx;
        let c01 = idx(i, j, k + 1) * (1.0 - fx) + idx(i + 1, j, k + 1) * fx;
        let c11 = idx(i, j + 1, k + 1) * (1.0 - fx) + idx(i + 1, j + 1, k + 1) * fx;
        let c0 = c00 * (1.0 - fy) + c10 * fy;
        let c1 = c01 * (1.0 - fy) + c11 * fy;
        Some(c0 * (1.0 - fz) + c1 * fz)
    }
}

/// A rectilinear grid: per-axis coordinate arrays, possibly non-uniform.
#[derive(Debug, Clone)]
pub struct RectilinearGrid {
    pub xs: Vec<f32>,
    pub ys: Vec<f32>,
    pub zs: Vec<f32>,
    pub fields: Vec<Field>,
}

impl RectilinearGrid {
    /// Uniformly spaced coordinates (a uniform grid stored rectilinearly,
    /// as CloverLeaf3D does).
    pub fn uniform(cells: [usize; 3], bounds: Aabb) -> RectilinearGrid {
        let axis = |n: usize, lo: f32, hi: f32| -> Vec<f32> {
            (0..=n).map(|i| lo + (hi - lo) * i as f32 / n as f32).collect()
        };
        RectilinearGrid {
            xs: axis(cells[0], bounds.min.x, bounds.max.x),
            ys: axis(cells[1], bounds.min.y, bounds.max.y),
            zs: axis(cells[2], bounds.min.z, bounds.max.z),
            fields: Vec::new(),
        }
    }

    pub fn dims(&self) -> [usize; 3] {
        [self.xs.len(), self.ys.len(), self.zs.len()]
    }

    pub fn num_points(&self) -> usize {
        self.xs.len() * self.ys.len() * self.zs.len()
    }

    pub fn num_cells(&self) -> usize {
        (self.xs.len() - 1) * (self.ys.len() - 1) * (self.zs.len() - 1)
    }

    pub fn bounds(&self) -> Aabb {
        Aabb::from_corners(
            Vec3::new(self.xs[0], self.ys[0], self.zs[0]),
            Vec3::new(*self.xs.last().unwrap(), *self.ys.last().unwrap(), *self.zs.last().unwrap()),
        )
    }

    pub fn point_position(&self, i: usize, j: usize, k: usize) -> Vec3 {
        Vec3::new(self.xs[i], self.ys[j], self.zs[k])
    }

    pub fn field(&self, name: &str) -> Option<&Field> {
        find(&self.fields, name)
    }

    /// Reinterpret as a uniform grid with the same point dims, copying
    /// fields verbatim. Exact when the axes are evenly spaced; for stretched
    /// axes use [`RectilinearGrid::resample_to_uniform`].
    pub fn to_uniform(&self) -> UniformGrid {
        let d = self.dims();
        let mut g = UniformGrid::new([d[0] - 1, d[1] - 1, d[2] - 1], self.bounds());
        g.fields = self.fields.clone();
        g
    }

    /// True if every axis is evenly spaced (within `tol` of the mean step).
    pub fn is_evenly_spaced(&self, tol: f32) -> bool {
        let even = |axis: &[f32]| {
            let n = axis.len() - 1;
            let mean = (axis[n] - axis[0]) / n as f32;
            axis.windows(2).all(|w| ((w[1] - w[0]) - mean).abs() <= tol * mean.abs().max(1e-12))
        };
        even(&self.xs) && even(&self.ys) && even(&self.zs)
    }

    /// Index of the interval containing `x` on a sorted axis, clamped.
    fn axis_interval(axis: &[f32], x: f32) -> (usize, f32) {
        let n = axis.len();
        if x <= axis[0] {
            return (0, 0.0);
        }
        if x >= axis[n - 1] {
            return (n - 2, 1.0);
        }
        // Binary search for the upper bound.
        let i = axis.partition_point(|&v| v <= x).clamp(1, n - 1) - 1;
        let w = axis[i + 1] - axis[i];
        let t = if w > 0.0 { (x - axis[i]) / w } else { 0.0 };
        (i, t)
    }

    /// Trilinear interpolation of a point field at a world position,
    /// respecting non-uniform axis spacing; `None` outside the bounds.
    pub fn sample_trilinear(&self, values: &[f32], p: Vec3) -> Option<f32> {
        let b = self.bounds();
        if !b.contains(p) {
            return None;
        }
        let (i, fx) = Self::axis_interval(&self.xs, p.x);
        let (j, fy) = Self::axis_interval(&self.ys, p.y);
        let (k, fz) = Self::axis_interval(&self.zs, p.z);
        let d = self.dims();
        let idx = |ii: usize, jj: usize, kk: usize| values[(kk * d[1] + jj) * d[0] + ii];
        let c00 = idx(i, j, k) * (1.0 - fx) + idx(i + 1, j, k) * fx;
        let c10 = idx(i, j + 1, k) * (1.0 - fx) + idx(i + 1, j + 1, k) * fx;
        let c01 = idx(i, j, k + 1) * (1.0 - fx) + idx(i + 1, j, k + 1) * fx;
        let c11 = idx(i, j + 1, k + 1) * (1.0 - fx) + idx(i + 1, j + 1, k + 1) * fx;
        let c0 = c00 * (1.0 - fy) + c10 * fy;
        let c1 = c01 * (1.0 - fy) + c11 * fy;
        Some(c0 * (1.0 - fz) + c1 * fz)
    }

    /// Properly resample point fields onto a uniform grid of the given cell
    /// counts (for renderers that need constant spacing when the axes are
    /// stretched). Cell fields are dropped — resampling them needs a point
    /// conversion first.
    pub fn resample_to_uniform(&self, cells: [usize; 3]) -> UniformGrid {
        let mut out = UniformGrid::new(cells, self.bounds());
        let point_fields: Vec<&Field> =
            self.fields.iter().filter(|f| f.assoc == Assoc::Point).collect();
        for f in point_fields {
            let dims = out.dims;
            let mut values = vec![0.0f32; out.num_points()];
            for k in 0..dims[2] {
                for j in 0..dims[1] {
                    for i in 0..dims[0] {
                        let p = out.point_position(i, j, k);
                        values[(k * dims[1] + j) * dims[0] + i] =
                            self.sample_trilinear(&f.values, p).unwrap_or(0.0);
                    }
                }
            }
            out.fields.push(Field::point(f.name.clone(), values));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(cells: usize) -> UniformGrid {
        UniformGrid::new([cells; 3], Aabb::from_corners(Vec3::ZERO, Vec3::ONE))
    }

    #[test]
    fn counts_and_bounds() {
        let g = unit_grid(4);
        assert_eq!(g.dims, [5, 5, 5]);
        assert_eq!(g.num_points(), 125);
        assert_eq!(g.num_cells(), 64);
        let b = g.bounds();
        assert!((b.max - Vec3::ONE).length() < 1e-5);
    }

    #[test]
    fn point_positions_cover_corners() {
        let g = unit_grid(2);
        assert_eq!(g.point_position(0, 0, 0), Vec3::ZERO);
        assert!((g.point_position(2, 2, 2) - Vec3::ONE).length() < 1e-6);
    }

    #[test]
    fn trilinear_reproduces_linear_field() {
        let mut g = unit_grid(4);
        g.add_point_field("f", |p| 2.0 * p.x + 3.0 * p.y - p.z);
        let f = g.field("f").unwrap().values.clone();
        for &(x, y, z) in &[(0.1, 0.9, 0.3), (0.5, 0.5, 0.5), (0.99, 0.01, 0.7)] {
            let p = Vec3::new(x, y, z);
            let s = g.sample_trilinear(&f, p).unwrap();
            assert!((s - (2.0 * x + 3.0 * y - z)).abs() < 1e-4, "at {p:?}: {s}");
        }
        assert!(g.sample_trilinear(&f, Vec3::splat(2.0)).is_none());
        assert!(g.sample_trilinear(&f, Vec3::splat(-0.1)).is_none());
    }

    #[test]
    fn rectilinear_sampling_respects_stretched_axes() {
        // Stretched x axis; field f = x so interpolation must be exact in
        // world space, not index space.
        let mut r = RectilinearGrid {
            xs: vec![0.0, 0.1, 1.0, 10.0],
            ys: vec![0.0, 1.0, 2.0],
            zs: vec![0.0, 1.0, 2.0],
            fields: Vec::new(),
        };
        let mut vals = Vec::new();
        for k in 0..3 {
            for j in 0..3 {
                for i in 0..4 {
                    let _ = (j, k);
                    vals.push(r.xs[i]);
                }
            }
        }
        r.fields.push(Field { name: "fx".into(), assoc: Assoc::Point, values: vals });
        let f = &r.fields[0].values;
        for &x in &[0.05f32, 0.5, 3.7, 9.9] {
            let s = r.sample_trilinear(f, Vec3::new(x, 1.0, 1.0)).unwrap();
            assert!((s - x).abs() < 1e-4, "{s} vs {x}");
        }
        assert!(r.sample_trilinear(f, Vec3::new(11.0, 1.0, 1.0)).is_none());
        assert!(!r.is_evenly_spaced(0.01));
        let u = r.resample_to_uniform([8, 2, 2]);
        let uf = &u.field("fx").unwrap().values;
        // Resampled field still equals x at uniform sample points.
        let probe = u.sample_trilinear(uf, Vec3::new(5.0, 1.0, 1.0)).unwrap();
        assert!((probe - 5.0).abs() < 0.05, "{probe}");
    }

    #[test]
    fn evenly_spaced_detection() {
        let b = Aabb::from_corners(Vec3::ZERO, Vec3::ONE);
        let r = RectilinearGrid::uniform([4, 4, 4], b);
        assert!(r.is_evenly_spaced(1e-5));
    }

    #[test]
    fn rectilinear_uniform_matches() {
        let b = Aabb::from_corners(Vec3::ZERO, Vec3::new(2.0, 4.0, 8.0));
        let r = RectilinearGrid::uniform([2, 4, 8], b);
        assert_eq!(r.dims(), [3, 5, 9]);
        assert_eq!(r.num_cells(), 2 * 4 * 8);
        assert!((r.point_position(1, 1, 1) - Vec3::new(1.0, 1.0, 1.0)).length() < 1e-5);
        let u = r.to_uniform();
        assert_eq!(u.num_cells(), r.num_cells());
        assert!((u.bounds().max - b.max).length() < 1e-5);
    }
}
