//! Object-space partitioning: recursive longest-axis bisection over cell
//! centroids.
//!
//! Every distributed-data path in the workspace — per-rank rendering, the
//! rebalancing controller, the migration accounting — consumes a
//! [`Partition`] built here. The assignment vector is deliberately private
//! and the one escape hatch ([`Partition::from_assignments`]) is banned by
//! xlint X011 outside this module, so a per-rank cell assignment can only
//! come from the deterministic bisection below: single source of truth.
//!
//! The bisection is *weighted*: cells carry a cost (uniform by default,
//! measured per-cell seconds when the rebalancer recomputes split planes),
//! and each recursive split places the plane at the weighted median along
//! the longest axis of the current cell set's centroid bounds. Rank counts
//! need not be powers of two — an uneven split hands `⌊p/2⌋` ranks to the
//! left side and sizes its weight share proportionally. The resulting
//! per-rank regions are axis-aligned boxes of *centroids*, but the cells
//! themselves may straddle box faces, so partitions are non-convex in
//! general — compositing correctness never depends on convexity (the DFB
//! suffix fold is order-fixed by rank, not by depth sorting of domains).

use crate::field::Assoc;
use crate::structured::UniformGrid;
use crate::unstructured::{HexMesh, TetMesh, TriMesh};
use std::collections::BTreeMap;
use vecmath::Vec3;

/// A per-rank assignment of cells, produced by recursive longest-axis
/// bisection. Construction is confined to this module (see the module docs);
/// consumers read assignments, never write them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `assignments[cell] = rank`. Private: the bisection owns this.
    assignments: Vec<u32>,
    ranks: usize,
}

/// Cells that change rank between two partitions over the same cell set,
/// aggregated per directed link — the unit the event clock charges migration
/// traffic in.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Migration {
    /// `(from_rank, to_rank) -> cells moved`. BTreeMap: link iteration order
    /// must be deterministic for the clock replay.
    pub per_link: BTreeMap<(u32, u32), usize>,
}

impl Migration {
    /// Total cells that changed rank.
    pub fn moved_cells(&self) -> usize {
        self.per_link.values().sum()
    }

    /// Total payload at `bytes_per_cell` per moved cell.
    pub fn bytes(&self, bytes_per_cell: u64) -> u64 {
        self.moved_cells() as u64 * bytes_per_cell
    }
}

impl Partition {
    /// Unweighted recursive longest-axis bisection: every cell costs 1.
    pub fn bisect(centroids: &[Vec3], ranks: usize) -> Partition {
        Partition::weighted_bisect(centroids, &vec![1.0; centroids.len()], ranks)
    }

    /// Weighted recursive longest-axis bisection. `weights[cell]` is the
    /// cell's cost (non-finite or negative weights count as 0); each split
    /// plane sits at the weighted median along the longest centroid-bounds
    /// axis, with ties broken by cell index so the result is a pure function
    /// of `(centroids, weights, ranks)`.
    ///
    /// Every cell is assigned to exactly one rank. When `cells >= ranks`
    /// every rank receives at least one cell; with fewer cells than ranks
    /// the trailing ranks own empty (but still valid) domains.
    pub fn weighted_bisect(centroids: &[Vec3], weights: &[f64], ranks: usize) -> Partition {
        let ranks = ranks.max(1);
        assert_eq!(centroids.len(), weights.len(), "one weight per cell");
        let mut assignments = vec![0u32; centroids.len()];
        let mut cells: Vec<u32> = (0..centroids.len() as u32).collect();
        bisect_rec(centroids, weights, &mut cells, 0, ranks, &mut assignments);
        Partition { assignments, ranks }
    }

    /// Escape hatch for synthetic assignments (deliberately skewed layouts
    /// in experiments, adversarial cases in tests). xlint X011 bans calls
    /// outside `mesh::partition` in the byte-pinned crates: everything that
    /// feeds pinned pixels must go through the bisection.
    pub fn from_assignments(assignments: Vec<u32>, ranks: usize) -> Partition {
        let ranks = ranks.max(1);
        assert!(
            assignments.iter().all(|&r| (r as usize) < ranks),
            "assignment out of range for {ranks} ranks"
        );
        Partition { assignments, ranks }
    }

    pub fn ranks(&self) -> usize {
        self.ranks
    }

    pub fn num_cells(&self) -> usize {
        self.assignments.len()
    }

    /// Owning rank of `cell`.
    pub fn rank_of(&self, cell: usize) -> usize {
        self.assignments[cell] as usize
    }

    /// Read-only view of the full assignment vector.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Cells per rank.
    pub fn counts(&self) -> Vec<usize> {
        let mut c = vec![0usize; self.ranks];
        for &r in &self.assignments {
            c[r as usize] += 1;
        }
        c
    }

    /// Cell indices owned by `rank`, ascending.
    pub fn cells_of(&self, rank: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r as usize == rank)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-rank weight totals under `weights`.
    pub fn rank_weights(&self, weights: &[f64]) -> Vec<f64> {
        let mut w = vec![0.0f64; self.ranks];
        for (i, &r) in self.assignments.iter().enumerate() {
            w[r as usize] += sane_weight(weights[i]);
        }
        w
    }

    /// The migration that turns `self` into `to`: every cell whose rank
    /// differs, aggregated per `(from, to)` link. Both partitions must cover
    /// the same cell set.
    pub fn migration(&self, to: &Partition) -> Migration {
        assert_eq!(self.num_cells(), to.num_cells(), "partitions cover different cell sets");
        let mut per_link = BTreeMap::new();
        for (a, b) in self.assignments.iter().zip(to.assignments.iter()) {
            if a != b {
                *per_link.entry((*a, *b)).or_insert(0usize) += 1;
            }
        }
        Migration { per_link }
    }
}

fn sane_weight(w: f64) -> f64 {
    if w.is_finite() && w > 0.0 {
        w
    } else {
        0.0
    }
}

/// Assign `cells` (indices into `centroids`) to ranks `[rank_base,
/// rank_base + ranks)` by recursive bisection.
fn bisect_rec(
    centroids: &[Vec3],
    weights: &[f64],
    cells: &mut [u32],
    rank_base: usize,
    ranks: usize,
    assignments: &mut [u32],
) {
    if ranks == 1 || cells.len() <= 1 {
        // One rank left (or nothing to split): everything lands on the
        // lowest rank of the range; surplus ranks own empty domains.
        for &c in cells.iter() {
            assignments[c as usize] = rank_base as u32;
        }
        return;
    }
    // Longest axis of the centroid bounds of *this* cell subset.
    let mut lo = Vec3::splat(f32::INFINITY);
    let mut hi = Vec3::splat(f32::NEG_INFINITY);
    for &c in cells.iter() {
        let p = centroids[c as usize];
        lo = lo.min(p);
        hi = hi.max(p);
    }
    let ext = hi - lo;
    let axis = if ext.x >= ext.y && ext.x >= ext.z {
        0
    } else if ext.y >= ext.z {
        1
    } else {
        2
    };
    let coord = |c: u32| -> f32 {
        let p = centroids[c as usize];
        match axis {
            0 => p.x,
            1 => p.y,
            _ => p.z,
        }
    };
    // Deterministic total order: coordinate bits, then cell index.
    cells.sort_unstable_by(|&a, &b| coord(a).total_cmp(&coord(b)).then(a.cmp(&b)));

    let left_ranks = ranks / 2;
    let right_ranks = ranks - left_ranks;
    let total: f64 = cells.iter().map(|&c| sane_weight(weights[c as usize])).sum();
    let target = total * left_ranks as f64 / ranks as f64;
    // Weighted median: smallest prefix reaching the left share.
    let mut acc = 0.0f64;
    let mut split = cells.len();
    for (i, &c) in cells.iter().enumerate() {
        acc += sane_weight(weights[c as usize]);
        if acc >= target {
            split = i + 1;
            break;
        }
    }
    // Keep both sides non-empty, and when there are enough cells guarantee
    // each side at least as many cells as ranks (so no rank starves merely
    // because the weights are skewed).
    let min_left = left_ranks.min(cells.len().saturating_sub(right_ranks)).max(1);
    let max_left =
        cells.len().saturating_sub(right_ranks.min(cells.len() - min_left)).max(min_left);
    let split = split.clamp(min_left, max_left);

    let (l, r) = cells.split_at_mut(split);
    bisect_rec(centroids, weights, l, rank_base, left_ranks, assignments);
    bisect_rec(centroids, weights, r, rank_base + left_ranks, right_ranks, assignments);
}

/// Per-triangle centroids of a triangle mesh.
pub fn tri_centroids(mesh: &TriMesh) -> Vec<Vec3> {
    (0..mesh.num_tris())
        .map(|t| {
            let [a, b, c] = mesh.tri_points(t);
            (a + b + c) / 3.0
        })
        .collect()
}

/// Per-tet centroids.
pub fn tet_centroids(mesh: &TetMesh) -> Vec<Vec3> {
    (0..mesh.num_tets())
        .map(|t| {
            let [a, b, c, d] = mesh.tet_points(t);
            (a + b + c + d) / 4.0
        })
        .collect()
}

/// Per-hex centroids (mean of the 8 corners).
pub fn hex_centroids(mesh: &HexMesh) -> Vec<Vec3> {
    mesh.hexes
        .iter()
        .map(|h| {
            let mut s = Vec3::ZERO;
            for &v in h {
                s += mesh.points[v as usize];
            }
            s / 8.0
        })
        .collect()
}

/// Cell centers of a uniform grid, in the grid's canonical cell order
/// (i fastest, then j, then k — matching cell-field layout).
pub fn grid_cell_centroids(grid: &UniformGrid) -> Vec<Vec3> {
    let c = grid.cell_dims();
    let mut out = Vec::with_capacity(grid.num_cells());
    for k in 0..c[2] {
        for j in 0..c[1] {
            for i in 0..c[0] {
                let p = grid.point_position(i, j, k);
                let q = grid.point_position(i + 1, j + 1, k + 1);
                out.push((p + q) * 0.5);
            }
        }
    }
    out
}

/// Extract the sub-mesh of `cells` (triangle indices, any order; output
/// follows the given order). Points are compacted first-use; geometry and
/// scalars are copied bit-exactly, so a partitioned render sees the same
/// floats the whole-mesh render does.
pub fn extract_tris(mesh: &TriMesh, cells: &[usize]) -> TriMesh {
    let mut remap: Vec<u32> = vec![u32::MAX; mesh.points.len()];
    let mut out = TriMesh::default();
    for &t in cells {
        let tri = mesh.tris[t];
        let mut new_tri = [0u32; 3];
        for (slot, &v) in new_tri.iter_mut().zip(tri.iter()) {
            let v = v as usize;
            if remap[v] == u32::MAX {
                remap[v] = out.points.len() as u32;
                out.points.push(mesh.points[v]);
                if !mesh.scalars.is_empty() {
                    out.scalars.push(mesh.scalars[v]);
                }
            }
            *slot = remap[v];
        }
        out.tris.push(new_tri);
    }
    out
}

/// [`extract_tris`] for tetrahedral meshes; point fields follow the point
/// compaction, cell fields the cell selection.
pub fn extract_tets(mesh: &TetMesh, cells: &[usize]) -> TetMesh {
    let mut remap: Vec<u32> = vec![u32::MAX; mesh.points.len()];
    let mut out = TetMesh::default();
    let mut kept_points: Vec<usize> = Vec::new();
    for &t in cells {
        let tet = mesh.tets[t];
        let mut new_tet = [0u32; 4];
        for (slot, &v) in new_tet.iter_mut().zip(tet.iter()) {
            let v = v as usize;
            if remap[v] == u32::MAX {
                remap[v] = out.points.len() as u32;
                out.points.push(mesh.points[v]);
                kept_points.push(v);
            }
            *slot = remap[v];
        }
        out.tets.push(new_tet);
    }
    out.fields = mesh
        .fields
        .iter()
        .map(|f| {
            let mut g = f.clone();
            g.values = match f.assoc {
                Assoc::Point => kept_points.iter().map(|&p| f.values[p]).collect(),
                Assoc::Cell => cells.iter().map(|&c| f.values[c]).collect(),
            };
            g
        })
        .collect();
    out
}

/// [`extract_tets`] for hex meshes.
pub fn extract_hexes(mesh: &HexMesh, cells: &[usize]) -> HexMesh {
    let mut remap: Vec<u32> = vec![u32::MAX; mesh.points.len()];
    let mut out = HexMesh::default();
    let mut kept_points: Vec<usize> = Vec::new();
    for &h in cells {
        let hex = mesh.hexes[h];
        let mut new_hex = [0u32; 8];
        for (slot, &v) in new_hex.iter_mut().zip(hex.iter()) {
            let v = v as usize;
            if remap[v] == u32::MAX {
                remap[v] = out.points.len() as u32;
                out.points.push(mesh.points[v]);
                kept_points.push(v);
            }
            *slot = remap[v];
        }
        out.hexes.push(new_hex);
    }
    out.fields = mesh
        .fields
        .iter()
        .map(|f| {
            let mut g = f.clone();
            g.values = match f.assoc {
                Assoc::Point => kept_points.iter().map(|&p| f.values[p]).collect(),
                Assoc::Cell => cells.iter().map(|&c| f.values[c]).collect(),
            };
            g
        })
        .collect();
    out
}

/// Split a triangle mesh into one sub-mesh per rank of `part`.
pub fn partitioned_tris(mesh: &TriMesh, part: &Partition) -> Vec<TriMesh> {
    assert_eq!(mesh.num_tris(), part.num_cells());
    (0..part.ranks()).map(|r| extract_tris(mesh, &part.cells_of(r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{field_grid, FieldKind};
    use crate::isosurface::isosurface;

    fn cloud(n: usize, seed: u64) -> Vec<Vec3> {
        // Deterministic xorshift point cloud.
        let mut s = seed | 1;
        let mut rnd = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f32 / (1u64 << 53) as f32 * 8192.0
        };
        (0..n).map(|_| Vec3::new(rnd(), rnd(), rnd())).collect()
    }

    #[test]
    fn every_cell_assigned_exactly_once() {
        for ranks in [1usize, 2, 3, 5, 8, 64] {
            let c = cloud(500, 42);
            let p = Partition::bisect(&c, ranks);
            assert_eq!(p.num_cells(), 500);
            assert_eq!(p.counts().iter().sum::<usize>(), 500);
            assert!(p.counts().iter().all(|&n| n > 0), "{ranks}: {:?}", p.counts());
            // Near-balanced for uniform weights.
            let max = *p.counts().iter().max().unwrap();
            let min = *p.counts().iter().min().unwrap();
            assert!(max - min <= ranks, "{ranks}: spread {min}..{max}");
        }
    }

    #[test]
    fn bisection_is_deterministic() {
        let c = cloud(300, 7);
        let a = Partition::bisect(&c, 6);
        let b = Partition::bisect(&c, 6);
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_bisection_balances_weight_not_count() {
        // Weight doubles along x: the weighted split must put fewer cells in
        // the heavy half.
        let n = 400;
        let c: Vec<Vec3> = (0..n).map(|i| Vec3::new(i as f32, 0.0, 0.0)).collect();
        let w: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 3.0 }).collect();
        let p = Partition::weighted_bisect(&c, &w, 2);
        let rw = p.rank_weights(&w);
        let total: f64 = rw.iter().sum();
        assert!((rw[0] / total - 0.5).abs() < 0.02, "{rw:?}");
        let counts = p.counts();
        assert!(counts[0] > counts[1], "{counts:?}");
    }

    #[test]
    fn fewer_cells_than_ranks_leaves_empty_tails() {
        let c = cloud(3, 9);
        let p = Partition::bisect(&c, 8);
        assert_eq!(p.counts().iter().sum::<usize>(), 3);
        assert_eq!(p.counts().iter().filter(|&&n| n > 0).count(), 3);
    }

    #[test]
    fn degenerate_weights_are_ignored() {
        let c = cloud(64, 3);
        let mut w = vec![1.0; 64];
        w[0] = f64::NAN;
        w[1] = -5.0;
        w[2] = f64::INFINITY;
        let p = Partition::weighted_bisect(&c, &w, 4);
        assert_eq!(p.counts().iter().sum::<usize>(), 64);
    }

    #[test]
    fn migration_counts_changed_cells_per_link() {
        let a = Partition::from_assignments(vec![0, 0, 1, 1], 2);
        let b = Partition::from_assignments(vec![0, 1, 1, 0], 2);
        let m = a.migration(&b);
        assert_eq!(m.moved_cells(), 2);
        assert_eq!(m.per_link.get(&(0, 1)), Some(&1));
        assert_eq!(m.per_link.get(&(1, 0)), Some(&1));
        assert_eq!(m.bytes(100), 200);
        assert_eq!(a.migration(&a).moved_cells(), 0);
    }

    #[test]
    fn extraction_preserves_geometry_bits_and_fields() {
        let grid = field_grid(FieldKind::Tangle, [10, 10, 10]);
        let mesh = isosurface(&grid, "scalar", 0.0, Some("elevation"));
        let part = Partition::bisect(&tri_centroids(&mesh), 3);
        let subs = partitioned_tris(&mesh, &part);
        assert_eq!(subs.iter().map(|m| m.num_tris()).sum::<usize>(), mesh.num_tris());
        // Every triangle's points and scalars survive bit-exactly.
        for (r, sub) in subs.iter().enumerate() {
            for (local, &global) in part.cells_of(r).iter().enumerate() {
                let a = sub.tri_points(local);
                let b = mesh.tri_points(global);
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.x.to_bits(), y.x.to_bits());
                    assert_eq!(x.y.to_bits(), y.y.to_bits());
                    assert_eq!(x.z.to_bits(), y.z.to_bits());
                }
            }
        }
    }

    #[test]
    fn hex_extraction_carries_cell_and_point_fields() {
        let g =
            crate::UniformGrid::new([4, 4, 4], vecmath::Aabb::from_corners(Vec3::ZERO, Vec3::ONE));
        let mut h = HexMesh::from_uniform_grid(&g);
        h.fields.push(crate::Field::cell("rho", (0..64).map(|i| i as f32).collect()));
        h.fields
            .push(crate::Field::point("e", (0..h.points.len()).map(|i| i as f32 * 0.5).collect()));
        let part = Partition::bisect(&hex_centroids(&h), 4);
        for r in 0..4 {
            let cells = part.cells_of(r);
            let sub = extract_hexes(&h, &cells);
            assert_eq!(sub.num_hexes(), cells.len());
            let rho = sub.field("rho").unwrap();
            for (i, &c) in cells.iter().enumerate() {
                assert_eq!(rho.values[i], c as f32);
            }
            // Point fields follow the compaction: spot-check corner values.
            let e = sub.field("e").unwrap();
            assert_eq!(e.values.len(), sub.points.len());
        }
        // Tet extraction mirrors hex extraction.
        let tets = h.to_tets();
        let tpart = Partition::bisect(&tet_centroids(&tets), 3);
        let sub = extract_tets(&tets, &tpart.cells_of(0));
        assert_eq!(sub.field("rho").unwrap().values.len(), sub.num_tets());
    }

    #[test]
    fn grid_centroids_match_cell_layout() {
        let g = crate::UniformGrid::new(
            [2, 3, 4],
            vecmath::Aabb::from_corners(Vec3::ZERO, Vec3::new(2.0, 3.0, 4.0)),
        );
        let c = grid_cell_centroids(&g);
        assert_eq!(c.len(), g.num_cells());
        assert_eq!(c[0], Vec3::new(0.5, 0.5, 0.5));
        // i runs fastest.
        assert_eq!(c[1], Vec3::new(1.5, 0.5, 0.5));
    }
}
