//! Named scalar fields attached to mesh points or cells.

/// Whether field values live on mesh points or cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assoc {
    Point,
    Cell,
}

/// A named scalar field. Simulations publish these; renderers consume them.
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub assoc: Assoc,
    pub values: Vec<f32>,
}

impl Field {
    pub fn point(name: impl Into<String>, values: Vec<f32>) -> Field {
        Field { name: name.into(), assoc: Assoc::Point, values }
    }

    pub fn cell(name: impl Into<String>, values: Vec<f32>) -> Field {
        Field { name: name.into(), assoc: Assoc::Cell, values }
    }

    /// Min/max of finite values; `None` if there are none.
    pub fn range(&self) -> Option<(f32, f32)> {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.values {
            if v.is_finite() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if lo <= hi {
            Some((lo, hi))
        } else {
            None
        }
    }
}

/// Find a field by name in a field list.
pub fn find<'a>(fields: &'a [Field], name: &str) -> Option<&'a Field> {
    fields.iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_ignores_nonfinite() {
        let f = Field::point("t", vec![1.0, f32::NAN, -2.0, f32::INFINITY, 5.0]);
        assert_eq!(f.range(), Some((-2.0, 5.0)));
        let empty = Field::cell("e", vec![f32::NAN]);
        assert_eq!(empty.range(), None);
    }

    #[test]
    fn find_by_name() {
        let fs = vec![Field::point("a", vec![]), Field::cell("b", vec![])];
        assert!(find(&fs, "b").is_some());
        assert_eq!(find(&fs, "b").unwrap().assoc, Assoc::Cell);
        assert!(find(&fs, "c").is_none());
    }
}
