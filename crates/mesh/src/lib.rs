//! Mesh data model: the structured and unstructured grids, fields, and
//! geometry filters the dissertation's renderers and simulations exchange.
//!
//! Covers the data sets of Chapters II (triangle soups from isosurfaces),
//! III (tetrahedral meshes from decomposed grids), and IV/V (uniform,
//! rectilinear, and unstructured simulation meshes), plus the geometry
//! filters used by the study: marching-tetrahedra isosurfacing, external
//! faces, and hexahedron-to-tetrahedron decomposition.

pub mod datasets;
pub mod external_faces;
pub mod field;
pub mod isosurface;
pub mod lod;
pub mod partition;
pub mod slice;
pub mod structured;
pub mod unstructured;

pub use field::{Assoc, Field};
pub use lod::{GridLadder, LodCost, TetLadder, TriLadder};
pub use partition::{Migration, Partition};
pub use structured::{RectilinearGrid, UniformGrid};
pub use unstructured::{HexMesh, TetMesh, TriMesh};
