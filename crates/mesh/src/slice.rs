//! Plane slicing — the "other visualization algorithm" Chapter VI offers as
//! the easy case for extending the modeling methodology ("slicing extracts a
//! 2-D plane from a 3-D data set, and creating a slicing performance model is
//! likely as simple as estimating the amount of cells intersected by the
//! plane").
//!
//! Implementation: a slice is the zero-isosurface of the signed distance to
//! the plane, so it reuses the marching-tetrahedra machinery, with the
//! *data* field interpolated onto the cut as the pseudocolor scalar.

use crate::isosurface::isosurface;
use crate::structured::UniformGrid;
use crate::unstructured::TriMesh;
use vecmath::Vec3;

/// Result of slicing: the cut triangles plus the work measure the slice
/// performance model consumes.
pub struct SliceOutput {
    pub mesh: TriMesh,
    /// Number of cells the plane intersected (the model's work input).
    pub cells_intersected: usize,
    pub seconds: f64,
}

/// Slice `grid`'s point field `field_name` by the plane through `origin`
/// with normal `normal`.
pub fn slice_grid(grid: &UniformGrid, field_name: &str, origin: Vec3, normal: Vec3) -> SliceOutput {
    let t0 = std::time::Instant::now();
    let n = normal.normalized();
    // Signed-distance point field.
    let mut g = grid.clone();
    g.add_point_field("__slice_dist", |p| (p - origin).dot(n));
    let mesh = isosurface(&g, "__slice_dist", 0.0, Some(field_name));

    // Cells intersected: count cells whose corner distances straddle zero.
    let dist = &g.field("__slice_dist").unwrap().values;
    let c = g.cell_dims();
    let mut cells_intersected = 0usize;
    for k in 0..c[2] {
        for j in 0..c[1] {
            for i in 0..c[0] {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for dk in 0..2 {
                    for dj in 0..2 {
                        for di in 0..2 {
                            let d = dist[g.point_index(i + di, j + dj, k + dk)];
                            lo = lo.min(d);
                            hi = hi.max(d);
                        }
                    }
                }
                if lo <= 0.0 && hi >= 0.0 {
                    cells_intersected += 1;
                }
            }
        }
    }
    SliceOutput { mesh, cells_intersected, seconds: t0.elapsed().as_secs_f64() }
}

/// The Chapter VI estimate: a plane through an N^3 grid intersects O(N^2)
/// cells; an axis-aligned mid-plane hits exactly N^2.
pub fn slice_cell_estimate(n: usize) -> usize {
    n * n
}

#[cfg(test)]
mod tests {
    use super::*;
    use vecmath::Aabb;

    fn grid(n: usize) -> UniformGrid {
        let mut g =
            UniformGrid::new([n; 3], Aabb::from_corners(Vec3::splat(-1.0), Vec3::splat(1.0)));
        g.add_point_field("f", |p| p.x + 2.0 * p.y);
        g
    }

    #[test]
    fn axis_aligned_slice_hits_n_squared_cells() {
        for n in [8usize, 16] {
            let out = slice_grid(&grid(n), "f", Vec3::new(0.01, 0.0, 0.0), Vec3::X);
            assert_eq!(out.cells_intersected, slice_cell_estimate(n), "n={n}");
            assert!(out.mesh.num_tris() > 0);
        }
    }

    #[test]
    fn slice_vertices_lie_on_the_plane() {
        let origin = Vec3::new(0.1, -0.2, 0.3);
        let normal = Vec3::new(1.0, 1.0, 0.5).normalized();
        let out = slice_grid(&grid(12), "f", origin, normal);
        for &p in out.mesh.points.iter().step_by(7) {
            let d = (p - origin).dot(normal);
            assert!(d.abs() < 1e-3, "vertex {p:?} off-plane by {d}");
        }
    }

    #[test]
    fn scalar_is_the_data_field_not_the_distance() {
        let out = slice_grid(&grid(10), "f", Vec3::ZERO, Vec3::Z);
        // On z=0 plane, f = x + 2y in [-3, 3].
        for (&p, &s) in out.mesh.points.iter().zip(out.mesh.scalars.iter()).step_by(5) {
            let expect = p.x + 2.0 * p.y;
            assert!((s - expect).abs() < 0.05, "{s} vs {expect} at {p:?}");
        }
    }

    #[test]
    fn diagonal_slice_intersects_more_cells_than_axis_aligned() {
        let n = 16;
        let axis = slice_grid(&grid(n), "f", Vec3::ZERO, Vec3::X);
        let diag = slice_grid(&grid(n), "f", Vec3::ZERO, Vec3::ONE.normalized());
        assert!(diag.cells_intersected > axis.cells_intersected);
        // Still O(N^2): bounded by a small multiple.
        assert!(diag.cells_intersected < 4 * n * n);
    }

    #[test]
    fn missing_plane_produces_empty_slice() {
        let out = slice_grid(&grid(8), "f", Vec3::splat(10.0), Vec3::X);
        assert_eq!(out.cells_intersected, 0);
        assert_eq!(out.mesh.num_tris(), 0);
    }
}
