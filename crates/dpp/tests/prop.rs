//! Property tests: every parallel primitive agrees with a serial oracle.
//! This is the load-bearing guarantee behind the dissertation's methodology —
//! one algorithm, many devices, identical results.

use dpp::device::Device;
use dpp::sort::{sort_pairs_f32_nonneg, sort_pairs_u64};
use dpp::*;
use proptest::prelude::*;

fn both_devices() -> Vec<Device> {
    vec![Device::parallel(), Device::parallel_with_threads(3)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn map_equals_serial(data in proptest::collection::vec(any::<u32>(), 0..6000)) {
        let n = data.len();
        let serial: Vec<u64> = map(&Device::Serial, n, |i| data[i] as u64 * 3 + 1);
        for d in both_devices() {
            let par: Vec<u64> = map(&d, n, |i| data[i] as u64 * 3 + 1);
            prop_assert_eq!(&par, &serial);
        }
    }

    #[test]
    fn exclusive_scan_law(data in proptest::collection::vec(0u32..1000, 0..9000)) {
        for d in both_devices() {
            let (scan, total) = exclusive_scan_u32(&d, &data);
            let expect: u32 = data.iter().sum();
            prop_assert_eq!(total, expect);
            // scan[i] + data[i] == scan[i+1]
            for i in 0..data.len().saturating_sub(1) {
                prop_assert_eq!(scan[i] + data[i], scan[i + 1]);
            }
            if !data.is_empty() {
                prop_assert_eq!(scan[0], 0);
            }
        }
    }

    #[test]
    fn reduce_is_order_insensitive_for_assoc_commutative_op(
        data in proptest::collection::vec(any::<i32>(), 0..9000)
    ) {
        // max is associative + commutative, so every device must agree exactly.
        let expect = data.iter().copied().fold(i32::MIN, i32::max);
        for d in both_devices() {
            prop_assert_eq!(reduce(&d, &data, i32::MIN, i32::max), expect);
        }
    }

    #[test]
    fn compact_equals_filter(data in proptest::collection::vec(any::<u32>(), 0..9000)) {
        let n = data.len();
        let expect: Vec<u32> = (0..n).filter(|&i| data[i] % 2 == 0).map(|i| i as u32).collect();
        for d in both_devices() {
            let got = compact_indices(&d, n, |i| data[i] % 2 == 0);
            prop_assert_eq!(&got, &expect);
        }
    }

    #[test]
    fn gather_then_scatter_identity(n in 1usize..4000) {
        // Any permutation: scatter(gather(x, p), p) == x.
        let perm: Vec<u32> = {
            // A fixed pseudo-permutation built from the size.
            let mut v: Vec<u32> = (0..n as u32).collect();
            let stride = (n / 2).max(1);
            v.rotate_left(stride % n);
            v
        };
        let src: Vec<u32> = (0..n as u32).map(|i| i * 7 + 3).collect();
        for d in both_devices() {
            let g = gather(&d, &perm, &src);
            let mut out = vec![0u32; n];
            scatter(&d, &g, &perm, &mut out);
            prop_assert_eq!(&out, &src);
        }
    }

    #[test]
    fn radix_sort_matches_std_sort(
        pairs in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..6000)
    ) {
        let mut expect = pairs.clone();
        expect.sort_by_key(|p| p.0);
        for d in both_devices() {
            let mut keys: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let mut vals: Vec<u32> = pairs.iter().map(|p| p.1).collect();
            sort_pairs_u64(&d, &mut keys, &mut vals);
            let got: Vec<(u64, u32)> = keys.into_iter().zip(vals).collect();
            // Keys must match exactly; values may differ only among equal keys,
            // but our sort is stable so both must match a stable std sort.
            let mut stable = pairs.clone();
            stable.sort_by_key(|p| p.0);
            prop_assert_eq!(got, stable);
        }
    }

    #[test]
    fn f32_sort_orders_depths(depths in proptest::collection::vec(0.0f32..1e6, 1..3000)) {
        for d in both_devices() {
            let mut idx: Vec<u32> = (0..depths.len() as u32).collect();
            sort_pairs_f32_nonneg(&d, &depths, &mut idx);
            for w in idx.windows(2) {
                prop_assert!(depths[w[0] as usize] <= depths[w[1] as usize]);
            }
        }
    }

    #[test]
    fn count_if_equals_filter_count(data in proptest::collection::vec(any::<u8>(), 0..9000)) {
        let expect = data.iter().filter(|&&v| v > 128).count();
        for d in both_devices() {
            prop_assert_eq!(count_if(&d, data.len(), |i| data[i] > 128), expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-for-byte agreement between the serial device and a fixed
    /// 4-thread pool across the primitive set, with input sizes straddling
    /// the fork threshold. This is the strong form of the device-equivalence
    /// guarantee: not "close", identical bits.
    #[test]
    fn primitives_bit_exact_serial_vs_four_threads(
        data in proptest::collection::vec(any::<u32>(), 0..20_000)
    ) {
        let d4 = Device::parallel_with_threads(4);
        let n = data.len();

        let m_s: Vec<u64> = map(&Device::Serial, n, |i| data[i] as u64 * 3 + 1);
        let m_p: Vec<u64> = map(&d4, n, |i| data[i] as u64 * 3 + 1);
        prop_assert_eq!(m_s, m_p);

        let small: Vec<u32> = data.iter().map(|&v| v % 1000).collect();
        prop_assert_eq!(
            exclusive_scan_u32(&Device::Serial, &small),
            exclusive_scan_u32(&d4, &small)
        );
        prop_assert_eq!(
            inclusive_scan_u32(&Device::Serial, &small),
            inclusive_scan_u32(&d4, &small)
        );

        let heads: Vec<u32> = (0..n).map(|i| (i % 321 == 0) as u32).collect();
        prop_assert_eq!(
            segmented_exclusive_scan_u32(&Device::Serial, &small, &heads),
            segmented_exclusive_scan_u32(&d4, &small, &heads)
        );

        let wide: Vec<u64> = data.iter().map(|&v| v as u64).collect();
        prop_assert_eq!(
            reduce(&Device::Serial, &wide, 0u64, |a, b| a.wrapping_add(b)),
            reduce(&d4, &wide, 0u64, |a, b| a.wrapping_add(b))
        );
        prop_assert_eq!(
            map_reduce(&Device::Serial, n, |i| data[i] as u64, u64::MAX, u64::min),
            map_reduce(&d4, n, |i| data[i] as u64, u64::MAX, u64::min)
        );

        prop_assert_eq!(
            compact_indices(&Device::Serial, n, |i| data[i] % 7 == 0),
            compact_indices(&d4, n, |i| data[i] % 7 == 0)
        );
        prop_assert_eq!(
            count_if(&Device::Serial, n, |i| data[i] % 2 == 0),
            count_if(&d4, n, |i| data[i] % 2 == 0)
        );

        // f32 min/max: compare the exact bit patterns of the results.
        // (-0.0 is normalized away: min(-0.0, 0.0) may return either zero
        // depending on fold association, which is an IEEE quirk rather than
        // a device divergence.)
        let floats: Vec<f32> =
            data.iter().map(|&v| f32::from_bits(v)).map(|f| if f == 0.0 { 0.0 } else { f }).collect();
        let bits = |o: Option<(f32, f32)>| o.map(|(a, b)| (a.to_bits(), b.to_bits()));
        prop_assert_eq!(
            bits(minmax_f32(&Device::Serial, &floats)),
            bits(minmax_f32(&d4, &floats))
        );
    }

    /// The radix sort produces identical key *and* payload bytes on the
    /// serial device and a 4-thread pool (stability makes payload order
    /// deterministic even among equal keys).
    #[test]
    fn sort_bit_exact_serial_vs_four_threads(
        pairs in proptest::collection::vec((any::<u64>(), any::<u32>()), 0..20_000)
    ) {
        let d4 = Device::parallel_with_threads(4);
        let mut ks: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let mut vs: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        sort_pairs_u64(&Device::Serial, &mut ks, &mut vs);
        let mut kp: Vec<u64> = pairs.iter().map(|p| p.0).collect();
        let mut vp: Vec<u32> = pairs.iter().map(|p| p.1).collect();
        sort_pairs_u64(&d4, &mut kp, &mut vp);
        prop_assert_eq!(ks, kp);
        prop_assert_eq!(vs, vp);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Segmented scan equals an independently computed per-segment exclusive
    /// scan on every device.
    #[test]
    fn segmented_scan_matches_per_segment_oracle(
        data in proptest::collection::vec(0u32..500, 1..9000),
        head_stride in 1usize..200
    ) {
        let n = data.len();
        let heads: Vec<u32> = (0..n).map(|i| (i % head_stride == 0) as u32).collect();
        // Oracle: split into segments and scan each.
        let mut expect = vec![0u32; n];
        let mut acc = 0u32;
        for i in 0..n {
            if heads[i] != 0 {
                acc = 0;
            }
            expect[i] = acc;
            acc += data[i];
        }
        for d in both_devices() {
            let got = segmented_exclusive_scan_u32(&d, &data, &heads);
            prop_assert_eq!(&got, &expect);
        }
        let serial = segmented_exclusive_scan_u32(&Device::Serial, &data, &heads);
        prop_assert_eq!(&serial, &expect);
    }
}
