//! Fixed-width SIMD-friendly lane types.
//!
//! Chapter II's Xeon Phi experiment (Table 5) compared EAVL's scalar OpenMP
//! back-end against an ISPC back-end that fills the vector units, observing
//! 5–9x speedups without changing the algorithm. We reproduce the *structure*
//! of that comparison: [`F32x8`] processes eight lanes per operation through
//! plain array arithmetic that LLVM reliably auto-vectorizes, versus the
//! one-lane scalar path. The "back-end swap" is a type parameter, not an
//! algorithm rewrite — the same point the dissertation makes.

// The `add`/`sub`/`mul` method names intentionally mirror the lane
// intrinsics they stand in for, and the indexed loops are the shape LLVM
// auto-vectorizes most reliably.
#![allow(clippy::should_implement_trait, clippy::needless_range_loop)]

/// Eight f32 lanes operated on element-wise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F32x8(pub [f32; 8]);

impl F32x8 {
    pub const LANES: usize = 8;

    #[inline]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; 8])
    }

    #[inline]
    pub fn from_slice(s: &[f32]) -> F32x8 {
        let mut a = [0.0; 8];
        a.copy_from_slice(&s[..8]);
        F32x8(a)
    }

    #[inline]
    pub fn add(self, o: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i] + o.0[i];
        }
        F32x8(r)
    }

    #[inline]
    pub fn sub(self, o: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i] - o.0[i];
        }
        F32x8(r)
    }

    #[inline]
    pub fn mul(self, o: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i] * o.0[i];
        }
        F32x8(r)
    }

    #[inline]
    pub fn min(self, o: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i].min(o.0[i]);
        }
        F32x8(r)
    }

    #[inline]
    pub fn max(self, o: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i].max(o.0[i]);
        }
        F32x8(r)
    }

    /// Lane-wise fused multiply-add `self * a + b` (LLVM folds to FMA where
    /// the target supports it).
    #[inline]
    pub fn mul_add(self, a: F32x8, b: F32x8) -> F32x8 {
        let mut r = [0.0; 8];
        for i in 0..8 {
            r[i] = self.0[i] * a.0[i] + b.0[i];
        }
        F32x8(r)
    }

    /// Lane mask `self <= o` as booleans.
    #[inline]
    pub fn le(self, o: F32x8) -> [bool; 8] {
        let mut r = [false; 8];
        for i in 0..8 {
            r[i] = self.0[i] <= o.0[i];
        }
        r
    }

    /// Horizontal minimum across lanes.
    #[inline]
    pub fn hmin(self) -> f32 {
        self.0.iter().fold(f32::INFINITY, |a, &b| a.min(b))
    }

    /// Horizontal maximum across lanes.
    #[inline]
    pub fn hmax(self) -> f32 {
        self.0.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b))
    }

    /// Horizontal sum.
    #[inline]
    pub fn hsum(self) -> f32 {
        self.0.iter().sum()
    }
}

/// Three packed lanes of 3-vectors (structure-of-arrays), for 8-wide ray /
/// box arithmetic.
#[derive(Debug, Clone, Copy)]
pub struct Vec3x8 {
    pub x: F32x8,
    pub y: F32x8,
    pub z: F32x8,
}

impl Vec3x8 {
    #[inline]
    pub fn splat(v: vecmath_like::V3) -> Vec3x8 {
        Vec3x8 { x: F32x8::splat(v.0), y: F32x8::splat(v.1), z: F32x8::splat(v.2) }
    }

    #[inline]
    pub fn dot(self, o: Vec3x8) -> F32x8 {
        self.x.mul(o.x).add(self.y.mul(o.y)).add(self.z.mul(o.z))
    }

    #[inline]
    pub fn sub(self, o: Vec3x8) -> Vec3x8 {
        Vec3x8 { x: self.x.sub(o.x), y: self.y.sub(o.y), z: self.z.sub(o.z) }
    }

    #[inline]
    pub fn cross(self, o: Vec3x8) -> Vec3x8 {
        Vec3x8 {
            x: self.y.mul(o.z).sub(self.z.mul(o.y)),
            y: self.z.mul(o.x).sub(self.x.mul(o.z)),
            z: self.x.mul(o.y).sub(self.y.mul(o.x)),
        }
    }
}

/// Tiny local tuple so this crate stays dependency-free; conversion helpers
/// live in the consuming crates.
pub mod vecmath_like {
    /// Minimal (x, y, z) tuple for splat construction.
    #[derive(Debug, Clone, Copy)]
    pub struct V3(pub f32, pub f32, pub f32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = F32x8([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let b = F32x8::splat(2.0);
        assert_eq!(a.add(b).0[0], 3.0);
        assert_eq!(a.mul(b).0[7], 16.0);
        assert_eq!(a.sub(b).0[1], 0.0);
        assert_eq!(a.min(b).0[5], 2.0);
        assert_eq!(a.max(b).0[0], 2.0);
        assert_eq!(a.mul_add(b, b).0[2], 8.0);
    }

    #[test]
    fn horizontals() {
        let a = F32x8([3.0, -1.0, 7.0, 0.0, 2.0, 2.0, 2.0, 2.0]);
        assert_eq!(a.hmin(), -1.0);
        assert_eq!(a.hmax(), 7.0);
        assert_eq!(a.hsum(), 17.0);
    }

    #[test]
    fn masks() {
        let a = F32x8([1.0, 5.0, 2.0, 2.0, 0.0, 9.0, 9.0, 9.0]);
        let m = a.le(F32x8::splat(2.0));
        assert!(m[0]);
        assert!(!m[1]);
        assert!(m[2]);
    }

    #[test]
    fn vec3x8_dot_cross() {
        use vecmath_like::V3;
        let x = Vec3x8::splat(V3(1.0, 0.0, 0.0));
        let y = Vec3x8::splat(V3(0.0, 1.0, 0.0));
        let d = x.dot(y);
        assert_eq!(d.0[0], 0.0);
        let c = x.cross(y);
        assert_eq!((c.x.0[0], c.y.0[0], c.z.0[0]), (0.0, 0.0, 1.0));
    }
}
