//! Data-parallel primitives: the EAVL / VTK-m stand-in.
//!
//! The dissertation's renderers are composed *entirely* of a small set of
//! data-parallel primitives — map, gather, scatter, reduce, scan, and
//! reverse-index — combined with user-defined functors (Chapter 2.3). A single
//! algorithm expressed this way runs on any architecture for which the
//! primitive set has a back-end. This crate provides that primitive set with
//! two back-ends behind one [`Device`] handle:
//!
//! * [`Device::Serial`] — single-threaded loops. Stands in for the paper's
//!   one-core CPU configurations (e.g. CPU1 in the SC16 study).
//! * [`Device::parallel()`] — rayon work-stealing over all cores. Stands in
//!   for the many-threaded configurations (GPU1 in the study). A
//!   thread-clamped variant ([`Device::parallel_with_threads`]) supports the
//!   strong-scaling experiments (Table 8).
//!
//! The performance-model methodology (Chapter V) depends on exactly this
//! property: one implementation, several devices, one model form per
//! (algorithm, device) pair with device-specific fitted coefficients.

pub mod device;
pub mod primitives;
pub mod simd;
pub mod sort;

pub use device::Device;
pub use primitives::*;
