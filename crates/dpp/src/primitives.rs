//! The primitive set: map, gather, scatter, reduce, scan, reverse-index,
//! and stream compaction — each dispatching on [`Device`].
//!
//! Semantics follow Blelloch's vector model as summarized in Chapter 2.3 of
//! the dissertation. Every parallel path is observationally identical to the
//! serial path (property-tested in `tests/`), which is what lets one renderer
//! implementation be studied on several devices.

use crate::device::Device;
use rayon::prelude::*;

/// Minimum work size before the parallel back-end actually forks; below this
/// the scheduling overhead dominates (mirrors EAVL's grain-size heuristics).
const PAR_GRAIN: usize = 4096;

/// Default for [`par_min_len`].
pub const DEFAULT_PAR_MIN_LEN: usize = 1024;

/// Once a primitive does fork, the smallest number of elements a single task
/// may receive (passed to `Par::with_min_len`, and used as the floor for the
/// explicit chunk sizes in scan/segscan). Keeps per-task claim overhead
/// amortized on large inputs without affecting results: every chunked
/// primitive here is exact over any partition, so this knob is safe to
/// re-tune per host — set `DPP_PAR_MIN_LEN`, latched on first use so one
/// process never mixes two grains (see `repro scaling` and EXPERIMENTS.md
/// for the re-anchor procedure).
pub fn par_min_len() -> usize {
    static V: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *V.get_or_init(|| match std::env::var("DPP_PAR_MIN_LEN") {
        Ok(s) => s.trim().parse::<usize>().ok().filter(|&v| v > 0).unwrap_or(DEFAULT_PAR_MIN_LEN),
        Err(_) => DEFAULT_PAR_MIN_LEN,
    })
}

/// `map`: produce `out[i] = f(i)` for `i in 0..n`.
///
/// The index-functor form subsumes EAVL's multi-input maps: the closure
/// captures however many input arrays it needs.
pub fn map<T, F>(device: &Device, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync + Send,
{
    match device {
        Device::Serial => (0..n).map(f).collect(),
        _ if n < PAR_GRAIN => (0..n).map(f).collect(),
        _ => device.install(|| (0..n).into_par_iter().with_min_len(par_min_len()).map(f).collect()),
    }
}

/// In-place `map`: `data[i] = f(i, data[i])`.
pub fn map_inplace<T, F>(device: &Device, data: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync + Send,
{
    match device {
        Device::Serial => {
            for (i, v) in data.iter_mut().enumerate() {
                f(i, v);
            }
        }
        _ if data.len() < PAR_GRAIN => {
            for (i, v) in data.iter_mut().enumerate() {
                f(i, v);
            }
        }
        _ => device.install(|| {
            data.par_iter_mut().with_min_len(par_min_len()).enumerate().for_each(|(i, v)| f(i, v));
        }),
    }
}

/// Side-effect-only map over `0..n`. The functor must only write through
/// disjoint or atomic locations — this is the primitive the samplers use to
/// write into shared atomic buffers.
pub fn for_each<F>(device: &Device, n: usize, f: F)
where
    F: Fn(usize) + Sync + Send,
{
    match device {
        Device::Serial => (0..n).for_each(f),
        _ if n < PAR_GRAIN => (0..n).for_each(f),
        _ => device.install(|| (0..n).into_par_iter().with_min_len(par_min_len()).for_each(f)),
    }
}

/// `gather`: `out[i] = src[indices[i]]`. Output length equals `indices` length.
pub fn gather<T: Copy + Send + Sync>(device: &Device, indices: &[u32], src: &[T]) -> Vec<T> {
    map(device, indices.len(), |i| src[indices[i] as usize])
}

/// `scatter`: `out[indices[i]] = values[i]`. Indices must be unique (the
/// caller's obligation, as in EAVL — scatter with duplicate indices is a data
/// race there and a last-writer-wins race here on the serial device; we make
/// it deterministic by running scatter serially on all devices unless the
/// parallel-safe variant is applicable).
pub fn scatter<T: Copy + Send + Sync>(
    device: &Device,
    values: &[T],
    indices: &[u32],
    out: &mut [T],
) {
    assert_eq!(values.len(), indices.len());
    // Scatter writes are disjoint only if indices are unique; we cannot prove
    // it cheaply, so chunk the *reads* in parallel and funnel writes through
    // raw pointers only when unique indices are guaranteed by construction.
    // The common renderer uses (compaction, expansion) have unique indices,
    // so provide a fast path behind a debug assertion.
    #[cfg(debug_assertions)]
    {
        let mut seen = std::collections::HashSet::with_capacity(indices.len());
        for &ix in indices {
            assert!(seen.insert(ix), "scatter index {ix} duplicated");
            assert!((ix as usize) < out.len(), "scatter index {ix} out of range");
        }
    }
    let _ = device;
    for (v, &ix) in values.iter().zip(indices.iter()) {
        out[ix as usize] = *v;
    }
}

/// `reduce`: fold all elements with an associative operator `op` starting
/// from `identity`.
pub fn reduce<T, F>(device: &Device, data: &[T], identity: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Sync + Send,
{
    match device {
        Device::Serial => data.iter().fold(identity, |a, &b| op(a, b)),
        _ if data.len() < PAR_GRAIN => data.iter().fold(identity, |a, &b| op(a, b)),
        _ => device.install(|| {
            data.par_iter()
                .with_min_len(par_min_len())
                .fold(|| identity, |a, &b| op(a, b))
                .reduce(|| identity, &op)
        }),
    }
}

/// Fused map+reduce over `0..n` (avoids materializing the mapped array).
pub fn map_reduce<T, M, F>(device: &Device, n: usize, mapf: M, identity: T, op: F) -> T
where
    T: Copy + Send + Sync,
    M: Fn(usize) -> T + Sync + Send,
    F: Fn(T, T) -> T + Sync + Send,
{
    match device {
        Device::Serial => (0..n).map(mapf).fold(identity, &op),
        _ if n < PAR_GRAIN => (0..n).map(mapf).fold(identity, &op),
        _ => device.install(|| {
            (0..n)
                .into_par_iter()
                .with_min_len(par_min_len())
                .fold(|| identity, |a, i| op(a, mapf(i)))
                .reduce(|| identity, &op)
        }),
    }
}

/// Exclusive scan (prefix sum) of `u32` values. `out[0] = 0`,
/// `out[i] = sum(data[0..i])`. Returns the pair `(scan, total)`.
pub fn exclusive_scan_u32(device: &Device, data: &[u32]) -> (Vec<u32>, u32) {
    let n = data.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    match device {
        Device::Serial => serial_exscan(data),
        _ if n < PAR_GRAIN => serial_exscan(data),
        Device::Parallel(_) => device.install(|| {
            // Two-level scan: per-chunk sums, scan the sums, then rescan
            // each chunk with its offset.
            let threads = rayon::current_num_threads().max(1);
            let chunk = n.div_ceil(threads).max(par_min_len());
            let sums: Vec<u64> =
                data.par_chunks(chunk).map(|c| c.iter().map(|&v| v as u64).sum()).collect();
            let mut offsets = Vec::with_capacity(sums.len());
            let mut acc = 0u64;
            for s in &sums {
                offsets.push(acc);
                acc += s;
            }
            let total = acc;
            assert!(total <= u32::MAX as u64, "scan overflow");
            let mut out = vec![0u32; n];
            out.par_chunks_mut(chunk).zip(data.par_chunks(chunk)).zip(offsets.par_iter()).for_each(
                |((oc, dc), &off)| {
                    let mut acc = off as u32;
                    for (o, &d) in oc.iter_mut().zip(dc.iter()) {
                        *o = acc;
                        acc += d;
                    }
                },
            );
            (out, total as u32)
        }),
    }
}

fn serial_exscan(data: &[u32]) -> (Vec<u32>, u32) {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u32;
    for &v in data {
        out.push(acc);
        acc = acc.checked_add(v).expect("scan overflow");
    }
    (out, acc)
}

/// Inclusive scan of `u32` values.
pub fn inclusive_scan_u32(device: &Device, data: &[u32]) -> Vec<u32> {
    let (mut ex, _) = exclusive_scan_u32(device, data);
    for (o, &d) in ex.iter_mut().zip(data.iter()) {
        *o += d;
    }
    ex
}

/// `reverse index`: given flags and their exclusive scan, produce for each
/// kept element its source index — the primitive EAVL uses to drive the
/// gather step of stream compaction (Algorithm 1, line 21).
pub fn reverse_index(device: &Device, flags: &[u32], exscan: &[u32], count: u32) -> Vec<u32> {
    assert_eq!(flags.len(), exscan.len());
    let mut out = vec![0u32; count as usize];
    // Writes are unique by construction (each kept flag owns one slot), so a
    // parallel scatter is safe; express it through chunked writes.
    match device {
        Device::Serial => {
            for (i, (&f, &s)) in flags.iter().zip(exscan.iter()).enumerate() {
                if f != 0 {
                    out[s as usize] = i as u32;
                }
            }
        }
        _ => {
            // Each output slot's source index can be found independently, but
            // that is O(n log n); the serial pass is O(n) and bandwidth-bound,
            // so parallelize by chunking flags and writing into the disjoint
            // out ranges [exscan[chunk_start], exscan[chunk_end]).
            let n = flags.len();
            if n < PAR_GRAIN {
                for (i, (&f, &s)) in flags.iter().zip(exscan.iter()).enumerate() {
                    if f != 0 {
                        out[s as usize] = i as u32;
                    }
                }
            } else {
                device.install(|| {
                    let threads = rayon::current_num_threads().max(1);
                    let chunk = n.div_ceil(threads).max(par_min_len());
                    let out_ptr = SendPtr(out.as_mut_ptr());
                    (0..n.div_ceil(chunk)).into_par_iter().for_each(|c| {
                        let start = c * chunk;
                        let end = (start + chunk).min(n);
                        let p = out_ptr;
                        for i in start..end {
                            if flags[i] != 0 {
                                // SAFETY: each kept element has a unique slot
                                // exscan[i] in 0..count; chunks never collide.
                                unsafe { *p.0.add(exscan[i] as usize) = i as u32 };
                            }
                        }
                    });
                });
            }
        }
    }
    out
}

#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: SendPtr is used only by the scatter in `reverse_index`, where the
// exclusive scan gives every kept element a unique output slot; concurrent
// writers never alias.
unsafe impl<T> Send for SendPtr<T> {} // SAFETY: see above — unique slots only.
unsafe impl<T> Sync for SendPtr<T> {} // SAFETY: see above — unique slots only.

/// Stream compaction: return the indices `i` where `keep(i)` is true,
/// preserving order. Built from map + scan + reverse-index, exactly as the
/// dissertation's `compactArrays` (Algorithm 1).
pub fn compact_indices<F>(device: &Device, n: usize, keep: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync + Send,
{
    let flags: Vec<u32> = map(device, n, |i| keep(i) as u32);
    let (exscan, count) = exclusive_scan_u32(device, &flags);
    reverse_index(device, &flags, &exscan, count)
}

/// Count elements satisfying a predicate (map + reduce fusion).
pub fn count_if<F>(device: &Device, n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync + Send,
{
    map_reduce(device, n, |i| pred(i) as u64, 0u64, |a, b| a + b) as usize
}

/// Minimum and maximum of an `f32` slice (NaNs ignored); `None` when empty
/// or all NaN.
pub fn minmax_f32(device: &Device, data: &[f32]) -> Option<(f32, f32)> {
    if data.is_empty() {
        return None;
    }
    let (lo, hi) = reduce(
        device,
        // Work over indices to keep data by-ref.
        &map(device, data.len(), |i| {
            let v = data[i];
            if v.is_nan() {
                (f32::INFINITY, f32::NEG_INFINITY)
            } else {
                (v, v)
            }
        }),
        (f32::INFINITY, f32::NEG_INFINITY),
        |a, b| (a.0.min(b.0), a.1.max(b.1)),
    );
    if lo <= hi {
        Some((lo, hi))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices() -> Vec<Device> {
        vec![Device::Serial, Device::parallel(), Device::parallel_with_threads(2)]
    }

    #[test]
    fn map_matches_serial_on_all_devices() {
        for d in devices() {
            let out = map(&d, 10_000, |i| i * i);
            assert_eq!(out.len(), 10_000);
            assert_eq!(out[77], 77 * 77);
            assert_eq!(out[9_999], 9_999 * 9_999);
        }
    }

    #[test]
    fn gather_scatter_round_trip() {
        for d in devices() {
            let src: Vec<u32> = (0..1000).map(|i| i * 3).collect();
            let idx: Vec<u32> = (0..1000).rev().collect();
            let g = gather(&d, &idx, &src);
            assert_eq!(g[0], 999 * 3);
            let mut out = vec![0u32; 1000];
            scatter(&d, &g, &idx, &mut out);
            assert_eq!(out, src);
        }
    }

    #[test]
    fn reduce_sums() {
        for d in devices() {
            let data: Vec<u64> = (1..=100_000).collect();
            let s = reduce(&d, &data, 0u64, |a, b| a + b);
            assert_eq!(s, 100_000 * 100_001 / 2);
        }
    }

    #[test]
    fn map_reduce_max() {
        for d in devices() {
            let m = map_reduce(&d, 50_000, |i| (i as i64 - 25_000).abs(), 0, i64::max);
            assert_eq!(m, 25_000);
        }
    }

    #[test]
    fn scans_match_reference() {
        for d in devices() {
            let data: Vec<u32> = (0..30_000).map(|i| (i % 7) as u32).collect();
            let (ex, total) = exclusive_scan_u32(&d, &data);
            assert_eq!(ex[0], 0);
            let expect_total: u32 = data.iter().sum();
            assert_eq!(total, expect_total);
            let mut acc = 0;
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(ex[i], acc, "at {i}");
                acc += v;
            }
            let inc = inclusive_scan_u32(&d, &data);
            assert_eq!(*inc.last().unwrap(), expect_total);
        }
    }

    #[test]
    fn empty_scan() {
        let (ex, total) = exclusive_scan_u32(&Device::Serial, &[]);
        assert!(ex.is_empty());
        assert_eq!(total, 0);
    }

    #[test]
    fn compaction_keeps_order() {
        for d in devices() {
            let idx = compact_indices(&d, 20_000, |i| i % 3 == 0);
            assert_eq!(idx.len(), 20_000 / 3 + 1);
            assert_eq!(idx[0], 0);
            assert_eq!(idx[1], 3);
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn count_if_counts() {
        for d in devices() {
            assert_eq!(count_if(&d, 10_000, |i| i % 2 == 0), 5_000);
        }
    }

    #[test]
    fn minmax_handles_nan_and_empty() {
        let d = Device::Serial;
        assert_eq!(minmax_f32(&d, &[]), None);
        assert_eq!(minmax_f32(&d, &[f32::NAN]), None);
        let (lo, hi) = minmax_f32(&d, &[3.0, f32::NAN, -1.0, 7.0]).unwrap();
        assert_eq!((lo, hi), (-1.0, 7.0));
    }

    #[test]
    fn map_inplace_and_for_each() {
        for d in devices() {
            let mut v = vec![1u32; 9000];
            map_inplace(&d, &mut v, |i, x| *x = i as u32);
            assert_eq!(v[123], 123);
            let counter = std::sync::atomic::AtomicUsize::new(0);
            for_each(&d, 9000, |_| {
                // ORDERING: Relaxed — commutative test counter, read after
                // the region joins.
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            // ORDERING: Relaxed — for_each joined above.
            assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 9000);
        }
    }
}

/// Segmented exclusive scan: an exclusive prefix sum restarted at every
/// segment head. Section 2.3 singles this variant out ("performs the scan
/// within only partitioned sections of the array, and is useful to implement
/// steps of complex algorithms like parallel quicksort").
///
/// `heads[i] != 0` marks element `i` as the first of a segment; element 0 is
/// always treated as a head.
pub fn segmented_exclusive_scan_u32(device: &Device, data: &[u32], heads: &[u32]) -> Vec<u32> {
    assert_eq!(data.len(), heads.len());
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    match device {
        Device::Serial => serial_segscan(data, heads),
        _ if n < PAR_GRAIN => serial_segscan(data, heads),
        Device::Parallel(_) => device.install(|| {
            // Two-level: each chunk scans locally (tracking whether it saw a
            // head); chunks whose prefix contains no head inherit a carry
            // from the previous chunks' trailing open segment.
            let threads = rayon::current_num_threads().max(1);
            let chunk = n.div_ceil(threads).max(par_min_len());
            struct ChunkInfo {
                /// Sum of the trailing open segment (after the last head).
                tail_sum: u64,
                /// True if the chunk contains any head.
                has_head: bool,
            }
            let infos: Vec<ChunkInfo> = data
                .par_chunks(chunk)
                .zip(heads.par_chunks(chunk))
                .map(|(dc, hc)| {
                    let mut tail_sum = 0u64;
                    let mut has_head = false;
                    for (d, h) in dc.iter().zip(hc.iter()) {
                        if *h != 0 {
                            has_head = true;
                            tail_sum = 0;
                        }
                        tail_sum += *d as u64;
                    }
                    ChunkInfo { tail_sum, has_head }
                })
                .collect();
            // Carry into each chunk: sum of open-tail contributions since
            // the last chunk containing a head.
            let mut carries = Vec::with_capacity(infos.len());
            let mut carry = 0u64;
            for info in &infos {
                carries.push(carry);
                if info.has_head {
                    carry = info.tail_sum;
                } else {
                    carry += info.tail_sum;
                }
            }
            let mut out = vec![0u32; n];
            out.par_chunks_mut(chunk)
                .zip(data.par_chunks(chunk))
                .zip(heads.par_chunks(chunk))
                .zip(carries.par_iter())
                .for_each(|(((oc, dc), hc), &c0)| {
                    let mut acc = c0;
                    for ((o, &d), &h) in oc.iter_mut().zip(dc.iter()).zip(hc.iter()) {
                        if h != 0 {
                            acc = 0;
                        }
                        *o = acc as u32;
                        acc += d as u64;
                    }
                });
            out
        }),
    }
}

fn serial_segscan(data: &[u32], heads: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(data.len());
    let mut acc = 0u64;
    for (i, (&d, &h)) in data.iter().zip(heads.iter()).enumerate() {
        if i == 0 || h != 0 {
            acc = 0;
        }
        out.push(acc as u32);
        acc += d as u64;
    }
    out
}

#[cfg(test)]
mod segscan_tests {
    use super::*;

    #[test]
    fn restarts_at_heads() {
        let d = Device::Serial;
        let data = [1u32, 2, 3, 4, 5, 6];
        let heads = [1u32, 0, 0, 1, 0, 0];
        let out = segmented_exclusive_scan_u32(&d, &data, &heads);
        assert_eq!(out, vec![0, 1, 3, 0, 4, 9]);
    }

    #[test]
    fn no_heads_equals_plain_exclusive_scan() {
        let d = Device::Serial;
        let data: Vec<u32> = (0..100).map(|i| i % 5).collect();
        let heads = vec![0u32; 100];
        let seg = segmented_exclusive_scan_u32(&d, &data, &heads);
        let (plain, _) = exclusive_scan_u32(&d, &data);
        assert_eq!(seg, plain);
    }

    #[test]
    fn parallel_matches_serial() {
        let par = Device::parallel_with_threads(3);
        let n = 50_000usize;
        let data: Vec<u32> = (0..n).map(|i| (i * 7 % 13) as u32).collect();
        let heads: Vec<u32> = (0..n).map(|i| (i % 97 == 0) as u32).collect();
        let a = segmented_exclusive_scan_u32(&Device::Serial, &data, &heads);
        let b = segmented_exclusive_scan_u32(&par, &data, &heads);
        assert_eq!(a, b);
        // Sparse heads: long open segments crossing many chunks.
        let heads2: Vec<u32> = (0..n).map(|i| (i == 17 || i == 40_000) as u32).collect();
        let a2 = segmented_exclusive_scan_u32(&Device::Serial, &data, &heads2);
        let b2 = segmented_exclusive_scan_u32(&par, &data, &heads2);
        assert_eq!(a2, b2);
        // No heads at all.
        let zero = vec![0u32; n];
        assert_eq!(
            segmented_exclusive_scan_u32(&Device::Serial, &data, &zero),
            segmented_exclusive_scan_u32(&par, &data, &zero)
        );
    }

    #[test]
    fn empty_input() {
        let d = Device::Serial;
        assert!(segmented_exclusive_scan_u32(&d, &[], &[]).is_empty());
    }
}
