//! Execution devices: serial and rayon-backed parallel back-ends.
//!
//! # Determinism
//!
//! The parallel device executes on real worker threads, yet every primitive
//! in this crate is *observationally identical* to its serial counterpart:
//! work is partitioned into contiguous chunks whose boundaries depend only on
//! the input length and the grain size (never on scheduling order), chunked
//! results merge in ascending chunk order, and each chunked primitive is
//! exact over any partition (integer scans/histograms, min/max, disjoint
//! writes). A frame rendered on [`Device::Serial`] is byte-for-byte the frame
//! rendered on [`Device::parallel_with_threads`] for any thread count —
//! pinned by `tests/parallel_exactness.rs` and the property tests.
//!
//! # Panics
//!
//! A panic inside a functor running on a parallel device is caught on the
//! worker, carried back, and re-thrown on the calling thread once the batch
//! drains — the caller observes the same unwinding it would have seen
//! serially. Worker threads never die silently.

use std::fmt;
use std::sync::Arc;

/// An execution back-end for the data-parallel primitives.
///
/// `Device` is cheap to clone and `Send + Sync`; renderers hold one and pass
/// it to every primitive call, mirroring how EAVL algorithms are compiled
/// against a back-end.
#[derive(Clone)]
pub enum Device {
    /// Single-threaded execution (the paper's one-core CPU runs).
    Serial,
    /// Rayon execution on real worker threads. `None` uses the global thread
    /// pool (all logical cores, or `RAYON_NUM_THREADS`); `Some(pool)` uses a
    /// dedicated pool, enabling thread-count clamping for strong-scaling
    /// studies.
    Parallel(Option<Arc<rayon::ThreadPool>>),
}

impl Device {
    /// Parallel device on the global rayon pool (all logical cores).
    pub fn parallel() -> Device {
        Device::Parallel(None)
    }

    /// Parallel device clamped to exactly `threads` worker threads.
    pub fn parallel_with_threads(threads: usize) -> Device {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads.max(1))
            .build()
            .expect("failed to build rayon pool");
        Device::Parallel(Some(Arc::new(pool)))
    }

    /// True for any parallel variant.
    pub fn is_parallel(&self) -> bool {
        matches!(self, Device::Parallel(_))
    }

    /// Number of worker threads this device will use.
    pub fn threads(&self) -> usize {
        match self {
            Device::Serial => 1,
            Device::Parallel(None) => rayon::current_num_threads(),
            Device::Parallel(Some(p)) => p.current_num_threads(),
        }
    }

    /// Short name used in experiment records ("serial" / "parallel").
    pub fn name(&self) -> &'static str {
        match self {
            Device::Serial => "serial",
            Device::Parallel(_) => "parallel",
        }
    }

    /// Run `f` inside this device's thread pool so that nested rayon
    /// operations are scheduled on it. For a dedicated pool this really
    /// ships `f` to one of that pool's workers — nested `par_*` calls then
    /// fan out over exactly that pool's threads, which is what makes
    /// [`Device::parallel_with_threads`] clamp concurrency for strong-scaling
    /// runs. On the serial device `f` runs on the caller (primitives check
    /// the device themselves and stay sequential).
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        match self {
            Device::Serial => f(),
            Device::Parallel(None) => f(),
            Device::Parallel(Some(pool)) => pool.install(f),
        }
    }
}

impl fmt::Debug for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Device::Serial => write!(f, "Device::Serial"),
            Device::Parallel(None) => write!(f, "Device::Parallel(global)"),
            Device::Parallel(Some(p)) => {
                write!(f, "Device::Parallel({} threads)", p.current_num_threads())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_threads() {
        assert_eq!(Device::Serial.name(), "serial");
        assert_eq!(Device::Serial.threads(), 1);
        assert!(!Device::Serial.is_parallel());
        let p = Device::parallel();
        assert!(p.is_parallel());
        assert!(p.threads() >= 1);
        let p2 = Device::parallel_with_threads(2);
        assert_eq!(p2.threads(), 2);
    }

    #[test]
    fn install_runs_closure() {
        let d = Device::parallel_with_threads(2);
        let v = d.install(|| 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(Device::Serial.install(|| 7), 7);
    }
}
