//! Radix sort for (key, index) pairs — used to order primitives by Morton
//! code during LBVH construction and to depth-sort tetrahedra in the
//! HAVS-style baseline. LSD radix with 8-bit digits; the parallel path builds
//! per-chunk histograms and scatters into globally scanned offsets, which
//! keeps it stable.

use crate::device::Device;
use rayon::prelude::*;

const RADIX_BITS: u32 = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sort `keys` (with parallel payload `values`) ascending by key, stable.
/// Panics if lengths differ.
pub fn sort_pairs_u64(device: &Device, keys: &mut Vec<u64>, values: &mut Vec<u32>) {
    assert_eq!(keys.len(), values.len());
    let n = keys.len();
    if n <= 1 {
        return;
    }
    let max_key = keys.iter().copied().max().unwrap_or(0);
    let passes = if max_key == 0 { 1 } else { (64 - max_key.leading_zeros()).div_ceil(RADIX_BITS) };

    let mut src_k = std::mem::take(keys);
    let mut src_v = std::mem::take(values);
    let mut dst_k = vec![0u64; n];
    let mut dst_v = vec![0u32; n];

    for pass in 0..passes {
        let shift = pass * RADIX_BITS;
        match device {
            Device::Serial => {
                radix_pass_serial(&src_k, &src_v, &mut dst_k, &mut dst_v, shift);
            }
            _ if n < 1 << 14 => {
                radix_pass_serial(&src_k, &src_v, &mut dst_k, &mut dst_v, shift);
            }
            Device::Parallel(_) => {
                device
                    .install(|| radix_pass_parallel(&src_k, &src_v, &mut dst_k, &mut dst_v, shift));
            }
        }
        std::mem::swap(&mut src_k, &mut dst_k);
        std::mem::swap(&mut src_v, &mut dst_v);
    }
    *keys = src_k;
    *values = src_v;
}

fn radix_pass_serial(
    src_k: &[u64],
    src_v: &[u32],
    dst_k: &mut [u64],
    dst_v: &mut [u32],
    shift: u32,
) {
    let mut hist = [0usize; BUCKETS];
    for &k in src_k {
        hist[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
    }
    let mut offsets = [0usize; BUCKETS];
    let mut acc = 0;
    for (o, h) in offsets.iter_mut().zip(hist.iter()) {
        *o = acc;
        acc += h;
    }
    for (&k, &v) in src_k.iter().zip(src_v.iter()) {
        let b = ((k >> shift) as usize) & (BUCKETS - 1);
        dst_k[offsets[b]] = k;
        dst_v[offsets[b]] = v;
        offsets[b] += 1;
    }
}

fn radix_pass_parallel(
    src_k: &[u64],
    src_v: &[u32],
    dst_k: &mut [u64],
    dst_v: &mut [u32],
    shift: u32,
) {
    let n = src_k.len();
    let threads = rayon::current_num_threads().max(1);
    // Floor the chunk size: a pass is bandwidth-bound, so tiny chunks only
    // add claim overhead. Bucket-major offsets keep the pass stable (and the
    // output identical) for any chunking.
    let chunk = n.div_ceil(threads).max(1 << 12);
    let nchunks = n.div_ceil(chunk);

    // Per-chunk histograms.
    let hists: Vec<[usize; BUCKETS]> = src_k
        .par_chunks(chunk)
        .map(|c| {
            let mut h = [0usize; BUCKETS];
            for &k in c {
                h[((k >> shift) as usize) & (BUCKETS - 1)] += 1;
            }
            h
        })
        .collect();

    // Global bucket-major offsets: all chunk-0 entries of bucket b precede
    // chunk-1 entries of bucket b, preserving stability.
    let mut offsets = vec![[0usize; BUCKETS]; nchunks];
    let mut acc = 0usize;
    for b in 0..BUCKETS {
        for c in 0..nchunks {
            offsets[c][b] = acc;
            acc += hists[c][b];
        }
    }

    struct Ptr<T>(*mut T);
    // SAFETY: Ptr is only shared across the scatter below, where every
    // (chunk, bucket) pair writes a disjoint offset range of the output;
    // no two threads ever touch the same slot.
    unsafe impl<T> Send for Ptr<T> {} // SAFETY: see above — disjoint writes only.
    unsafe impl<T> Sync for Ptr<T> {} // SAFETY: see above — disjoint writes only.
    let pk = Ptr(dst_k.as_mut_ptr());
    let pv = Ptr(dst_v.as_mut_ptr());
    let pk = &pk;
    let pv = &pv;

    src_k.par_chunks(chunk).zip(src_v.par_chunks(chunk)).zip(offsets.into_par_iter()).for_each(
        move |((ck, cv), mut off)| {
            for (&k, &v) in ck.iter().zip(cv.iter()) {
                let b = ((k >> shift) as usize) & (BUCKETS - 1);
                // SAFETY: bucket-major offsets give every (chunk, bucket)
                // pair a disjoint output range of exactly hist[c][b] slots.
                unsafe {
                    *pk.0.add(off[b]) = k;
                    *pv.0.add(off[b]) = v;
                }
                off[b] += 1;
            }
        },
    );
}

/// Sort `u32` keys with payload; convenience wrapper over the u64 path.
pub fn sort_pairs_u32(device: &Device, keys: &mut [u32], values: &mut Vec<u32>) {
    let mut wide: Vec<u64> = keys.iter().map(|&k| k as u64).collect();
    sort_pairs_u64(device, &mut wide, values);
    for (k, w) in keys.iter_mut().zip(wide.iter()) {
        *k = *w as u32;
    }
}

/// Sort f32 keys (must be finite and non-negative, as depth values are) with
/// payload, by mapping to order-preserving u32 bit patterns.
pub fn sort_pairs_f32_nonneg(device: &Device, keys: &[f32], values: &mut Vec<u32>) {
    debug_assert!(keys.iter().all(|k| k.is_finite() && *k >= 0.0));
    let mut bits: Vec<u64> = keys.iter().map(|&k| k.to_bits() as u64).collect();
    sort_pairs_u64(device, &mut bits, values);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn devices() -> Vec<Device> {
        vec![Device::Serial, Device::parallel(), Device::parallel_with_threads(3)]
    }

    #[test]
    fn sorts_random_u64() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for d in devices() {
            let n = 50_000;
            let mut keys: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() >> 16).collect();
            let mut vals: Vec<u32> = (0..n as u32).collect();
            let mut expect: Vec<(u64, u32)> =
                keys.iter().copied().zip(vals.iter().copied()).collect();
            expect.sort_by_key(|p| p.0);
            sort_pairs_u64(&d, &mut keys, &mut vals);
            assert!(keys.windows(2).all(|w| w[0] <= w[1]));
            for (i, (k, v)) in keys.iter().zip(vals.iter()).enumerate() {
                assert_eq!((*k, *v), expect[i], "mismatch at {i} on {:?}", d);
            }
        }
    }

    #[test]
    fn stable_for_equal_keys() {
        for d in devices() {
            let mut keys = vec![5u64; 10_000];
            let mut vals: Vec<u32> = (0..10_000).collect();
            sort_pairs_u64(&d, &mut keys, &mut vals);
            // Stability: payload order preserved.
            assert!(vals.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_and_single() {
        let d = Device::Serial;
        let mut k: Vec<u64> = vec![];
        let mut v: Vec<u32> = vec![];
        sort_pairs_u64(&d, &mut k, &mut v);
        assert!(k.is_empty());
        let mut k = vec![9u64];
        let mut v = vec![1u32];
        sort_pairs_u64(&d, &mut k, &mut v);
        assert_eq!(k, vec![9]);
        assert_eq!(v, vec![1]);
    }

    #[test]
    fn f32_depth_sort() {
        let d = Device::parallel();
        let keys = vec![3.5f32, 0.25, 10.0, 0.0, 1.0];
        let mut vals: Vec<u32> = (0..5).collect();
        sort_pairs_f32_nonneg(&d, &keys, &mut vals);
        assert_eq!(vals, vec![3, 1, 4, 0, 2]);
    }

    #[test]
    fn u32_wrapper() {
        let d = Device::Serial;
        let mut k = vec![3u32, 1, 2];
        let mut v = vec![0u32, 1, 2];
        sort_pairs_u32(&d, &mut k, &mut v);
        assert_eq!(k, vec![1, 2, 3]);
        assert_eq!(v, vec![1, 2, 0]);
    }
}
