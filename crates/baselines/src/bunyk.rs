//! Bunyk-style unstructured ray caster (the Figure 7 comparator).
//!
//! Bunyk et al.'s algorithm pre-traces face connectivity (which cell lies on
//! the other side of each tetrahedron face), finds each ray's entry cell
//! through a boundary face, then marches cell to cell, integrating the
//! transfer function over each ray segment. The paper notes the serial
//! preprocessing took 50+ minutes on Enzo-80M; our hash-based version is
//! faster but still a distinct, measured, serial step.

use mesh::{Assoc, TetMesh};
use rayon::prelude::*;
use render::Framebuffer;
use std::collections::HashMap;
use vecmath::{over, Camera, Color, Ray, TransferFunction, Vec3};

/// Face-connectivity structure: for each tet, its 4 neighbors
/// (`u32::MAX` = boundary), plus the list of boundary (tet, face) pairs.
pub struct Connectivity {
    /// `neighbors[t][f]` = tet adjacent across face `f` of tet `t`.
    pub neighbors: Vec<[u32; 4]>,
    /// Boundary faces as (tet, face index).
    pub boundary: Vec<(u32, u8)>,
    pub preprocess_seconds: f64,
}

/// Face `f` of a tet is the one opposite vertex `f`: vertices are the other
/// three in canonical order.
const TET_FACES: [[usize; 3]; 4] = [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]];

impl Connectivity {
    /// Serial preprocessing pass (the algorithm's defining overhead).
    pub fn build(tets: &TetMesh) -> Connectivity {
        let t0 = std::time::Instant::now();
        let n = tets.num_tets();
        let mut neighbors = vec![[u32::MAX; 4]; n];
        let mut map: HashMap<[u32; 3], (u32, u8)> = HashMap::with_capacity(n * 2);
        for t in 0..n {
            let ix = tets.tets[t];
            for (f, face) in TET_FACES.iter().enumerate() {
                let mut key = [ix[face[0]], ix[face[1]], ix[face[2]]];
                key.sort_unstable();
                match map.remove(&key) {
                    Some((ot, of)) => {
                        neighbors[t][f] = ot;
                        neighbors[ot as usize][of as usize] = t as u32;
                    }
                    None => {
                        map.insert(key, (t as u32, f as u8));
                    }
                }
            }
        }
        let boundary: Vec<(u32, u8)> = map.into_values().collect();
        Connectivity { neighbors, boundary, preprocess_seconds: t0.elapsed().as_secs_f64() }
    }
}

/// Stats of one Bunyk render.
#[derive(Debug, Clone)]
pub struct BunykStats {
    pub objects: usize,
    pub preprocess_seconds: f64,
    pub render_seconds: f64,
    pub active_pixels: usize,
    /// Total cell-to-cell marching steps.
    pub cells_marched: u64,
}

pub struct BunykOutput {
    pub frame: Framebuffer,
    pub stats: BunykStats,
}

/// Ray/triangle test returning the `t` parameter only.
#[inline]
fn hit_face(ray: &Ray, a: Vec3, b: Vec3, c: Vec3) -> Option<f32> {
    render::raytrace::bvh::intersect_triangle(ray, a, b - a, c - a).map(|(t, _, _)| t)
}

/// Render with the connectivity marcher. `conn` may be reused across frames.
#[allow(clippy::too_many_arguments)]
pub fn render_bunyk(
    tets: &TetMesh,
    conn: &Connectivity,
    field_name: &str,
    camera: &Camera,
    width: u32,
    height: u32,
    tf: &TransferFunction,
    step_scale: f32,
) -> BunykOutput {
    let field = &tets
        .field(field_name)
        .filter(|f| f.assoc == Assoc::Point)
        .unwrap_or_else(|| panic!("bunyk needs point field {field_name}"))
        .values;
    let t0 = std::time::Instant::now();
    let n_px = (width * height) as usize;
    let bounds = tets.bounds();
    let step = bounds.diagonal() * step_scale;

    let results: Vec<(Color, f32, u64)> = (0..n_px)
        .into_par_iter()
        .map(|i| {
            let px = i as u32 % width;
            let py = i as u32 / width;
            let ray = camera.primary_ray(px, py, width, height, 0.5, 0.5);
            if bounds.intersect_ray(&ray, 0.0, f32::INFINITY).is_none() {
                return (Color::TRANSPARENT, f32::INFINITY, 0);
            }
            // Entry: nearest boundary-face hit.
            let mut entry_t = f32::INFINITY;
            let mut cell = u32::MAX;
            for &(t, f) in &conn.boundary {
                let ix = tets.tets[t as usize];
                let face = TET_FACES[f as usize];
                let a = tets.points[ix[face[0]] as usize];
                let b = tets.points[ix[face[1]] as usize];
                let c = tets.points[ix[face[2]] as usize];
                if let Some(th) = hit_face(&ray, a, b, c) {
                    if th < entry_t {
                        entry_t = th;
                        cell = t;
                    }
                }
            }
            if cell == u32::MAX {
                return (Color::TRANSPARENT, f32::INFINITY, 0);
            }
            // March cell to cell.
            let mut acc = Color::TRANSPARENT;
            let mut t_cur = entry_t + 1e-5;
            let mut marched = 0u64;
            let max_steps = tets.num_tets() as u64 * 4;
            while cell != u32::MAX && marched < max_steps {
                marched += 1;
                let tix = tets.tets[cell as usize];
                // Exit face: nearest forward face hit other than entry.
                let mut exit_t = f32::INFINITY;
                let mut exit_face = usize::MAX;
                for (f, face) in TET_FACES.iter().enumerate() {
                    let a = tets.points[tix[face[0]] as usize];
                    let b = tets.points[tix[face[1]] as usize];
                    let c = tets.points[tix[face[2]] as usize];
                    if let Some(th) = hit_face(&ray, a, b, c) {
                        if th > t_cur && th < exit_t {
                            exit_t = th;
                            exit_face = f;
                        }
                    }
                }
                if exit_face == usize::MAX {
                    break; // numeric corner; give up on this ray
                }
                // Integrate the segment [t_cur, exit_t] by sampling its
                // midpoint scalar (barycentric interpolation).
                let mid = ray.at((t_cur + exit_t) * 0.5);
                let value = barycentric_value(tets, field, cell as usize, mid);
                let seg = exit_t - t_cur;
                let base = tf.sample(value);
                let alpha = 1.0 - (1.0 - base.a.min(0.999)).powf(seg / step.max(1e-9));
                let frag = Color::new(base.r * alpha, base.g * alpha, base.b * alpha, alpha);
                acc = over(acc, frag);
                if acc.a > 0.98 {
                    break;
                }
                cell = conn.neighbors[cell as usize][exit_face];
                t_cur = exit_t + 1e-5;
            }
            (acc, entry_t, marched)
        })
        .collect();

    let mut frame = Framebuffer::new(width, height);
    let mut active = 0usize;
    let mut cells_marched = 0u64;
    for (i, (c, d, m)) in results.into_iter().enumerate() {
        cells_marched += m;
        if c.a > 0.0 {
            frame.color[i] = c.unpremultiplied();
            frame.depth[i] = d;
            active += 1;
        }
    }

    BunykOutput {
        frame,
        stats: BunykStats {
            objects: tets.num_tets(),
            preprocess_seconds: conn.preprocess_seconds,
            render_seconds: t0.elapsed().as_secs_f64(),
            active_pixels: active,
            cells_marched,
        },
    }
}

fn barycentric_value(tets: &TetMesh, field: &[f32], cell: usize, p: Vec3) -> f32 {
    let [a, b, c, d] = tets.tet_points(cell);
    let ix = tets.tets[cell];
    let vol = |p0: Vec3, p1: Vec3, p2: Vec3, p3: Vec3| (p1 - p0).cross(p2 - p0).dot(p3 - p0);
    let v = vol(a, b, c, d);
    if v.abs() < 1e-20 {
        return field[ix[0] as usize];
    }
    let l0 = vol(p, b, c, d) / v;
    let l1 = vol(a, p, c, d) / v;
    let l2 = vol(a, b, p, d) / v;
    let l3 = 1.0 - l0 - l1 - l2;
    field[ix[0] as usize] * l0
        + field[ix[1] as usize] * l1
        + field[ix[2] as usize] * l2
        + field[ix[3] as usize] * l3
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::datasets::{FieldKind, TetDatasetSpec};

    fn tets(n: usize) -> TetMesh {
        TetDatasetSpec { name: "t", cells: [n, n, n], kind: FieldKind::ShockShell }.build(1.0)
    }

    #[test]
    fn connectivity_counts_are_consistent() {
        let t = tets(4);
        let conn = Connectivity::build(&t);
        // Interior faces are shared; boundary faces belong to one tet.
        let total_faces = t.num_tets() * 4;
        let interior = conn.neighbors.iter().flatten().filter(|&&n| n != u32::MAX).count();
        assert_eq!(interior + conn.boundary.len(), total_faces);
        // Neighbor relation is symmetric.
        for (t_i, nb) in conn.neighbors.iter().enumerate() {
            for &o in nb {
                if o != u32::MAX {
                    assert!(
                        conn.neighbors[o as usize].contains(&(t_i as u32)),
                        "asymmetric {t_i} <-> {o}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_face_count_matches_surface() {
        // For an n^3 hex grid split into 6 tets each, every external quad is
        // covered by exactly 2 tet faces, so boundary = 6 * n^2 * 2.
        let t = tets(5);
        let conn = Connectivity::build(&t);
        assert_eq!(conn.boundary.len(), 6 * 5 * 5 * 2);
    }

    #[test]
    fn renders_the_shell() {
        let t = tets(7);
        let conn = Connectivity::build(&t);
        let cam = Camera::close_view(&t.bounds());
        let r = t.field("scalar").unwrap().range().unwrap();
        let tf = TransferFunction::sparse_features(r);
        let out = render_bunyk(&t, &conn, "scalar", &cam, 40, 40, &tf, 0.01);
        assert!(out.stats.active_pixels > 200, "{}", out.stats.active_pixels);
        assert!(out.stats.cells_marched > 1000);
    }

    #[test]
    fn agrees_with_dpp_vr_coverage() {
        let t = tets(6);
        let conn = Connectivity::build(&t);
        let cam = Camera::close_view(&t.bounds());
        let r = t.field("scalar").unwrap().range().unwrap();
        let tf = TransferFunction::sparse_features(r);
        let a = render_bunyk(&t, &conn, "scalar", &cam, 32, 32, &tf, 0.01);
        let b = render::volume_unstructured::render_unstructured(
            &Device::Serial,
            &t,
            "scalar",
            &cam,
            32,
            32,
            &tf,
            &render::volume_unstructured::UvrConfig { depth_samples: 64, ..Default::default() },
        )
        .unwrap();
        let mut both = 0;
        let mut either = 0;
        for i in 0..a.frame.num_pixels() {
            let x = a.frame.color[i].a > 0.01;
            let y = b.frame.color[i].a > 0.01;
            if x || y {
                either += 1;
                if x && y {
                    both += 1;
                }
            }
        }
        assert!(either > 50);
        assert!(both as f64 > either as f64 * 0.6, "{both}/{either}");
    }

    use dpp::Device;
}
