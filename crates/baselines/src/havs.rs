//! HAVS-like projected-tetrahedra volume renderer (the Figure 6 comparator).
//!
//! Hardware-Assisted Visibility Sorting rasterizes tetrahedra after a depth
//! sort, blending out-of-order fragments with a k-buffer. We reproduce the
//! pipeline shape: (1) a radix depth sort of tetrahedra by view-space
//! centroid (the paper replaced HAVS's CPU sort with a GPU radix sort; ours
//! is the `dpp` radix sort), then (2) in-order rasterization of each tet's
//! screen footprint, blending entry-exit ray segments through the transfer
//! function. Cost scales with the number of tetrahedra — which is exactly
//! the regime behaviour Figure 6 contrasts against the sampling DPP-VR.

use dpp::sort::sort_pairs_f32_nonneg;
use dpp::Device;
use mesh::{Assoc, TetMesh};
use render::Framebuffer;
use vecmath::{over, Camera, Color, TransferFunction, Vec3};

/// Timing/shape record for one HAVS render.
#[derive(Debug, Clone)]
pub struct HavsStats {
    pub objects: usize,
    pub sort_seconds: f64,
    pub raster_seconds: f64,
    pub active_pixels: usize,
}

pub struct HavsOutput {
    pub frame: Framebuffer,
    pub stats: HavsStats,
}

/// Render `field_name` of the tet mesh (point-associated) with projected
/// tetrahedra.
pub fn render_havs(
    device: &Device,
    tets: &TetMesh,
    field_name: &str,
    camera: &Camera,
    width: u32,
    height: u32,
    tf: &TransferFunction,
) -> HavsOutput {
    let field = &tets
        .field(field_name)
        .filter(|f| f.assoc == Assoc::Point)
        .unwrap_or_else(|| panic!("HAVS needs point field {field_name}"))
        .values;
    let n = tets.num_tets();
    let fwd = (camera.look_at - camera.position).normalized();
    let st = camera.screen_transform(width, height);

    // --- Visibility sort: back-to-front by centroid view depth. ---
    let t_sort = std::time::Instant::now();
    let depths: Vec<f32> = (0..n)
        .map(|t| {
            let p = tets.tet_points(t);
            let c = (p[0] + p[1] + p[2] + p[3]) * 0.25;
            (c - camera.position).dot(fwd).max(0.0)
        })
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    sort_pairs_f32_nonneg(device, &depths, &mut order);
    let sort_seconds = t_sort.elapsed().as_secs_f64();

    // --- In-order rasterization, back to front (painter's algorithm with
    //     per-fragment absorption). ---
    let t_rast = std::time::Instant::now();
    let mut frame = Framebuffer::new(width, height);
    // Iterate far-to-near so `over(front, acc)` applies the nearer tet last.
    for &ti in order.iter().rev() {
        let t = ti as usize;
        let pts = tets.tet_points(t);
        let ix = tets.tets[t];
        // Screen-space vertices (x, y, view depth).
        let mut sv = [Vec3::ZERO; 4];
        let mut ok = true;
        for (i, p) in pts.iter().enumerate() {
            let d = (*p - camera.position).dot(fwd);
            if d < camera.near * 0.5 {
                ok = false;
                break;
            }
            let s = st.to_screen(*p);
            if !s.is_finite() {
                ok = false;
                break;
            }
            sv[i] = Vec3::new(s.x, s.y, d);
        }
        if !ok {
            continue;
        }
        // Barycentric inverse in screen space for (x, y, z_view).
        let d = sv[3];
        let m0 = sv[0] - d;
        let m1 = sv[1] - d;
        let m2 = sv[2] - d;
        let det = m0.x * (m1.y * m2.z - m2.y * m1.z) - m1.x * (m0.y * m2.z - m2.y * m0.z)
            + m2.x * (m0.y * m1.z - m1.y * m0.z);
        if det.abs() < 1e-12 {
            continue;
        }
        let id = 1.0 / det;
        let inv = [
            [
                (m1.y * m2.z - m2.y * m1.z) * id,
                (m2.x * m1.z - m1.x * m2.z) * id,
                (m1.x * m2.y - m2.x * m1.y) * id,
            ],
            [
                (m2.y * m0.z - m0.y * m2.z) * id,
                (m0.x * m2.z - m2.x * m0.z) * id,
                (m2.x * m0.y - m0.x * m2.y) * id,
            ],
            [
                (m0.y * m1.z - m1.y * m0.z) * id,
                (m1.x * m0.z - m0.x * m1.z) * id,
                (m0.x * m1.y - m1.x * m0.y) * id,
            ],
        ];
        let s_vals = [
            field[ix[0] as usize],
            field[ix[1] as usize],
            field[ix[2] as usize],
            field[ix[3] as usize],
        ];
        let x0 = sv.iter().map(|v| v.x).fold(f32::INFINITY, f32::min).floor().max(0.0) as u32;
        let x1 = (sv.iter().map(|v| v.x).fold(f32::NEG_INFINITY, f32::max).ceil() as i64)
            .min(width as i64 - 1)
            .max(0) as u32;
        let y0 = sv.iter().map(|v| v.y).fold(f32::INFINITY, f32::min).floor().max(0.0) as u32;
        let y1 = (sv.iter().map(|v| v.y).fold(f32::NEG_INFINITY, f32::max).ceil() as i64)
            .min(height as i64 - 1)
            .max(0) as u32;
        let z0 = sv.iter().map(|v| v.z).fold(f32::INFINITY, f32::min);
        let z1 = sv.iter().map(|v| v.z).fold(f32::NEG_INFINITY, f32::max);
        if x0 > x1 || y0 > y1 {
            continue;
        }
        for py in y0..=y1 {
            for px in x0..=x1 {
                // Entry/exit depths of the pixel-center column through the
                // warped tet, found by sampling the z extent.
                let (mut z_in, mut z_out) = (f32::INFINITY, f32::NEG_INFINITY);
                let mut value = 0.0f32;
                let mut hits = 0u32;
                const Z_PROBES: u32 = 6;
                for s in 0..Z_PROBES {
                    let z = z0 + (s as f32 + 0.5) / Z_PROBES as f32 * (z1 - z0);
                    let r = Vec3::new(px as f32 + 0.5, py as f32 + 0.5, z) - d;
                    let l0 = inv[0][0] * r.x + inv[0][1] * r.y + inv[0][2] * r.z;
                    let l1 = inv[1][0] * r.x + inv[1][1] * r.y + inv[1][2] * r.z;
                    let l2 = inv[2][0] * r.x + inv[2][1] * r.y + inv[2][2] * r.z;
                    let l3 = 1.0 - l0 - l1 - l2;
                    if l0 >= -1e-5 && l1 >= -1e-5 && l2 >= -1e-5 && l3 >= -1e-5 {
                        z_in = z_in.min(z);
                        z_out = z_out.max(z);
                        value += s_vals[0] * l0 + s_vals[1] * l1 + s_vals[2] * l2 + s_vals[3] * l3;
                        hits += 1;
                    }
                }
                if hits == 0 {
                    continue;
                }
                let thickness = (z_out - z_in).max((z1 - z0) / Z_PROBES as f32);
                let mean_value = value / hits as f32;
                let base = tf.sample(mean_value);
                // Absorption: alpha grows with segment thickness.
                let alpha = 1.0 - (1.0 - base.a.min(0.999)).powf(thickness * 10.0 + 0.1);
                let frag = Color::new(base.r * alpha, base.g * alpha, base.b * alpha, alpha);
                let pix = frame.index(px, py);
                frame.color[pix] = over(frag, frame.color[pix]);
                frame.depth[pix] = frame.depth[pix].min(z_in);
            }
        }
    }
    // Unpremultiply for display.
    for c in &mut frame.color {
        *c = c.unpremultiplied();
    }
    let raster_seconds = t_rast.elapsed().as_secs_f64();
    let active = frame.active_pixels();

    HavsOutput {
        frame,
        stats: HavsStats { objects: n, sort_seconds, raster_seconds, active_pixels: active },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mesh::datasets::{FieldKind, TetDatasetSpec};

    fn tets() -> TetMesh {
        TetDatasetSpec { name: "t", cells: [8, 8, 8], kind: FieldKind::ShockShell }.build(1.0)
    }

    fn tfn(t: &TetMesh) -> TransferFunction {
        let r = t.field("scalar").unwrap().range().unwrap();
        TransferFunction::sparse_features(r)
    }

    #[test]
    fn renders_something() {
        let t = tets();
        let cam = Camera::close_view(&t.bounds());
        let out = render_havs(&Device::Serial, &t, "scalar", &cam, 48, 48, &tfn(&t));
        assert!(out.stats.active_pixels > 300, "{}", out.stats.active_pixels);
        assert_eq!(out.stats.objects, t.num_tets());
        assert!(out.stats.sort_seconds >= 0.0);
    }

    #[test]
    fn roughly_agrees_with_dpp_vr_coverage() {
        // Both volume renderers should light up a similar pixel set.
        let t = tets();
        let cam = Camera::close_view(&t.bounds());
        let tf = tfn(&t);
        let havs = render_havs(&Device::Serial, &t, "scalar", &cam, 40, 40, &tf);
        let dpp = render::volume_unstructured::render_unstructured(
            &Device::Serial,
            &t,
            "scalar",
            &cam,
            40,
            40,
            &tf,
            &render::volume_unstructured::UvrConfig { depth_samples: 64, ..Default::default() },
        )
        .unwrap();
        let mut both = 0;
        let mut either = 0;
        for i in 0..havs.frame.num_pixels() {
            let a = havs.frame.color[i].a > 0.01;
            let b = dpp.frame.color[i].a > 0.01;
            if a || b {
                either += 1;
                if a && b {
                    both += 1;
                }
            }
        }
        assert!(either > 100);
        assert!(both as f64 > either as f64 * 0.6, "coverage overlap {both}/{either}");
    }

    #[test]
    fn cost_tracks_data_size() {
        // HAVS is object-order: more tets => more sort + raster work; we
        // check the *work* proxy (objects), not wall time, to stay robust.
        let small =
            TetDatasetSpec { name: "s", cells: [6, 6, 6], kind: FieldKind::ShockShell }.build(1.0);
        let big = TetDatasetSpec { name: "b", cells: [12, 12, 12], kind: FieldKind::ShockShell }
            .build(1.0);
        assert_eq!(big.num_tets(), small.num_tets() * 8);
    }
}
