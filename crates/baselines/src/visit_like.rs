//! VisIt-style sampling volume renderer (the Table 9 comparator).
//!
//! VisIt extracts samples by "rasterizing" geometry: each cell is
//! transformed to screen space (SS), sliced by pixel columns to extract
//! sample runs in depth (S), and the samples are composited per pixel with
//! early ray termination (C). It runs serially (the paper compared against
//! one core for exactly this reason) and amortizes per-cell setup across a
//! cell's samples — beneficial for large cells, overhead-bound for small
//! ones, which is the crossover Table 9 exhibits.

use mesh::{Assoc, TetMesh};
use render::Framebuffer;
use vecmath::{over, Camera, Color, TransferFunction, Vec3};

/// Phase times matching Table 9's columns.
#[derive(Debug, Clone)]
pub struct VisitStats {
    /// SS: screen-space transformation seconds.
    pub screen_space_seconds: f64,
    /// S: sampling seconds.
    pub sampling_seconds: f64,
    /// C: compositing seconds.
    pub compositing_seconds: f64,
    pub total_seconds: f64,
    pub objects: usize,
    pub active_pixels: usize,
}

pub struct VisitOutput {
    pub frame: Framebuffer,
    pub stats: VisitStats,
}

/// Serial sampling volume render in VisIt's style.
pub fn render_visit(
    tets: &TetMesh,
    field_name: &str,
    camera: &Camera,
    width: u32,
    height: u32,
    depth_samples: u32,
    tf: &TransferFunction,
) -> VisitOutput {
    let field = &tets
        .field(field_name)
        .filter(|f| f.assoc == Assoc::Point)
        .unwrap_or_else(|| panic!("visit renderer needs point field {field_name}"))
        .values;
    let t_total = std::time::Instant::now();
    let n = tets.num_tets();
    let fwd = (camera.look_at - camera.position).normalized();
    let st = camera.screen_transform(width, height);

    // Depth range of the whole data set.
    let mut z0 = f32::INFINITY;
    let mut z1 = f32::NEG_INFINITY;
    for p in &tets.points {
        let d = (*p - camera.position).dot(fwd);
        z0 = z0.min(d);
        z1 = z1.max(d);
    }
    z0 = z0.max(camera.near);
    let s_total = depth_samples.max(2);
    let dz = (z1 - z0).max(1e-6) / s_total as f32;

    // --- SS: transform all cells to screen space (serial). ---
    let t_ss = std::time::Instant::now();
    struct ScreenCell {
        v: [Vec3; 4],
        inv: [[f32; 3]; 3],
        s: [f32; 4],
    }
    let mut cells: Vec<Option<ScreenCell>> = Vec::with_capacity(n);
    for t in 0..n {
        let pts = tets.tet_points(t);
        let ix = tets.tets[t];
        let mut sv = [Vec3::ZERO; 4];
        let mut ok = true;
        for (i, p) in pts.iter().enumerate() {
            let d = (*p - camera.position).dot(fwd);
            if d < camera.near * 0.5 {
                ok = false;
                break;
            }
            let s = st.to_screen(*p);
            if !s.is_finite() {
                ok = false;
                break;
            }
            sv[i] = Vec3::new(s.x, s.y, d);
        }
        if !ok {
            cells.push(None);
            continue;
        }
        let d = sv[3];
        let m0 = sv[0] - d;
        let m1 = sv[1] - d;
        let m2 = sv[2] - d;
        let det = m0.x * (m1.y * m2.z - m2.y * m1.z) - m1.x * (m0.y * m2.z - m2.y * m0.z)
            + m2.x * (m0.y * m1.z - m1.y * m0.z);
        if det.abs() < 1e-12 {
            cells.push(None);
            continue;
        }
        let id = 1.0 / det;
        cells.push(Some(ScreenCell {
            v: sv,
            inv: [
                [
                    (m1.y * m2.z - m2.y * m1.z) * id,
                    (m2.x * m1.z - m1.x * m2.z) * id,
                    (m1.x * m2.y - m2.x * m1.y) * id,
                ],
                [
                    (m2.y * m0.z - m0.y * m2.z) * id,
                    (m0.x * m2.z - m2.x * m0.z) * id,
                    (m2.x * m0.y - m0.x * m2.y) * id,
                ],
                [
                    (m0.y * m1.z - m1.y * m0.z) * id,
                    (m1.x * m0.z - m0.x * m1.z) * id,
                    (m0.x * m1.y - m1.x * m0.y) * id,
                ],
            ],
            s: [
                field[ix[0] as usize],
                field[ix[1] as usize],
                field[ix[2] as usize],
                field[ix[3] as usize],
            ],
        }));
    }
    let screen_space_seconds = t_ss.elapsed().as_secs_f64();

    // --- S: slice cells by pixel columns into the sample buffer (serial). ---
    let t_s = std::time::Instant::now();
    const EMPTY: u32 = 0xFFFF_FFFF;
    let n_px = (width * height) as usize;
    let mut samples: Vec<u32> = vec![EMPTY; n_px * s_total as usize];
    for cell in cells.iter().flatten() {
        let sv = &cell.v;
        let x0 = sv.iter().map(|v| v.x).fold(f32::INFINITY, f32::min).floor().max(0.0) as u32;
        let x1 = (sv.iter().map(|v| v.x).fold(f32::NEG_INFINITY, f32::max).ceil() as i64)
            .min(width as i64 - 1)
            .max(0) as u32;
        let y0 = sv.iter().map(|v| v.y).fold(f32::INFINITY, f32::min).floor().max(0.0) as u32;
        let y1 = (sv.iter().map(|v| v.y).fold(f32::NEG_INFINITY, f32::max).ceil() as i64)
            .min(height as i64 - 1)
            .max(0) as u32;
        if x0 > x1 || y0 > y1 {
            continue;
        }
        let bz0 = sv.iter().map(|v| v.z).fold(f32::INFINITY, f32::min);
        let bz1 = sv.iter().map(|v| v.z).fold(f32::NEG_INFINITY, f32::max);
        let s_lo = (((bz0 - z0) / dz).floor().max(0.0)) as u32;
        let s_hi = ((((bz1 - z0) / dz).ceil()) as i64).min(s_total as i64 - 1).max(0) as u32;
        for py in y0..=y1 {
            for px in x0..=x1 {
                let pix = (py * width + px) as usize;
                for sl in s_lo..=s_hi {
                    let z = z0 + (sl as f32 + 0.5) * dz;
                    let r = Vec3::new(px as f32 + 0.5, py as f32 + 0.5, z) - sv[3];
                    let l0 = cell.inv[0][0] * r.x + cell.inv[0][1] * r.y + cell.inv[0][2] * r.z;
                    let l1 = cell.inv[1][0] * r.x + cell.inv[1][1] * r.y + cell.inv[1][2] * r.z;
                    let l2 = cell.inv[2][0] * r.x + cell.inv[2][1] * r.y + cell.inv[2][2] * r.z;
                    let l3 = 1.0 - l0 - l1 - l2;
                    if l0 >= -1e-5 && l1 >= -1e-5 && l2 >= -1e-5 && l3 >= -1e-5 {
                        let v = cell.s[0] * l0 + cell.s[1] * l1 + cell.s[2] * l2 + cell.s[3] * l3;
                        samples[pix * s_total as usize + sl as usize] = v.to_bits();
                    }
                }
            }
        }
    }
    let sampling_seconds = t_s.elapsed().as_secs_f64();

    // --- C: per-pixel front-to-back compositing with early termination. ---
    let t_c = std::time::Instant::now();
    let mut frame = Framebuffer::new(width, height);
    let mut active = 0usize;
    for pix in 0..n_px {
        let mut acc = Color::TRANSPARENT;
        for sl in 0..s_total as usize {
            let bits = samples[pix * s_total as usize + sl];
            if bits == EMPTY {
                continue;
            }
            let col = tf.sample(f32::from_bits(bits));
            if col.a > 0.0 {
                acc = over(acc, col.premultiplied());
                if acc.a > 0.98 {
                    break;
                }
            }
        }
        if acc.a > 0.0 {
            frame.color[pix] = acc.unpremultiplied();
            frame.depth[pix] = 0.0;
            active += 1;
        }
    }
    let compositing_seconds = t_c.elapsed().as_secs_f64();

    VisitOutput {
        frame,
        stats: VisitStats {
            screen_space_seconds,
            sampling_seconds,
            compositing_seconds,
            total_seconds: t_total.elapsed().as_secs_f64(),
            objects: n,
            active_pixels: active,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::Device;
    use mesh::datasets::{FieldKind, TetDatasetSpec};
    use render::volume_unstructured::{render_unstructured, UvrConfig};

    fn tets(n: usize) -> TetMesh {
        TetDatasetSpec { name: "t", cells: [n, n, n], kind: FieldKind::ShockShell }.build(1.0)
    }

    fn tfn(t: &TetMesh) -> TransferFunction {
        TransferFunction::sparse_features(t.field("scalar").unwrap().range().unwrap())
    }

    #[test]
    fn phases_are_timed() {
        let t = tets(7);
        let cam = Camera::close_view(&t.bounds());
        let out = render_visit(&t, "scalar", &cam, 40, 40, 48, &tfn(&t));
        assert!(out.stats.screen_space_seconds >= 0.0);
        assert!(out.stats.sampling_seconds > 0.0);
        assert!(out.stats.total_seconds >= out.stats.sampling_seconds);
        assert!(out.stats.active_pixels > 200);
    }

    #[test]
    fn image_matches_dpp_vr_closely() {
        // Both are sampling-based with identical sample grids, so images
        // should agree nearly exactly (no early termination differences with
        // term > 1 in DPP and 0.98 in both... keep same threshold).
        let t = tets(6);
        let cam = Camera::close_view(&t.bounds());
        let tf = tfn(&t);
        let a = render_visit(&t, "scalar", &cam, 32, 32, 50, &tf);
        let b = render_unstructured(
            &Device::Serial,
            &t,
            "scalar",
            &cam,
            32,
            32,
            &tf,
            &UvrConfig { depth_samples: 50, num_passes: 1, ..Default::default() },
        )
        .unwrap();
        let diff = a.frame.mean_abs_diff(&b.frame);
        assert!(diff < 0.02, "mean diff {diff}");
    }

    #[test]
    fn more_samples_cost_more_sampling_work() {
        let t = tets(6);
        let cam = Camera::close_view(&t.bounds());
        let tf = tfn(&t);
        let a = render_visit(&t, "scalar", &cam, 32, 32, 16, &tf);
        let b = render_visit(&t, "scalar", &cam, 32, 32, 256, &tf);
        // 16x the samples: sampling time must grow (allow slack for noise).
        assert!(b.stats.sampling_seconds > a.stats.sampling_seconds);
    }
}
