//! Hand-tuned ray tracer (the Embree / OptiX Prime comparator).
//!
//! Differences from the DPP tracer that buy its throughput edge:
//! * **SAH binned build** — slower to construct, but the resulting tree
//!   cuts traversal work substantially versus the LBVH.
//! * **Fused kernel** — generation, traversal, and hit resolution in one
//!   loop per ray; no intermediate hit arrays or primitive dispatch.
//! * **Packet scheduling** — scanline tiles per worker (`embree` profile);
//!   Morton ray order (`optix` profile) for memory coherence.

use mesh::TriMesh;
use rayon::prelude::*;
use render::raytrace::bvh::intersect_triangle;
use render::raytrace::{Hit, TriGeometry};
use vecmath::{morton2, Aabb, Camera, Ray, Vec3};

/// Which vendor profile to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// CPU-tuned: SAH tree, scanline packet scheduling.
    Embree,
    /// Throughput-tuned: SAH tree, Morton-ordered rays, bigger leaves.
    Optix,
}

const SAH_BINS: usize = 16;

/// Flat SAH BVH node (same layout idea as the DPP tracer's, separate type to
/// keep the implementations honest).
#[derive(Debug, Clone, Copy)]
struct Node {
    aabb: Aabb,
    right: u32,
    start: u32,
    count: u32,
}

/// The tuned tracer: geometry + SAH BVH.
pub struct TunedTracer {
    pub geom: TriGeometry,
    nodes: Vec<Node>,
    order: Vec<u32>,
    pub profile: Profile,
    pub build_seconds: f64,
}

impl TunedTracer {
    pub fn new(mesh: &TriMesh, profile: Profile) -> TunedTracer {
        let geom = TriGeometry::from_mesh(mesh);
        Self::from_geometry(geom, profile)
    }

    pub fn from_geometry(geom: TriGeometry, profile: Profile) -> TunedTracer {
        let t0 = std::time::Instant::now();
        let n = geom.num_tris();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let centroids: Vec<Vec3> = (0..n).map(|t| geom.tri_centroid(t)).collect();
        let aabbs: Vec<Aabb> = (0..n).map(|t| geom.tri_aabb(t)).collect();
        let mut nodes = Vec::with_capacity(2 * n.max(1));
        let leaf_size = match profile {
            Profile::Embree => 4,
            Profile::Optix => 8,
        };
        if n > 0 {
            build_sah(&mut nodes, &mut order, &centroids, &aabbs, 0, n, leaf_size);
        }
        TunedTracer { geom, nodes, order, profile, build_seconds: t0.elapsed().as_secs_f64() }
    }

    /// Closest hit with the fused while-loop kernel.
    #[inline]
    pub fn closest_hit(&self, ray: &Ray) -> Hit {
        if self.nodes.is_empty() {
            return Hit::MISS;
        }
        let mut best = Hit::MISS;
        let mut closest = f32::INFINITY;
        let mut stack = [0u32; 64];
        let mut sp = 1usize;
        stack[0] = 0;
        while sp > 0 {
            sp -= 1;
            let ni = stack[sp] as usize;
            let node = &self.nodes[ni];
            if node.aabb.intersect_ray(ray, 0.0, closest).is_none() {
                continue;
            }
            if node.count > 0 {
                for s in node.start..node.start + node.count {
                    let p = self.order[s as usize] as usize;
                    if let Some((t, u, v)) =
                        intersect_triangle(ray, self.geom.v0[p], self.geom.e1[p], self.geom.e2[p])
                    {
                        if t < closest {
                            closest = t;
                            best = Hit { t, prim: self.order[s as usize], u, v };
                        }
                    }
                }
            } else {
                // Ordered descent: visit the nearer child first.
                let l = ni + 1;
                let r = node.right as usize;
                let dl = self.nodes[l].aabb.intersect_ray(ray, 0.0, closest);
                let dr = self.nodes[r].aabb.intersect_ray(ray, 0.0, closest);
                match (dl, dr) {
                    (Some((tl, _)), Some((tr, _))) => {
                        let (near, far) = if tl <= tr { (l, r) } else { (r, l) };
                        stack[sp] = far as u32;
                        sp += 1;
                        stack[sp] = near as u32;
                        sp += 1;
                    }
                    (Some(_), None) => {
                        stack[sp] = l as u32;
                        sp += 1;
                    }
                    (None, Some(_)) => {
                        stack[sp] = r as u32;
                        sp += 1;
                    }
                    (None, None) => {}
                }
            }
        }
        best
    }

    /// WORKLOAD1: intersect every primary ray of a `w x h` image; returns
    /// (hit count, elapsed seconds). The benchmark the paper's Tables 3-5
    /// report as rays/second.
    pub fn intersect_image(&self, camera: &Camera, width: u32, height: u32) -> (usize, f64) {
        let t0 = std::time::Instant::now();
        let n = (width * height) as usize;
        let hits: usize = match self.profile {
            Profile::Embree => {
                // Scanline packets: one row per task.
                (0..height)
                    .into_par_iter()
                    .map(|py| {
                        let mut h = 0usize;
                        for px in 0..width {
                            let ray = camera.primary_ray(px, py, width, height, 0.5, 0.5);
                            h += self.closest_hit(&ray).is_hit() as usize;
                        }
                        h
                    })
                    .sum()
            }
            Profile::Optix => {
                // Morton-ordered rays in fixed-size warps.
                let mut codes: Vec<(u64, u32)> =
                    (0..n as u32).map(|i| (morton2(i % width, i / width), i)).collect();
                codes.sort_unstable_by_key(|c| c.0);
                codes
                    .par_chunks(256)
                    .map(|warp| {
                        let mut h = 0usize;
                        for &(_, i) in warp {
                            let ray =
                                camera.primary_ray(i % width, i / width, width, height, 0.5, 0.5);
                            h += self.closest_hit(&ray).is_hit() as usize;
                        }
                        h
                    })
                    .sum()
            }
        };
        (hits, t0.elapsed().as_secs_f64())
    }
}

/// Recursive SAH binned build; returns the node index.
#[allow(clippy::too_many_arguments)]
fn build_sah(
    nodes: &mut Vec<Node>,
    order: &mut [u32],
    centroids: &[Vec3],
    aabbs: &[Aabb],
    start: usize,
    end: usize,
    leaf_size: usize,
) -> usize {
    let my = nodes.len();
    let mut bounds = Aabb::empty();
    let mut cbounds = Aabb::empty();
    for &p in &order[start..end] {
        bounds = bounds.union(&aabbs[p as usize]);
        cbounds.expand(centroids[p as usize]);
    }
    let count = end - start;
    if count <= leaf_size {
        nodes.push(Node { aabb: bounds, right: 0, start: start as u32, count: count as u32 });
        return my;
    }

    // Binned SAH over the longest centroid axis.
    let axis = cbounds.longest_axis();
    let lo = cbounds.min[axis];
    let extent = cbounds.max[axis] - lo;
    if extent <= 1e-12 {
        // Degenerate spread: median split.
        let mid = start + count / 2;
        nodes.push(Node { aabb: bounds, right: 0, start: 0, count: 0 });
        let l = build_sah(nodes, order, centroids, aabbs, start, mid, leaf_size);
        debug_assert_eq!(l, my + 1);
        let r = build_sah(nodes, order, centroids, aabbs, mid, end, leaf_size);
        nodes[my].right = r as u32;
        return my;
    }
    let bin_of = |p: u32| -> usize {
        let t = (centroids[p as usize][axis] - lo) / extent;
        ((t * SAH_BINS as f32) as usize).min(SAH_BINS - 1)
    };
    let mut bin_counts = [0usize; SAH_BINS];
    let mut bin_bounds = [Aabb::empty(); SAH_BINS];
    for &p in &order[start..end] {
        let b = bin_of(p);
        bin_counts[b] += 1;
        bin_bounds[b] = bin_bounds[b].union(&aabbs[p as usize]);
    }
    // Sweep for the cheapest split.
    let mut left_area = [0.0f32; SAH_BINS];
    let mut left_count = [0usize; SAH_BINS];
    let mut acc_b = Aabb::empty();
    let mut acc_n = 0usize;
    for i in 0..SAH_BINS {
        acc_b = acc_b.union(&bin_bounds[i]);
        acc_n += bin_counts[i];
        left_area[i] = acc_b.surface_area();
        left_count[i] = acc_n;
    }
    let mut best_cost = f32::INFINITY;
    let mut best_split = SAH_BINS / 2;
    let mut acc_b = Aabb::empty();
    let mut acc_n = 0usize;
    for i in (1..SAH_BINS).rev() {
        acc_b = acc_b.union(&bin_bounds[i]);
        acc_n += bin_counts[i];
        let cost =
            left_area[i - 1] * left_count[i - 1] as f32 + acc_b.surface_area() * acc_n as f32;
        if cost < best_cost && left_count[i - 1] > 0 && acc_n > 0 {
            best_cost = cost;
            best_split = i;
        }
    }
    // Partition in place.
    let slice = &mut order[start..end];
    let mut i = 0usize;
    let mut j = slice.len();
    while i < j {
        if bin_of(slice[i]) < best_split {
            i += 1;
        } else {
            j -= 1;
            slice.swap(i, j);
        }
    }
    let mut mid = start + i;
    if mid == start || mid == end {
        mid = start + count / 2; // SAH failed to separate; fall back
    }

    nodes.push(Node { aabb: bounds, right: 0, start: 0, count: 0 });
    let l = build_sah(nodes, order, centroids, aabbs, start, mid, leaf_size);
    debug_assert_eq!(l, my + 1);
    let r = build_sah(nodes, order, centroids, aabbs, mid, end, leaf_size);
    nodes[my].right = r as u32;
    my
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::Device;
    use mesh::datasets::{field_grid, FieldKind};
    use mesh::isosurface::isosurface;
    use render::raytrace::{Bvh, RayTracer};

    fn scene() -> TriMesh {
        let g = field_grid(FieldKind::ShockShell, [18, 18, 18]);
        isosurface(&g, "scalar", 0.5, None)
    }

    #[test]
    fn agrees_with_dpp_tracer_hits() {
        let m = scene();
        let tuned = TunedTracer::new(&m, Profile::Embree);
        let geom = TriGeometry::from_mesh(&m);
        let bvh = Bvh::build(&Device::Serial, &geom);
        let cam = Camera::close_view(&geom.bounds);
        let mut checked = 0;
        for py in (0..64).step_by(5) {
            for px in (0..64).step_by(5) {
                let ray = cam.primary_ray(px, py, 64, 64, 0.5, 0.5);
                let a = tuned.closest_hit(&ray);
                let b = bvh.closest_hit(&geom, &ray);
                assert_eq!(a.is_hit(), b.is_hit(), "({px},{py})");
                if a.is_hit() {
                    assert!((a.t - b.t).abs() < 1e-3, "t {} vs {}", a.t, b.t);
                    checked += 1;
                }
            }
        }
        assert!(checked > 10);
    }

    #[test]
    fn both_profiles_count_the_same_hits() {
        let m = scene();
        let cam = {
            let g = TriGeometry::from_mesh(&m);
            Camera::close_view(&g.bounds)
        };
        let e = TunedTracer::new(&m, Profile::Embree);
        let o = TunedTracer::new(&m, Profile::Optix);
        let (he, _) = e.intersect_image(&cam, 48, 48);
        let (ho, _) = o.intersect_image(&cam, 48, 48);
        assert_eq!(he, ho);
        assert!(he > 200);
    }

    #[test]
    fn matches_dpp_tracer_workload1_count() {
        let m = scene();
        let tuned = TunedTracer::new(&m, Profile::Embree);
        let geom = TriGeometry::from_mesh(&m);
        let cam = Camera::close_view(&geom.bounds);
        let (hits, _) = tuned.intersect_image(&cam, 40, 40);
        let rt = RayTracer::new(Device::Serial, geom);
        let out = rt.render(&cam, 40, 40, &render::raytrace::RtConfig::workload1());
        assert_eq!(hits, out.stats.active_pixels);
    }

    #[test]
    fn empty_scene() {
        let tuned = TunedTracer::new(&TriMesh::default(), Profile::Embree);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        assert!(!tuned.closest_hit(&ray).is_hit());
    }

    #[test]
    fn sah_tree_visits_fewer_tests_than_lbvh_on_average() {
        // Indirect check: SAH leaves are smaller (leaf_size 4) and the tree
        // is deeper but tighter; verify structure sanity.
        let m = scene();
        let t = TunedTracer::new(&m, Profile::Embree);
        let leaves = t.nodes.iter().filter(|n| n.count > 0).count();
        assert!(leaves >= m.num_tris() / 8);
        // Every primitive referenced exactly once.
        let mut seen = vec![false; m.num_tris()];
        for n in &t.nodes {
            if n.count > 0 {
                for s in n.start..n.start + n.count {
                    let p = t.order[s as usize] as usize;
                    assert!(!seen[p]);
                    seen[p] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
