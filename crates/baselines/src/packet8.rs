//! 8-wide ray-packet traversal — the ISPC back-end stand-in (Table 5).
//!
//! Chapter II's Xeon Phi experiment swapped EAVL's scalar OpenMP back-end for
//! an ISPC back-end that fills the vector units, observing 5-9x speedups with
//! no algorithm change. We reproduce the comparison's structure: the same
//! LBVH and Möller-Trumbore math, but eight coherent primary rays advance
//! through the tree together in structure-of-arrays lanes ([`dpp::simd`]
//! types that LLVM auto-vectorizes), amortizing node fetches across the
//! packet.

use dpp::simd::F32x8;
use render::raytrace::{Bvh, TriGeometry};
use vecmath::{Camera, Ray};

/// Eight rays in SoA lanes with per-lane state.
struct RayPacket {
    ox: F32x8,
    oy: F32x8,
    oz: F32x8,
    dx: F32x8,
    dy: F32x8,
    dz: F32x8,
    inv_dx: F32x8,
    inv_dy: F32x8,
    inv_dz: F32x8,
    t: [f32; 8],
    hit: [bool; 8],
}

impl RayPacket {
    fn from_rays(rays: &[Ray]) -> RayPacket {
        let get = |f: fn(&Ray) -> f32| -> F32x8 {
            let mut a = [0.0f32; 8];
            for (i, r) in rays.iter().take(8).enumerate() {
                a[i] = f(r);
            }
            // Pad with the last ray so all lanes are valid.
            if let Some(last) = rays.last() {
                for slot in a.iter_mut().skip(rays.len().min(8)) {
                    *slot = f(last);
                }
            }
            F32x8(a)
        };
        RayPacket {
            ox: get(|r| r.origin.x),
            oy: get(|r| r.origin.y),
            oz: get(|r| r.origin.z),
            dx: get(|r| r.dir.x),
            dy: get(|r| r.dir.y),
            dz: get(|r| r.dir.z),
            inv_dx: get(|r| r.inv_dir.x),
            inv_dy: get(|r| r.inv_dir.y),
            inv_dz: get(|r| r.inv_dir.z),
            t: [f32::INFINITY; 8],
            hit: [false; 8],
        }
    }

    /// 8-wide slab test: true if ANY lane's interval is non-empty.
    #[inline]
    fn any_hits_aabb(&self, bb: &vecmath::Aabb) -> bool {
        let t0x = F32x8::splat(bb.min.x).sub(self.ox).mul(self.inv_dx);
        let t1x = F32x8::splat(bb.max.x).sub(self.ox).mul(self.inv_dx);
        let t0y = F32x8::splat(bb.min.y).sub(self.oy).mul(self.inv_dy);
        let t1y = F32x8::splat(bb.max.y).sub(self.oy).mul(self.inv_dy);
        let t0z = F32x8::splat(bb.min.z).sub(self.oz).mul(self.inv_dz);
        let t1z = F32x8::splat(bb.max.z).sub(self.oz).mul(self.inv_dz);
        let near = t0x.min(t1x).max(t0y.min(t1y)).max(t0z.min(t1z)).max(F32x8::splat(0.0));
        let far = t0x.max(t1x).min(t0y.max(t1y)).min(t0z.max(t1z)).min(F32x8(self.t));
        near.le(far).iter().any(|&b| b)
    }

    /// 8-wide Möller-Trumbore against one triangle; updates lane hits.
    #[inline]
    fn intersect_tri(&mut self, v0: vecmath::Vec3, e1: vecmath::Vec3, e2: vecmath::Vec3) {
        // p = dir x e2
        let px = self.dy.mul(F32x8::splat(e2.z)).sub(self.dz.mul(F32x8::splat(e2.y)));
        let py = self.dz.mul(F32x8::splat(e2.x)).sub(self.dx.mul(F32x8::splat(e2.z)));
        let pz = self.dx.mul(F32x8::splat(e2.y)).sub(self.dy.mul(F32x8::splat(e2.x)));
        // det = e1 . p
        let det = px
            .mul(F32x8::splat(e1.x))
            .add(py.mul(F32x8::splat(e1.y)))
            .add(pz.mul(F32x8::splat(e1.z)));
        // tv = origin - v0
        let tvx = self.ox.sub(F32x8::splat(v0.x));
        let tvy = self.oy.sub(F32x8::splat(v0.y));
        let tvz = self.oz.sub(F32x8::splat(v0.z));
        // q = tv x e1
        let qx = tvy.mul(F32x8::splat(e1.z)).sub(tvz.mul(F32x8::splat(e1.y)));
        let qy = tvz.mul(F32x8::splat(e1.x)).sub(tvx.mul(F32x8::splat(e1.z)));
        let qz = tvx.mul(F32x8::splat(e1.y)).sub(tvy.mul(F32x8::splat(e1.x)));
        for l in 0..8 {
            let d = det.0[l];
            if d.abs() < 1e-12 {
                continue;
            }
            let inv = 1.0 / d;
            let u = (tvx.0[l] * px.0[l] + tvy.0[l] * py.0[l] + tvz.0[l] * pz.0[l]) * inv;
            if !(-1e-6..=1.0 + 1e-6).contains(&u) {
                continue;
            }
            let v =
                (self.dx.0[l] * qx.0[l] + self.dy.0[l] * qy.0[l] + self.dz.0[l] * qz.0[l]) * inv;
            if v < -1e-6 || u + v > 1.0 + 1e-6 {
                continue;
            }
            let t = (e2.x * qx.0[l] + e2.y * qy.0[l] + e2.z * qz.0[l]) * inv;
            if t > 1e-6 && t < self.t[l] {
                self.t[l] = t;
                self.hit[l] = true;
            }
        }
    }
}

/// WORKLOAD1 over a whole image with 8-ray packets against the DPP tracer's
/// own LBVH (same tree as the scalar back-end: only the *back-end* differs).
/// Returns (hit count, elapsed seconds).
pub fn intersect_image_packets(
    geom: &TriGeometry,
    bvh: &Bvh,
    camera: &Camera,
    width: u32,
    height: u32,
) -> (usize, f64) {
    use rayon::prelude::*;
    let t0 = std::time::Instant::now();
    let hits: usize = (0..height)
        .into_par_iter()
        .map(|py| {
            let mut row_hits = 0usize;
            let mut px = 0u32;
            while px < width {
                let lanes = (width - px).min(8);
                let rays: Vec<Ray> = (0..lanes)
                    .map(|l| camera.primary_ray(px + l, py, width, height, 0.5, 0.5))
                    .collect();
                let mut packet = RayPacket::from_rays(&rays);
                traverse_packet(geom, bvh, &mut packet);
                row_hits += packet.hit.iter().take(lanes as usize).filter(|&&h| h).count();
                px += lanes;
            }
            row_hits
        })
        .sum();
    (hits, t0.elapsed().as_secs_f64())
}

fn traverse_packet(geom: &TriGeometry, bvh: &Bvh, packet: &mut RayPacket) {
    if bvh.nodes.is_empty() {
        return;
    }
    let mut stack = [0u32; 64];
    let mut sp = 1usize;
    stack[0] = 0;
    while sp > 0 {
        sp -= 1;
        let ni = stack[sp] as usize;
        let node = &bvh.nodes[ni];
        if !packet.any_hits_aabb(&node.aabb) {
            continue;
        }
        if node.count > 0 {
            for s in node.start..node.start + node.count {
                let p = bvh.prim_order[s as usize] as usize;
                packet.intersect_tri(geom.v0[p], geom.e1[p], geom.e2[p]);
            }
        } else {
            stack[sp] = node.right;
            sp += 1;
            stack[sp] = ni as u32 + 1;
            sp += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpp::Device;
    use mesh::datasets::{field_grid, FieldKind};
    use mesh::isosurface::isosurface;
    use render::raytrace::{RayTracer, RtConfig};

    fn setup() -> (TriGeometry, Bvh, Camera) {
        let g = field_grid(FieldKind::ShockShell, [16, 16, 16]);
        let m = isosurface(&g, "scalar", 0.5, None);
        let geom = TriGeometry::from_mesh(&m);
        let bvh = Bvh::build(&Device::Serial, &geom);
        let cam = Camera::close_view(&geom.bounds);
        (geom, bvh, cam)
    }

    #[test]
    fn packets_agree_with_scalar_backend() {
        let (geom, bvh, cam) = setup();
        let (hits, _) = intersect_image_packets(&geom, &bvh, &cam, 56, 40);
        let rt = RayTracer::new(Device::Serial, geom);
        let out = rt.render(&cam, 56, 40, &RtConfig::workload1());
        assert_eq!(hits, out.stats.active_pixels);
    }

    #[test]
    fn non_multiple_of_eight_widths() {
        let (geom, bvh, cam) = setup();
        // Width 53 exercises the partial-packet tail.
        let (hits53, _) = intersect_image_packets(&geom, &bvh, &cam, 53, 31);
        let rt = RayTracer::new(Device::Serial, geom);
        let out = rt.render(&cam, 53, 31, &RtConfig::workload1());
        assert_eq!(hits53, out.stats.active_pixels);
    }

    #[test]
    fn empty_scene_no_hits() {
        let geom = TriGeometry::from_mesh(&mesh::TriMesh::default());
        let bvh = Bvh::build(&Device::Serial, &geom);
        let cam = Camera::default();
        let (hits, _) = intersect_image_packets(&geom, &bvh, &cam, 16, 16);
        assert_eq!(hits, 0);
    }
}
