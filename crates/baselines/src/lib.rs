//! Architecture-specific comparator renderers.
//!
//! The dissertation validates its data-parallel renderers against hand-tuned
//! systems: Intel Embree and NVIDIA OptiX Prime for ray tracing (Tables 3-5),
//! HAVS for projected-tetrahedra volume rendering (Figure 6), the Bunyk
//! connectivity ray caster (Figure 7), and VisIt's sampling volume renderer
//! (Table 9). Those codebases are C++/CUDA and partly closed; this crate
//! re-implements each *algorithm* with the tunings that gave the originals
//! their edge over a primitive-composed implementation:
//!
//! * [`tuned`] — SAH-built BVH (higher build cost, much better tree quality
//!   than the DPP tracer's LBVH) with a fused single-kernel traversal loop:
//!   no intermediate hit arrays, no primitive-dispatch overhead. `embree`
//!   profile parallelizes scanline packets; `optix` profile adds
//!   Morton-ordered rays (the GPU throughput trick).
//! * [`havs`] — projected tetrahedra with a depth sort and in-order
//!   fragment blending (the k-buffer pipeline, serialized).
//! * [`bunyk`] — face-connectivity unstructured ray marching with the
//!   expensive serial adjacency preprocessing step the paper calls out.
//! * [`visit_like`] — VisIt's slice-based sampling volume renderer: serial,
//!   per-cell 3D rasterization into a sample buffer, then compositing with
//!   early ray termination (the SS / S / C phases of Table 9).

pub mod bunyk;
pub mod havs;
pub mod packet8;
pub mod tuned;
pub mod visit_like;
