//! Integration: sort-last distributed rendering. Disjoint sub-domain renders
//! composited across simulated ranks must equal the single-rank render of
//! the whole scene, for every compositing algorithm.

use compositing::{
    binary_swap, binary_swap_opts, direct_send, direct_send_opts, radix_k, radix_k_opts, reference,
    CompositeMode, ExchangeOptions, RankImage,
};
use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::isosurface::isosurface;
use mpirt::{NetModel, World};
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use strawman::api::to_rank_image;
use vecmath::Camera;

const SIDE: u32 = 96;

/// Split the scene's triangles into `ranks` z-slabs; render slab `rank`.
fn rank_mesh(rank: usize, ranks: usize) -> mesh::TriMesh {
    let grid = field_grid(FieldKind::Tangle, [24, 24, 24]);
    let full = isosurface(&grid, "scalar", 0.0, Some("elevation"));
    let b = grid.bounds();
    let z0 = b.min.z + b.extent().z * rank as f32 / ranks as f32;
    let z1 = b.min.z + b.extent().z * (rank + 1) as f32 / ranks as f32;
    let mut local = mesh::TriMesh::default();
    for t in 0..full.num_tris() {
        let pts = full.tri_points(t);
        let c = (pts[0] + pts[1] + pts[2]) / 3.0;
        if c.z >= z0 && (c.z < z1 || (rank + 1 == ranks && c.z <= z1 + 1e-5)) {
            let base = local.points.len() as u32;
            for (i, p) in pts.iter().enumerate() {
                local.points.push(*p);
                local.scalars.push(full.scalars[full.tris[t][i] as usize]);
            }
            local.tris.push([base, base + 1, base + 2]);
        }
    }
    local
}

fn whole_scene_camera() -> Camera {
    let grid = field_grid(FieldKind::Tangle, [8, 8, 8]);
    Camera::close_view(&grid.bounds())
}

/// Global scalar range shared by all ranks — without this "data extent
/// reduction" (which the paper added to EAVL for exactly this reason), each
/// rank would normalize its color table locally and the distributed image
/// would not match the single-rank one.
fn global_range() -> (f32, f32) {
    let grid = field_grid(FieldKind::Tangle, [24, 24, 24]);
    let full = isosurface(&grid, "scalar", 0.0, Some("elevation"));
    full.scalar_range()
}

fn render_mesh(m: &mesh::TriMesh, cam: &Camera) -> RankImage {
    let rt = RayTracer::new(Device::Serial, TriGeometry::from_mesh(m));
    let tf = vecmath::TransferFunction::rainbow(global_range());
    to_rank_image(&rt.render_with_map(cam, SIDE, SIDE, &RtConfig::workload2(), &tf).frame)
}

#[test]
fn distributed_render_equals_single_rank_render() {
    let ranks = 4;
    let cam = whole_scene_camera();
    // Single-rank ground truth: render everything at once.
    let mut whole = mesh::TriMesh::default();
    for r in 0..ranks {
        whole.append(&rank_mesh(r, ranks));
    }
    let truth = render_mesh(&whole, &cam);

    // Distributed: render slabs, composite with every algorithm.
    let images: Vec<RankImage> =
        (0..ranks).map(|r| render_mesh(&rank_mesh(r, ranks), &cam)).collect();
    for (name, composited) in [
        ("reference", reference(&images, CompositeMode::ZBuffer)),
        ("direct_send", direct_send(&images, CompositeMode::ZBuffer, NetModel::zero()).0),
        ("binary_swap", binary_swap(&images, CompositeMode::ZBuffer, NetModel::zero()).0),
        ("radix_k", radix_k(&images, CompositeMode::ZBuffer, NetModel::zero(), &[2, 2]).0),
    ] {
        // Depth-composited sub-domains must reproduce the whole-scene image
        // almost exactly (tiny BVH traversal-order epsilon at slab seams).
        let diff_pixels = truth
            .color
            .iter()
            .zip(composited.color.iter())
            .filter(|(a, b)| {
                (a.r - b.r).abs() > 0.02 || (a.g - b.g).abs() > 0.02 || (a.b - b.b).abs() > 0.02
            })
            .count();
        let frac = diff_pixels as f64 / truth.num_pixels() as f64;
        assert!(frac < 0.01, "{name}: {diff_pixels} differing pixels ({frac:.3})");
    }
}

#[test]
fn threaded_world_produces_same_images_as_direct_calls() {
    let ranks = 3;
    let cam = whole_scene_camera();
    let direct: Vec<RankImage> =
        (0..ranks).map(|r| render_mesh(&rank_mesh(r, ranks), &cam)).collect();
    let via_world: Vec<RankImage> = World::run(ranks, NetModel::zero(), |comm| {
        render_mesh(&rank_mesh(comm.rank(), ranks), &cam)
    });
    for (a, b) in direct.iter().zip(via_world.iter()) {
        assert!(a.max_color_diff(b) < 1e-6);
    }
}

/// Every algorithm, compressed and dense, must be pixel-exact against the
/// serial reference at awkward rank counts — primes and Fibonacci numbers
/// exercise radix-k's mixed factors and binary swap's non-power-of-two fold
/// path (3, 5, 13 all fold before swapping).
#[test]
fn compressed_and_dense_match_reference_at_odd_rank_counts() {
    for ranks in [1usize, 2, 3, 5, 8, 13] {
        let images = perfmodel::study::synth_rank_images(ranks, 48, 100 + ranks as u64);
        let factors = compositing::algorithms::default_factors(ranks);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let expect = reference(&images, mode);
            for opts in [ExchangeOptions::default(), ExchangeOptions::dense()] {
                let tag = if opts.compress { "compressed" } else { "dense" };
                let (ds, _) = direct_send_opts(&images, mode, NetModel::zero(), opts);
                assert!(ds.max_color_diff(&expect) < 2e-5, "direct_send {tag} p={ranks} {mode:?}");
                let (bs, _) = binary_swap_opts(&images, mode, NetModel::zero(), opts);
                assert!(bs.max_color_diff(&expect) < 2e-5, "binary_swap {tag} p={ranks} {mode:?}");
                let (rk, _) = radix_k_opts(&images, mode, NetModel::zero(), &factors, opts);
                assert!(rk.max_color_diff(&expect) < 2e-5, "radix_k {tag} p={ranks} {mode:?}");
            }
            // Compressed and dense must agree bit-for-bit, not just within
            // the reference tolerance.
            let (c, _) =
                radix_k_opts(&images, mode, NetModel::zero(), &factors, ExchangeOptions::default());
            let (d, _) =
                radix_k_opts(&images, mode, NetModel::zero(), &factors, ExchangeOptions::dense());
            assert_eq!(c.max_color_diff(&d), 0.0, "p={ranks} {mode:?}");
        }
    }
}

/// The acceptance bar for active-pixel compression: at 64 simulated ranks on
/// the study's sparse images, the run-length exchange must move less than
/// half the dense bytes while producing the identical image.
#[test]
fn compression_halves_wire_bytes_at_64_ranks() {
    let images = perfmodel::study::synth_rank_images(64, 128, 7);
    let factors = compositing::algorithms::default_factors(64);
    let mode = CompositeMode::AlphaOrdered;
    let (comp_img, comp) =
        radix_k_opts(&images, mode, NetModel::cluster(), &factors, ExchangeOptions::default());
    let (dense_img, dense) =
        radix_k_opts(&images, mode, NetModel::cluster(), &factors, ExchangeOptions::dense());
    assert!(
        comp.total_bytes * 2 <= dense.total_bytes,
        "expected >= 2x reduction: {} vs {}",
        comp.total_bytes,
        dense.total_bytes
    );
    assert!(comp.compression_ratio() >= 2.0);
    // Pixel-identical, bit for bit.
    assert_eq!(comp_img.max_color_diff(&dense_img), 0.0);
    for i in 0..comp_img.depth.len() {
        assert!(comp_img.depth[i] == dense_img.depth[i], "depth {i}");
    }
}

#[test]
fn compositing_cost_reported_for_simulated_scale() {
    // 256 simulated ranks: lockstep executor handles rank counts no thread
    // pool could, reporting wire-inclusive timing.
    let images = perfmodel::study::synth_rank_images(256, 64, 1);
    let (out, stats) = radix_k(
        &images,
        CompositeMode::AlphaOrdered,
        NetModel::cluster(),
        &compositing::algorithms::default_factors(256),
    );
    assert_eq!(out.num_pixels(), 64 * 64);
    assert!(stats.simulated_seconds > 0.0);
    assert!(stats.total_bytes > 0);
    assert_eq!(stats.rounds, 8 + 1); // 2^8 = 256, + gather
                                     // Must equal the serial reference.
    let expect = reference(&images, CompositeMode::AlphaOrdered);
    assert!(out.max_color_diff(&expect) < 2e-5);
}
