//! Integration: the modeling pipeline end to end — run a (small) study,
//! fit models, cross-validate, map configurations, and answer feasibility
//! questions, asserting the paper's qualitative claims hold.

use dpp::Device;
use mpirt::NetModel;
use perfmodel::crossval::k_fold_accuracy;
use perfmodel::feasibility::{images_in_budget, rt_vs_rast_map, ModelSet};
use perfmodel::mapping::{map_inputs, MappingConstants, RenderConfig};
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::RendererKind;
use perfmodel::study::{
    run_composite_study, run_one, run_render_study, run_render_study_simulated, StudyConfig,
};

fn small_study() -> StudyConfig {
    StudyConfig {
        tests: 9,
        data_cells: (14, 36),
        image_side: (48, 144),
        fill: (0.5, 1.0),
        seed: 99,
    }
}

#[test]
fn models_fit_and_cross_validate_on_the_simulated_clock() {
    // This test is about *fit quality*, not about the wall clock: the study
    // runs the real renderers for their deterministic observed inputs, then
    // prices each test on the `mpirt::event::EventWorld` simulated clock.
    // One attempt, strict thresholds — nothing here can absorb scheduler
    // contention, so there is no retry loop to hide behind.
    let device = Device::parallel();
    let vr =
        run_render_study_simulated(&device, RendererKind::VolumeRendering, &small_study()).unwrap();
    let fit = VrModel.fit(&vr);
    let xs: Vec<Vec<f64>> = vr.iter().map(|s| VrModel.features(s)).collect();
    let ys: Vec<f64> = vr.iter().map(|s| s.render_seconds).collect();
    let acc = k_fold_accuracy(&xs, &ys, 3);
    assert!(fit.r_squared() > 0.95, "R^2 = {}", fit.r_squared());
    assert!(acc.within_50 >= 90.0, "CV within-50 = {}", acc.within_50);
}

/// Opt-in wall-clock smoke test (`cargo test -- --ignored`): one unretried
/// real-measurement study must still fit on a quiet machine. This preserves
/// the original end-to-end claim without letting machine load flake the
/// default suite.
#[test]
#[ignore = "wall-clock timing; run explicitly with --ignored on a quiet machine"]
fn models_fit_on_real_wall_clock_measurements_smoke() {
    let device = Device::parallel();
    let vr = run_render_study(&device, RendererKind::VolumeRendering, &small_study()).unwrap();
    let fit = VrModel.fit(&vr);
    let xs: Vec<Vec<f64>> = vr.iter().map(|s| VrModel.features(s)).collect();
    let ys: Vec<f64> = vr.iter().map(|s| s.render_seconds).collect();
    let acc = k_fold_accuracy(&xs, &ys, 3);
    assert!(fit.r_squared() > 0.6, "R^2 = {}", fit.r_squared());
    assert!(acc.within_50 >= 60.0, "CV within-50 = {}", acc.within_50);
}

#[test]
fn rt_build_scales_with_objects() {
    let device = Device::parallel();
    let small = run_one(&device, RendererKind::RayTracing, 16, 64, 0.9).unwrap();
    let big = run_one(&device, RendererKind::RayTracing, 48, 64, 0.9).unwrap();
    assert!(big.objects > small.objects * 4.0);
    assert!(
        big.build_seconds > small.build_seconds,
        "bigger BVH must take longer: {} vs {}",
        big.build_seconds,
        small.build_seconds
    );
}

#[test]
fn mapping_predicts_observed_inputs_within_bounds() {
    let device = Device::parallel();
    // Calibrate from one observation per renderer.
    let obs = vec![
        run_one(&device, RendererKind::VolumeRendering, 24, 96, 0.9).unwrap(),
        run_one(&device, RendererKind::Rasterization, 24, 96, 0.9).unwrap(),
    ];
    let k = MappingConstants::calibrated(&obs);
    // Validate on a different configuration.
    let test = run_one(&device, RendererKind::VolumeRendering, 32, 128, 0.9).unwrap();
    let mapped = map_inputs(
        &RenderConfig {
            renderer: RendererKind::VolumeRendering,
            cells_per_task: 32,
            pixels: 128 * 128,
            tasks: 1,
        },
        &k,
    );
    // Active pixels within 2x, SPR within 2x, CS exact by construction.
    let ap_ratio = mapped.active_pixels / test.active_pixels;
    assert!((0.5..=2.0).contains(&ap_ratio), "AP ratio {ap_ratio}");
    let spr_ratio = mapped.samples_per_ray / test.samples_per_ray;
    assert!((0.5..=2.0).contains(&spr_ratio), "SPR ratio {spr_ratio}");
    assert_eq!(mapped.cells_spanned, 32.0);
}

#[test]
fn feasibility_answers_have_the_papers_shape() {
    // Simulated-clock studies: the paper-shape assertions below are about
    // the fitted models' structure, and the simulated laws preserve the
    // paper's regimes while making every fit deterministic.
    let device = Device::parallel();
    let cfg = small_study();
    let rt = run_render_study_simulated(&device, RendererKind::RayTracing, &cfg).unwrap();
    let ra = run_render_study_simulated(&device, RendererKind::Rasterization, &cfg).unwrap();
    let vr = run_render_study_simulated(&device, RendererKind::VolumeRendering, &cfg).unwrap();
    let comp = run_composite_study(NetModel::cluster(), &[1, 4, 16], &[64, 192], 3).unwrap();
    let set = ModelSet {
        device: "parallel".into(),
        rt: RtModel.fit(&rt),
        rt_build: RtBuildModel.fit(&rt),
        rast: RastModel.fit(&ra),
        vr: VrModel.fit(&vr),
        comp: CompositeModel.fit(&comp),
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    };
    let mut all = rt;
    all.extend(ra);
    all.extend(vr);
    let k = MappingConstants::calibrated(&all);

    // Figure 14 shape: more pixels -> fewer images in the budget.
    let curve = images_in_budget(
        &set,
        &k,
        RendererKind::RayTracing,
        100,
        32,
        &[512, 1024, 2048, 4096],
        60.0,
    );
    for w in curve.windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.001,
            "images-in-budget must not increase with image size: {curve:?}"
        );
    }

    // Figure 15 shape: ray tracing is *relatively* stronger with more
    // geometry and fewer pixels.
    let map = rt_vs_rast_map(&set, &k, 32, 100, &[384, 4096], &[64, 400]);
    let get = |side: u32, n: usize| {
        map.iter().find(|c| c.image_side == side && c.cells_per_task == n).unwrap().rt_over_rast
    };
    assert!(
        get(384, 400) < get(4096, 64),
        "regime ordering: {} !< {}",
        get(384, 400),
        get(4096, 64)
    );
}

#[test]
fn corpus_round_trips_through_csv() {
    let device = Device::Serial;
    let s = run_one(&device, RendererKind::Rasterization, 12, 48, 0.8).unwrap();
    let text = perfmodel::sample::to_csv(std::slice::from_ref(&s));
    let parsed = perfmodel::sample::from_csv(&text);
    assert_eq!(parsed.len(), 1);
    assert_eq!(parsed[0].renderer, s.renderer);
    assert!((parsed[0].render_seconds - s.render_seconds).abs() < 1e-12);
    assert!((parsed[0].pixels_per_triangle - s.pixels_per_triangle).abs() < 1e-9);
}
