//! Cross-crate property tests for the DFB determinism invariant: for ANY
//! rank-image set, ANY per-tile fragment arrival permutation, and ANY rank
//! interleaving (staggered render-completion times), the composited pixels
//! must be byte-identical to the serial back-to-front reference. Arrival
//! order buys overlap; it must never move a bit.

use compositing::{
    dfb_compose_shuffled, dfb_compose_staggered, reference, CompositeMode, ExchangeOptions,
    RankImage,
};
use mpirt::NetModel;
use proptest::prelude::*;
use vecmath::Color;

fn arb_rank_images(max_ranks: usize) -> impl Strategy<Value = Vec<RankImage>> {
    (1..=max_ranks, 2u32..12, 2u32..12, any::<u64>()).prop_map(|(ranks, w, h, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f32 / 1000.0
        };
        (0..ranks)
            .map(|r| {
                let mut img = RankImage::empty(w, h);
                for i in 0..img.num_pixels() {
                    if next() < 0.5 {
                        let a = next() * 0.9;
                        img.color[i] = Color::new(next() * a, next() * a, next() * a, a);
                        img.depth[i] = r as f32 + next();
                    }
                }
                img
            })
            .collect()
    })
}

/// Exact bit pattern of an image, color and depth planes interleaved.
fn bits(img: &RankImage) -> Vec<u32> {
    img.color
        .iter()
        .zip(img.depth.iter())
        .flat_map(|(c, d)| {
            [c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits(), d.to_bits()]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Adversarially permuted per-tile fragment delivery, both wire
    /// encodings, both composite modes: bits match the serial reference.
    #[test]
    fn dfb_is_invariant_to_fragment_arrival_order(
        images in arb_rank_images(12),
        arrival_seed in any::<u64>(),
        compress in any::<bool>(),
    ) {
        let opts =
            if compress { ExchangeOptions::default() } else { ExchangeOptions::dense() };
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let expect = reference(&images, mode);
            let (out, _) =
                dfb_compose_shuffled(&images, mode, NetModel::cluster(), opts, arrival_seed);
            prop_assert_eq!(bits(&out), bits(&expect), "mode={:?}", mode);
        }
    }

    /// Arbitrary rank interleavings — every rank finishes rendering at its
    /// own time, so tiles stream in rank-shear order. The clocks must feel
    /// the stagger; the pixels must not.
    #[test]
    fn dfb_is_invariant_to_rank_interleaving(
        images in arb_rank_images(10),
        stagger_seed in any::<u64>(),
    ) {
        let mut state = stagger_seed | 1;
        let starts: Vec<f64> = (0..images.len())
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 * 1e-4
            })
            .collect();
        let max_start = starts.iter().copied().fold(0.0, f64::max);
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let expect = reference(&images, mode);
            let (out, st) = dfb_compose_staggered(
                &images,
                mode,
                NetModel::cluster(),
                ExchangeOptions::default(),
                &starts,
            );
            prop_assert_eq!(bits(&out), bits(&expect), "mode={:?}", mode);
            prop_assert!(st.simulated_seconds >= max_start);
        }
    }
}
