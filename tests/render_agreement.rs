//! Integration: the independent renderer implementations agree with each
//! other on what they draw — the cross-checks that make the performance
//! comparisons meaningful.

use baselines::tuned::{Profile, TunedTracer};
use dpp::Device;
use mesh::datasets::{field_grid, tet_dataset_pool, FieldKind};
use mesh::isosurface::isosurface;
use render::raster::rasterize;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use render::volume_structured::{render_structured, SvrConfig};
use render::volume_unstructured::{render_unstructured, UvrConfig};
use vecmath::{Camera, TransferFunction};

fn surface() -> TriGeometry {
    let g = field_grid(FieldKind::ShockShell, [20, 20, 20]);
    TriGeometry::from_mesh(&isosurface(&g, "scalar", 0.5, Some("elevation")))
}

#[test]
fn raytracer_and_rasterizer_draw_the_same_surface() {
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let ras = rasterize(&Device::Serial, &geom, &cam, 96, 96, &tf, None);
    let rt = RayTracer::new(Device::Serial, geom);
    let rtr = rt.render_with_map(&cam, 96, 96, &RtConfig::workload2(), &tf);
    // Coverage overlap.
    let mut both = 0;
    let mut either = 0;
    let mut color_diff = 0.0f32;
    for i in 0..ras.frame.num_pixels() {
        let a = ras.frame.color[i].a > 0.0;
        let b = rtr.frame.color[i].a > 0.0;
        if a || b {
            either += 1;
            if a && b {
                both += 1;
                let ca = ras.frame.color[i];
                let cb = rtr.frame.color[i];
                color_diff += (ca.r - cb.r).abs() + (ca.g - cb.g).abs() + (ca.b - cb.b).abs();
            }
        }
    }
    assert!(either > 1000);
    assert!(both as f64 > either as f64 * 0.95, "coverage {both}/{either}");
    // Where both hit, shading agrees closely (same normal, scalar, light).
    let avg_diff = color_diff / both as f32 / 3.0;
    assert!(avg_diff < 0.05, "avg per-channel diff {avg_diff}");
}

#[test]
fn tuned_tracers_see_the_same_picture_as_dpp() {
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let rt = RayTracer::new(Device::Serial, geom.clone());
    let dpp_out = rt.render(&cam, 72, 72, &RtConfig::workload1());
    for profile in [Profile::Embree, Profile::Optix] {
        let tuned = TunedTracer::from_geometry(geom.clone(), profile);
        let (hits, _) = tuned.intersect_image(&cam, 72, 72);
        assert_eq!(hits, dpp_out.stats.active_pixels, "{profile:?}");
    }
}

#[test]
fn structured_and_unstructured_vr_agree_on_decomposed_grid() {
    // The same field rendered as a structured grid and as its tet
    // decomposition should produce similar images (different interpolation
    // bases, same data).
    let grid = field_grid(FieldKind::ShockShell, [14, 14, 14]);
    let tets = mesh::HexMesh::from_uniform_grid(&grid).to_tets();
    let range = grid.field("scalar").unwrap().range().unwrap();
    let tf = TransferFunction::sparse_features(range);
    let cam = Camera::close_view(&grid.bounds());
    let s = render_structured(
        &Device::Serial,
        &grid,
        "scalar",
        &cam,
        56,
        56,
        &tf,
        &SvrConfig { samples_per_ray: 128, ..Default::default() },
    )
    .unwrap();
    let u = render_unstructured(
        &Device::Serial,
        &tets,
        "scalar",
        &cam,
        56,
        56,
        &tf,
        &UvrConfig { depth_samples: 128, ..Default::default() },
    )
    .unwrap();
    let mut both = 0;
    let mut either = 0;
    for i in 0..s.frame.num_pixels() {
        let a = s.frame.color[i].a > 0.02;
        let b = u.frame.color[i].a > 0.02;
        if a || b {
            either += 1;
            if a && b {
                both += 1;
            }
        }
    }
    assert!(either > 400);
    assert!(both as f64 > either as f64 * 0.85, "VR coverage {both}/{either}");
}

#[test]
fn all_volume_renderers_light_up_the_same_region() {
    let spec = &tet_dataset_pool()[0];
    let tets = spec.build(0.12);
    let range = tets.field("scalar").unwrap().range().unwrap();
    let tf = TransferFunction::sparse_features(range);
    let cam = Camera::close_view(&tets.bounds());
    let dpp = render_unstructured(
        &Device::Serial,
        &tets,
        "scalar",
        &cam,
        48,
        48,
        &tf,
        &UvrConfig { depth_samples: 96, ..Default::default() },
    )
    .unwrap();
    let conn = baselines::bunyk::Connectivity::build(&tets);
    let bunyk = baselines::bunyk::render_bunyk(&tets, &conn, "scalar", &cam, 48, 48, &tf, 0.01);
    let havs = baselines::havs::render_havs(&Device::Serial, &tets, "scalar", &cam, 48, 48, &tf);
    let visit = baselines::visit_like::render_visit(&tets, "scalar", &cam, 48, 48, 96, &tf);
    let coverage =
        |f: &render::Framebuffer| -> usize { f.color.iter().filter(|c| c.a > 0.02).count() };
    let base = coverage(&dpp.frame);
    assert!(base > 200);
    for (name, c) in [
        ("bunyk", coverage(&bunyk.frame)),
        ("havs", coverage(&havs.frame)),
        ("visit", coverage(&visit.frame)),
    ] {
        let ratio = c as f64 / base as f64;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "{name} coverage {c} vs dpp {base} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn serial_and_parallel_devices_render_identically_across_renderers() {
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    // Rasterizer.
    let a = rasterize(&Device::Serial, &geom, &cam, 64, 64, &tf, None);
    let b = rasterize(&Device::parallel(), &geom, &cam, 64, 64, &tf, None);
    assert!(a.frame.mean_abs_diff(&b.frame) < 1e-5);
    // Ray tracer (workload3, all stages).
    let rt_s = RayTracer::new(Device::Serial, geom.clone());
    let rt_p = RayTracer::new(Device::parallel(), geom);
    let cfg = RtConfig::workload3();
    let fa = rt_s.render(&cam, 48, 48, &cfg);
    let fb = rt_p.render(&cam, 48, 48, &cfg);
    assert!(fa.frame.mean_abs_diff(&fb.frame) < 1e-5);
}
