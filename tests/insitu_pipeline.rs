//! Integration: full in situ loops — each proxy simulation publishing through
//! Conduit conventions into Strawman and rendering every cycle.

use conduit_node::Node;
use dpp::Device;
use sims::ProxySim;
use std::sync::Arc;
use strawman::{Options, Strawman};

fn test_options() -> Options {
    let dir = std::env::temp_dir().join(format!("strawman_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    Options { device: Device::Serial, output_dir: dir, ..Options::default() }
}

#[test]
fn lulesh_in_situ_loop() {
    let mut sim = sims::Lulesh::new(8);
    let mut sm = Strawman::open(test_options());
    for _ in 0..2 {
        sim.step();
        let mesh = sim.hex_mesh();
        let mut data = Node::new();
        data.set("state/cycle", sim.cycle() as i64);
        data.set("coords/type", "explicit");
        data.set_external_f32("coords/x", Arc::new(mesh.points.iter().map(|p| p.x).collect()));
        data.set_external_f32("coords/y", Arc::new(mesh.points.iter().map(|p| p.y).collect()));
        data.set_external_f32("coords/z", Arc::new(mesh.points.iter().map(|p| p.z).collect()));
        data.set("topology/type", "unstructured");
        data.set("topology/elements/shape", "hexs");
        data.set(
            "topology/elements/connectivity",
            mesh.hexes.iter().flatten().copied().collect::<Vec<u32>>(),
        );
        data.set("fields/e/association", "element");
        data.set("fields/e/values", mesh.field("e").unwrap().values.clone());
        assert!(data.has_external_data(), "coordinates must publish zero-copy");

        let mut actions = Node::new();
        let add = actions.append();
        add.set("action", "AddPlot");
        add.set("var", "e");
        actions.append().set("action", "DrawPlots");
        let save = actions.append();
        save.set("action", "SaveImage");
        save.set("fileName", "");
        save.set("width", 64i64);
        save.set("height", 64i64);

        sm.publish(&data).unwrap();
        sm.execute(&actions).unwrap();
    }
    assert_eq!(sm.records.len(), 2);
    assert!(sm.records.iter().all(|r| r.active_pixels > 100));
    // Lagrangian mesh deformed between cycles, so the pictures differ.
    assert!(sm.last_frame.is_some());
}

#[test]
fn kripke_in_situ_rasterized() {
    let mut sim = sims::Kripke::new(12);
    sim.step();
    let grid = sim.grid();
    let mut data = Node::new();
    data.set("coords/type", "uniform");
    data.set("coords/dims/i", grid.dims[0] as i64);
    data.set("coords/dims/j", grid.dims[1] as i64);
    data.set("coords/dims/k", grid.dims[2] as i64);
    data.set("fields/phi/association", "vertex");
    data.set("fields/phi/values", grid.field("phi_p").unwrap().values.clone());

    let mut actions = Node::new();
    let add = actions.append();
    add.set("action", "AddPlot");
    add.set("var", "phi");
    add.set("renderer", "rasterizer");
    actions.append().set("action", "DrawPlots");
    let save = actions.append();
    save.set("action", "SaveImage");
    save.set("fileName", "kripke_test");
    save.set("width", 64i64);
    save.set("height", 64i64);

    let mut sm = Strawman::open(test_options());
    sm.publish(&data).unwrap();
    sm.execute(&actions).unwrap();
    let rec = &sm.records[0];
    assert_eq!(rec.renderer, "rasterizer");
    assert!(rec.active_pixels > 100);
    // The PNG on disk must carry a valid signature and IEND.
    let bytes = std::fs::read(rec.path.as_ref().unwrap()).unwrap();
    assert_eq!(&bytes[..8], &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A]);
    assert_eq!(&bytes[bytes.len() - 8..bytes.len() - 4], b"IEND");
}

#[test]
fn cloverleaf_in_situ_volume() {
    let mut sim = sims::Cloverleaf::new(16);
    for _ in 0..2 {
        sim.step();
    }
    let grid = sim.grid();
    let mut data = Node::new();
    data.set("coords/type", "rectilinear");
    data.set("coords/values/x", grid.xs.clone());
    data.set("coords/values/y", grid.ys.clone());
    data.set("coords/values/z", grid.zs.clone());
    data.set("fields/density/association", "element");
    data.set("fields/density/values", grid.field("density").unwrap().values.clone());

    let mut actions = Node::new();
    let add = actions.append();
    add.set("action", "AddPlot");
    add.set("var", "density");
    add.set("type", "volume");
    actions.append().set("action", "DrawPlots");
    let save = actions.append();
    save.set("action", "SaveImage");
    save.set("fileName", "");
    save.set("width", 48i64);
    save.set("height", 48i64);

    let mut sm = Strawman::open(test_options());
    sm.publish(&data).unwrap();
    sm.execute(&actions).unwrap();
    assert_eq!(sm.records[0].renderer, "volume_structured");
    assert!(sm.records[0].active_pixels > 50);
}

#[test]
fn consecutive_cycles_show_evolving_physics() {
    // Volume-render CloverLeaf at two times; the images must differ (the
    // shock moves) — guards against publishing stale state.
    let mut sim = sims::Cloverleaf::new(16);
    let render = |sim: &sims::Cloverleaf| {
        let grid = sim.grid().to_uniform();
        let range = grid.field("energy_p").unwrap().range().unwrap();
        let tf = vecmath::TransferFunction::sparse_features(range);
        let cam = vecmath::Camera::close_view(&grid.bounds());
        render::volume_structured::render_structured(
            &Device::Serial,
            &grid,
            "energy_p",
            &cam,
            48,
            48,
            &tf,
            &render::volume_structured::SvrConfig::default(),
        )
        .unwrap()
        .frame
    };
    let before = render(&sim);
    for _ in 0..8 {
        sim.step();
    }
    let after = render(&sim);
    assert!(before.mean_abs_diff(&after) > 1e-4, "images identical across cycles");
}
