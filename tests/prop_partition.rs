//! Properties of object-space partitioning and the rebalancing loop
//! (DESIGN.md §12), plus the distributed-render identity across worker
//! counts that the partition work is pinned against.

use compositing::{reference, CompositeMode, RankImage};
use dpp::Device;
use mesh::lod::TriLadder;
use mesh::partition::{tri_centroids, Partition};
use proptest::prelude::*;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use sched::rebalance::{RebalanceConfig, Rebalancer};
use strawman::api::to_rank_image;
use strawman::render_partitioned;
use vecmath::{Camera, TransferFunction, Vec3};

/// Deterministic centroid cloud from a seed: xorshift positions in a box
/// whose aspect varies with the seed, so splits exercise all three axes.
fn centroid_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f32 / 10_000.0
    };
    let scale = Vec3::new(1.0 + next() * 4.0, 1.0 + next() * 4.0, 1.0 + next() * 4.0);
    (0..n).map(|_| Vec3::new(next() * scale.x, next() * scale.y, next() * scale.z)).collect()
}

/// Every cell on exactly one rank, ranks in range, and each rank's cells
/// inside the input centroid bounds (the union therefore covers the input).
fn assert_covering(part: &Partition, centroids: &[Vec3]) {
    assert_eq!(part.num_cells(), centroids.len());
    let counts = part.counts();
    assert_eq!(counts.len(), part.ranks());
    assert_eq!(counts.iter().sum::<usize>(), centroids.len(), "every cell assigned exactly once");
    let inf = Vec3::new(f32::INFINITY, f32::INFINITY, f32::INFINITY);
    let (lo, hi) = centroids.iter().fold((inf, -inf), |(lo, hi), c| (lo.min(*c), hi.max(*c)));
    let mut seen = vec![false; centroids.len()];
    for rank in 0..part.ranks() {
        for cell in part.cells_of(rank) {
            assert!(!seen[cell], "cell {cell} assigned to two ranks");
            seen[cell] = true;
            assert_eq!(part.rank_of(cell), rank);
            let c = centroids[cell];
            assert!(c.x >= lo.x && c.x <= hi.x && c.y >= lo.y && c.y <= hi.y);
            assert!(c.z >= lo.z && c.z <= hi.z, "rank domains stay inside the input bounds");
        }
    }
    assert!(seen.into_iter().all(|s| s), "no cell lost");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Unweighted bisection covers the input for arbitrary clouds and rank
    /// counts, and is a pure function of its inputs.
    #[test]
    fn bisection_assigns_every_cell_exactly_once(
        n in 1usize..400, ranks in 1usize..33, seed in any::<u64>()
    ) {
        let centroids = centroid_cloud(n, seed);
        let part = Partition::bisect(&centroids, ranks);
        prop_assert_eq!(part.ranks(), ranks.max(1));
        assert_covering(&part, &centroids);
        if n >= ranks {
            prop_assert!(part.counts().iter().all(|&c| c > 0), "no empty rank when cells >= ranks");
        }
        let again = Partition::bisect(&centroids, ranks);
        prop_assert_eq!(part.assignments(), again.assignments(), "bisection is deterministic");
    }

    /// Weighted bisection keeps the exactly-once property for arbitrary
    /// weights, including degenerate ones (zero, negative, non-finite).
    #[test]
    fn weighted_bisection_tolerates_arbitrary_weights(
        n in 1usize..300, ranks in 1usize..17, seed in any::<u64>()
    ) {
        let centroids = centroid_cloud(n, seed);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                match state % 7 {
                    0 => 0.0,
                    1 => -1.0,
                    2 => f64::NAN,
                    _ => (state % 1000) as f64 / 100.0,
                }
            })
            .collect();
        let part = Partition::weighted_bisect(&centroids, &weights, ranks);
        assert_covering(&part, &centroids);
    }

    /// Rebalancing permutes ownership, never the cell set: after any
    /// sequence of observed cycles the partition still covers every cell
    /// exactly once, and the reported migration matches the assignment diff.
    #[test]
    fn rebalancing_is_a_permutation(
        n in 64usize..300, ranks in 2usize..17, seed in any::<u64>()
    ) {
        let centroids = centroid_cloud(n, seed);
        let cfg = RebalanceConfig { sustain_cycles: 2, ..RebalanceConfig::default() };
        let mut reb = Rebalancer::new(centroids.clone(), ranks, cfg);
        let mut state = seed | 1;
        for _ in 0..8 {
            let before = reb.partition().clone();
            // Skewed measured times: rank r costs (r+1) units per cycle,
            // jittered by the seed so triggers vary run to run.
            let times: Vec<f64> = (0..before.ranks())
                .map(|r| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    (r + 1) as f64 * (1.0 + (state % 100) as f64 / 200.0)
                })
                .collect();
            let migration = reb.observe_cycle(&times);
            let after = reb.partition();
            assert_covering(after, &centroids);
            let diff = before
                .assignments()
                .iter()
                .zip(after.assignments().iter())
                .filter(|(a, b)| a != b)
                .count();
            match migration {
                Some(m) => {
                    prop_assert_eq!(m.moved_cells(), diff, "migration must equal the assignment diff");
                    prop_assert!(m.moved_cells() > 0);
                    prop_assert_eq!(&before.migration(after), &m);
                }
                None => prop_assert_eq!(diff, 0, "no migration reported, so no cell may move"),
            }
        }
    }
}

/// Full-LOD partitioned rendering is byte-identical to the unpartitioned
/// single-rank reference on every pool size from 1 to 8 workers — the
/// acceptance pin for the distributed-data render path.
#[test]
fn full_lod_partitioned_render_is_byte_identical_across_workers() {
    let grid = mesh::datasets::field_grid(mesh::datasets::FieldKind::Tangle, [12, 12, 12]);
    let mesh = mesh::isosurface::isosurface(&grid, "scalar", 0.0, Some("elevation"));
    // Full LOD is ladder rung 0: the input mesh, bit-for-bit.
    let ladder = TriLadder::build(&mesh, 2);
    let full = ladder.level(0);
    assert_eq!(full.num_tris(), mesh.num_tris());

    let camera = Camera::close_view(&full.bounds());
    let cfg = RtConfig::workload2();
    let (w, h) = (32, 32);
    let tf = TransferFunction::rainbow(full.scalar_range());
    let rt = RayTracer::new(Device::Serial, TriGeometry::from_mesh(full));
    let single = to_rank_image(&rt.render_with_map(&camera, w, h, &cfg, &tf).frame);
    assert!(single.active_pixels() > 30, "fixture must be visible");

    let part = Partition::bisect(&tri_centroids(full), 3);
    for workers in 1..=8usize {
        let device = Device::parallel_with_threads(workers);
        let frames = render_partitioned(&device, full, &part, &camera, w, h, &cfg);
        let images: Vec<RankImage> = frames.iter().map(|f| f.image.clone()).collect();
        let folded = reference(&images, CompositeMode::ZBuffer);
        for i in 0..single.color.len() {
            let (a, b) = (folded.color[i], single.color[i]);
            assert_eq!(
                [a.r.to_bits(), a.g.to_bits(), a.b.to_bits(), a.a.to_bits()],
                [b.r.to_bits(), b.g.to_bits(), b.b.to_bits(), b.a.to_bits()],
                "{workers} workers: color pixel {i}"
            );
            assert_eq!(
                folded.depth[i].to_bits(),
                single.depth[i].to_bits(),
                "{workers} workers: depth pixel {i}"
            );
        }
    }
}
