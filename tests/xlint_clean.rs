//! The workspace must stay xlint-clean: zero active findings, and the
//! grandfathered baseline must stay small, justified, and non-stale.

use std::path::Path;

#[test]
fn workspace_has_no_active_xlint_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, _cfg) = xlint::run_root(root).expect("xlint run failed");
    assert!(
        report.active.is_empty(),
        "active xlint findings (fix or waive with a reason):\n{}",
        xlint::to_text(&report)
    );
}

#[test]
fn baseline_stays_small_and_justified() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, cfg) = xlint::run_root(root).expect("xlint run failed");
    assert!(
        report.baselined.len() <= 5,
        "baseline grew to {} findings — fix debt instead of grandfathering more",
        report.baselined.len()
    );
    for entry in &cfg.baseline {
        assert!(
            entry.reason.trim().len() >= 10,
            "baseline entry {} in {} needs a real written reason",
            entry.lint,
            entry.file
        );
    }
    assert!(
        report.stale_baseline.is_empty(),
        "stale baseline capacity (shrink counts in xlint.toml):\n{}",
        xlint::to_text(&report)
    );
}

#[test]
fn waivers_all_carry_reasons() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, _cfg) = xlint::run_root(root).expect("xlint run failed");
    for w in &report.waived {
        assert!(
            !w.reason.trim().is_empty(),
            "waiver at {}:{} has no reason",
            w.finding.file,
            w.finding.line
        );
    }
}

/// The flow lints (X012 clock taint, X013 lock-order cycles, X014 panic
/// reachability) run on every workspace pass and must stay at zero *active*
/// findings; violations are either fixed or carry a written waiver. The
/// waived set is pinned loosely (>=) so adding code can't silently disable
/// the passes: the feasd Condvar false-positive waiver and the core → mesh
/// panic-invariant waivers are expected to stay.
#[test]
fn flow_lints_run_and_stay_burned_down() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, _cfg) = xlint::run_root(root).expect("xlint run failed");
    for lint in [xlint::Lint::X012, xlint::Lint::X013, xlint::Lint::X014] {
        assert!(
            !report.active.iter().any(|f| f.lint == lint),
            "active {} findings:\n{}",
            lint.id(),
            xlint::to_text(&report)
        );
    }
    let waived_x013 = report.waived.iter().filter(|w| w.finding.lint == xlint::Lint::X013).count();
    let waived_x014 = report.waived.iter().filter(|w| w.finding.lint == xlint::Lint::X014).count();
    assert!(waived_x013 >= 1, "the feasd Condvar wait waiver should still be exercised");
    assert!(waived_x014 >= 1, "the core slice/faces invariant waivers should still be exercised");
}
