//! Cross-crate property tests: invariants that span subsystem boundaries.

use compositing::{binary_swap, direct_send, radix_k, reference, CompositeMode, RankImage};
use conduit_node::Node;
use mpirt::NetModel;
use proptest::prelude::*;
use strawman::mesh_convert::{convert, PublishedMesh};
use vecmath::Color;

fn arb_rank_images(max_ranks: usize) -> impl Strategy<Value = Vec<RankImage>> {
    (1..=max_ranks, 2u32..10, 2u32..10, any::<u64>()).prop_map(|(ranks, w, h, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f32 / 1000.0
        };
        (0..ranks)
            .map(|r| {
                let mut img = RankImage::empty(w, h);
                for i in 0..img.num_pixels() {
                    if next() < 0.5 {
                        let a = next() * 0.9;
                        img.color[i] = Color::new(next() * a, next() * a, next() * a, a);
                        img.depth[i] = r as f32 + next();
                    }
                }
                img
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every compositing algorithm equals the serial reference, both modes,
    /// arbitrary images and rank counts.
    #[test]
    fn compositing_algorithms_are_equivalent(images in arb_rank_images(12)) {
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let expect = reference(&images, mode);
            let (ds, _) = direct_send(&images, mode, NetModel::zero());
            prop_assert!(ds.max_color_diff(&expect) < 3e-5);
            let factors = compositing::algorithms::default_factors(images.len());
            let (rk, _) = radix_k(&images, mode, NetModel::zero(), &factors);
            prop_assert!(rk.max_color_diff(&expect) < 3e-5);
            if images.len().is_power_of_two() {
                let (bs, _) = binary_swap(&images, mode, NetModel::zero());
                prop_assert!(bs.max_color_diff(&expect) < 3e-5);
            }
        }
    }

    /// PNG encoding always produces structurally valid files whose IDAT
    /// stored blocks decode back to the raw scanlines.
    #[test]
    fn png_encoder_is_always_valid(w in 1u32..24, h in 1u32..24, seed in any::<u64>()) {
        let n = (w * h * 4) as usize;
        let pixels: Vec<u8> = (0..n).map(|i| ((seed >> (i % 56)) as u8).wrapping_add(i as u8)).collect();
        let png = strawman::png::encode_rgba(w, h, &pixels);
        prop_assert_eq!(&png[..8], &[0x89, b'P', b'N', b'G', 0x0D, 0x0A, 0x1A, 0x0A][..]);
        // Walk chunks and validate CRCs.
        let mut pos = 8usize;
        let mut seen_iend = false;
        while pos + 8 <= png.len() {
            let len = u32::from_be_bytes([png[pos], png[pos+1], png[pos+2], png[pos+3]]) as usize;
            let kind = &png[pos+4..pos+8];
            let payload_end = pos + 8 + len;
            prop_assert!(payload_end + 4 <= png.len(), "truncated chunk");
            let crc = u32::from_be_bytes([
                png[payload_end], png[payload_end+1], png[payload_end+2], png[payload_end+3],
            ]);
            prop_assert_eq!(crc, strawman::png::crc32(&png[pos+4..payload_end]));
            if kind == b"IEND" { seen_iend = true; }
            pos = payload_end + 4;
        }
        prop_assert!(seen_iend);
    }

    /// Publishing a uniform grid through Conduit conventions round-trips the
    /// field values exactly.
    #[test]
    fn conduit_mesh_round_trip(
        nx in 2usize..6, ny in 2usize..6, nz in 2usize..6, seed in any::<u32>()
    ) {
        let n_points = nx * ny * nz;
        let values: Vec<f32> = (0..n_points)
            .map(|i| (seed.wrapping_mul(i as u32 + 1) % 1000) as f32 / 10.0)
            .collect();
        let mut d = Node::new();
        d.set("coords/type", "uniform");
        d.set("coords/dims/i", nx as i64);
        d.set("coords/dims/j", ny as i64);
        d.set("coords/dims/k", nz as i64);
        d.set("fields/f/association", "vertex");
        d.set("fields/f/values", values.clone());
        let m = convert(&d).unwrap();
        let PublishedMesh::Uniform(g) = m else { panic!("wrong mesh kind") };
        prop_assert_eq!(g.dims, [nx, ny, nz]);
        prop_assert_eq!(&g.field("f").unwrap().values, &values);
    }

    /// The linear-regression + cross-validation pipeline recovers planted
    /// rendering-cost laws from arbitrary positive inputs.
    #[test]
    fn regression_recovers_planted_cost_model(
        c0 in 1e-9f64..1e-6, c1 in 1e-8f64..1e-5, c2 in 1e-4f64..1e-1
    ) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 1..40usize {
            let ap = 1000.0 * i as f64;
            let o = 500.0 * ((i * 13) % 29 + 1) as f64;
            let t = c0 * ap * o.log2() + c1 * ap + c2;
            xs.push(vec![ap * o.log2(), ap, 1.0]);
            ys.push(t);
        }
        let fit = perfmodel::regression::LinearRegression::fit(&xs, &ys);
        prop_assert!(fit.r_squared > 0.999999);
        prop_assert!((fit.coeffs[0] - c0).abs() / c0 < 1e-4);
        prop_assert!((fit.coeffs[1] - c1).abs() / c1 < 1e-4);
    }
}
