//! Bit-exactness across execution devices: every renderer and the
//! compositing exchange must produce *byte-identical* output on
//! [`Device::Serial`] and on thread pools of any size. This is the
//! determinism guarantee the performance-model methodology rests on — if a
//! device changed the pixels, cross-device model comparisons would be
//! comparing different computations.
//!
//! The pools under test (2, 4, 8 workers) intentionally oversubscribe the
//! small CI machine: correctness here is scheduling-order independence, not
//! speedup.

use compositing::{
    binary_swap_opts, dfb_compose_opts, direct_send_opts, radix_k_opts, reference, CompositeMode,
    ExchangeOptions, RankImage,
};
use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::isosurface::isosurface;
use mpirt::NetModel;
use render::raster::rasterize;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use render::volume_structured::{render_structured, SvrConfig};
use render::volume_unstructured::{render_unstructured, UvrConfig};
use render::Framebuffer;
use vecmath::{Camera, Color, TransferFunction};

const POOL_SIZES: [usize; 3] = [2, 4, 8];

/// Exact bit pattern of a framebuffer (color channels + depth).
fn frame_bits(f: &Framebuffer) -> Vec<u32> {
    let mut bits = Vec::with_capacity(f.color.len() * 5);
    for c in &f.color {
        bits.extend([c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits()]);
    }
    bits.extend(f.depth.iter().map(|d| d.to_bits()));
    bits
}

fn surface() -> TriGeometry {
    let g = field_grid(FieldKind::ShockShell, [20, 20, 20]);
    TriGeometry::from_mesh(&isosurface(&g, "scalar", 0.5, Some("elevation")))
}

#[test]
fn raytracer_is_bit_identical_across_devices() {
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let cfg = RtConfig::workload2();
    let baseline = frame_bits(
        &RayTracer::new(Device::Serial, geom.clone())
            .render_with_map(&cam, 72, 72, &cfg, &tf)
            .frame,
    );
    for n in POOL_SIZES {
        let rt = RayTracer::new(Device::parallel_with_threads(n), geom.clone());
        let frame = rt.render_with_map(&cam, 72, 72, &cfg, &tf).frame;
        assert_eq!(frame_bits(&frame), baseline, "raytrace differs on {n}-thread pool");
    }
}

#[test]
fn rasterizer_is_bit_identical_across_devices() {
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let baseline = frame_bits(&rasterize(&Device::Serial, &geom, &cam, 72, 72, &tf, None).frame);
    for n in POOL_SIZES {
        let d = Device::parallel_with_threads(n);
        let frame = rasterize(&d, &geom, &cam, 72, 72, &tf, None).frame;
        assert_eq!(frame_bits(&frame), baseline, "raster differs on {n}-thread pool");
    }
}

#[test]
fn structured_volume_renderer_is_bit_identical_across_devices() {
    let grid = field_grid(FieldKind::Turbulence, [16, 16, 16]);
    let range = grid.field("scalar").unwrap().range().unwrap();
    let tf = TransferFunction::sparse_features(range);
    let cam = Camera::close_view(&grid.bounds());
    let cfg = SvrConfig { samples_per_ray: 96, ..Default::default() };
    let baseline = frame_bits(
        &render_structured(&Device::Serial, &grid, "scalar", &cam, 72, 72, &tf, &cfg)
            .unwrap()
            .frame,
    );
    for n in POOL_SIZES {
        let d = Device::parallel_with_threads(n);
        let frame = render_structured(&d, &grid, "scalar", &cam, 72, 72, &tf, &cfg).unwrap().frame;
        assert_eq!(frame_bits(&frame), baseline, "structured VR differs on {n}-thread pool");
    }
}

#[test]
fn unstructured_volume_renderer_is_bit_identical_across_devices() {
    let grid = field_grid(FieldKind::ShockShell, [10, 10, 10]);
    let tets = mesh::HexMesh::from_uniform_grid(&grid).to_tets();
    let range = tets.field("scalar").unwrap().range().unwrap();
    let tf = TransferFunction::sparse_features(range);
    let cam = Camera::close_view(&tets.bounds());
    let cfg = UvrConfig { depth_samples: 64, ..Default::default() };
    let baseline = frame_bits(
        &render_unstructured(&Device::Serial, &tets, "scalar", &cam, 72, 72, &tf, &cfg)
            .unwrap()
            .frame,
    );
    for n in POOL_SIZES {
        let d = Device::parallel_with_threads(n);
        let frame =
            render_unstructured(&d, &tets, "scalar", &cam, 72, 72, &tf, &cfg).unwrap().frame;
        assert_eq!(frame_bits(&frame), baseline, "unstructured VR differs on {n}-thread pool");
    }
}

/// The graph executor re-runs each legacy pipeline from the same stage
/// kernels, so at full fidelity (no skips, cold cache) all four renderers
/// must match their legacy counterparts byte for byte.
#[test]
fn graph_pipelines_match_legacy_bit_for_bit() {
    use render::graph::{
        render_raster_graph, render_rt_graph, render_structured_graph, render_unstructured_graph,
    };
    let d = Device::Serial;
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);

    for cfg in [RtConfig::workload1(), RtConfig::workload2(), RtConfig::workload3()] {
        let legacy = RayTracer::new(Device::Serial, geom.clone())
            .render_with_map(&cam, 72, 72, &cfg, &tf)
            .frame;
        let (out, _) = render_rt_graph(&d, &geom, &cam, 72, 72, &cfg, &tf, &[], None).unwrap();
        assert_eq!(
            frame_bits(&out.frame),
            frame_bits(&legacy),
            "graph RT differs from legacy ({:?})",
            cfg.workload
        );
    }

    let legacy = rasterize(&d, &geom, &cam, 72, 72, &tf, None).frame;
    let (out, _) = render_raster_graph(&d, &geom, &cam, 72, 72, &tf, None, &[], None).unwrap();
    assert_eq!(frame_bits(&out.frame), frame_bits(&legacy), "graph raster differs from legacy");

    let grid = field_grid(FieldKind::Turbulence, [16, 16, 16]);
    let range = grid.field("scalar").unwrap().range().unwrap();
    let vtf = TransferFunction::sparse_features(range);
    let vcam = Camera::close_view(&grid.bounds());
    let svr_cfg = SvrConfig { samples_per_ray: 96, ..Default::default() };
    let legacy =
        render_structured(&d, &grid, "scalar", &vcam, 72, 72, &vtf, &svr_cfg).unwrap().frame;
    let (out, _) =
        render_structured_graph(&d, &grid, "scalar", &vcam, 72, 72, &vtf, &svr_cfg, &[], None)
            .unwrap();
    assert_eq!(frame_bits(&out.frame), frame_bits(&legacy), "graph SVR differs from legacy");

    let tets = mesh::HexMesh::from_uniform_grid(&grid).to_tets();
    // Multiple depth passes so the unrolled span chain is exercised.
    for num_passes in [1, 3] {
        let uvr_cfg = UvrConfig { depth_samples: 64, num_passes, ..Default::default() };
        let legacy =
            render_unstructured(&d, &tets, "scalar", &vcam, 72, 72, &vtf, &uvr_cfg).unwrap().frame;
        let (out, _) = render_unstructured_graph(
            &d,
            &tets,
            "scalar",
            &vcam,
            72,
            72,
            &vtf,
            &uvr_cfg,
            &[],
            None,
        )
        .unwrap();
        assert_eq!(
            frame_bits(&out.frame),
            frame_bits(&legacy),
            "graph UVR differs from legacy ({num_passes} passes)"
        );
    }
}

/// Graph pipelines must be scheduling-order independent like the legacy
/// ones: byte-identical on Serial and on 1/2/4/8-worker pools.
#[test]
fn graph_pipelines_are_bit_identical_across_devices() {
    use render::graph::{
        render_raster_graph, render_rt_graph, render_structured_graph, render_unstructured_graph,
    };
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let grid = field_grid(FieldKind::Turbulence, [16, 16, 16]);
    let range = grid.field("scalar").unwrap().range().unwrap();
    let vtf = TransferFunction::sparse_features(range);
    let vcam = Camera::close_view(&grid.bounds());
    let svr_cfg = SvrConfig { samples_per_ray: 96, ..Default::default() };
    let tets = mesh::HexMesh::from_uniform_grid(&grid).to_tets();
    let uvr_cfg = UvrConfig { depth_samples: 64, num_passes: 2, ..Default::default() };
    let rt_cfg = RtConfig::workload3();

    let render_all = |d: &Device| -> Vec<Vec<u32>> {
        vec![
            frame_bits(
                &render_rt_graph(d, &geom, &cam, 72, 72, &rt_cfg, &tf, &[], None).unwrap().0.frame,
            ),
            frame_bits(
                &render_raster_graph(d, &geom, &cam, 72, 72, &tf, None, &[], None).unwrap().0.frame,
            ),
            frame_bits(
                &render_structured_graph(
                    d,
                    &grid,
                    "scalar",
                    &vcam,
                    72,
                    72,
                    &vtf,
                    &svr_cfg,
                    &[],
                    None,
                )
                .unwrap()
                .0
                .frame,
            ),
            frame_bits(
                &render_unstructured_graph(
                    d,
                    &tets,
                    "scalar",
                    &vcam,
                    72,
                    72,
                    &vtf,
                    &uvr_cfg,
                    &[],
                    None,
                )
                .unwrap()
                .0
                .frame,
            ),
        ]
    };

    let baseline = render_all(&Device::Serial);
    for n in std::iter::once(1).chain(POOL_SIZES) {
        let d = Device::parallel_with_threads(n);
        assert_eq!(render_all(&d), baseline, "graph pipelines differ on {n}-thread pool");
    }
}

/// A warm cross-frame cache must not change a single byte: cached passes
/// replay the exact buffers the cold frame produced.
#[test]
fn graph_cache_replay_is_bit_identical() {
    use render::graph::{render_rt_graph, render_structured_graph, GraphCache};
    let d = Device::Serial;
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let cfg = RtConfig::workload3();

    let mut cache = GraphCache::new(8);
    let (cold, _) =
        render_rt_graph(&d, &geom, &cam, 72, 72, &cfg, &tf, &[], Some(&mut cache)).unwrap();
    let (warm, info) =
        render_rt_graph(&d, &geom, &cam, 72, 72, &cfg, &tf, &[], Some(&mut cache)).unwrap();
    assert_eq!(frame_bits(&warm.frame), frame_bits(&cold.frame), "cached RT frame differs");
    assert!(
        info.records.iter().any(|r| r.name == "bvh_build" && r.cached),
        "second frame must hit the BVH cache"
    );
    assert_eq!(warm.stats.bvh_build_seconds, 0.0, "cached build must cost zero seconds");

    let grid = field_grid(FieldKind::Turbulence, [16, 16, 16]);
    let range = grid.field("scalar").unwrap().range().unwrap();
    let vtf = TransferFunction::sparse_features(range);
    let vcam = Camera::close_view(&grid.bounds());
    let svr_cfg = SvrConfig { samples_per_ray: 96, ..Default::default() };
    let mut cache = GraphCache::new(8);
    let (cold, _) = render_structured_graph(
        &d,
        &grid,
        "scalar",
        &vcam,
        72,
        72,
        &vtf,
        &svr_cfg,
        &[],
        Some(&mut cache),
    )
    .unwrap();
    let (warm, info) = render_structured_graph(
        &d,
        &grid,
        "scalar",
        &vcam,
        72,
        72,
        &vtf,
        &svr_cfg,
        &[],
        Some(&mut cache),
    )
    .unwrap();
    assert_eq!(frame_bits(&warm.frame), frame_bits(&cold.frame), "cached SVR frame differs");
    assert!(info.records.iter().any(|r| r.name == "raycast" && r.cached));
}

/// Deterministic synthetic rank images with transparent background regions
/// (so the RLE wire format is exercised too).
fn rank_images(p: usize, w: u32, h: u32) -> Vec<RankImage> {
    (0..p)
        .map(|r| {
            let mut img = RankImage::empty(w, h);
            for i in 0..img.num_pixels() {
                // Simple integer hash: fragment-bearing pixels vary per rank.
                let v = (i * 2654435761 + r * 40503) & 0xffff;
                if v % 3 != 0 {
                    let x = (v as f32) / 65536.0;
                    img.color[i] = Color::new(x * 0.5, x * 0.3, 0.2, 0.5 + x * 0.25);
                    img.depth[i] = 1.0 + x + r as f32;
                }
            }
            img
        })
        .collect()
}

fn image_bits(img: &RankImage) -> Vec<u32> {
    let mut bits = Vec::with_capacity(img.color.len() * 5);
    for c in &img.color {
        bits.extend([c.r.to_bits(), c.g.to_bits(), c.b.to_bits(), c.a.to_bits()]);
    }
    bits.extend(img.depth.iter().map(|d| d.to_bits()));
    bits
}

#[test]
fn compositing_exchange_is_bit_identical_across_pool_sizes() {
    let images = rank_images(8, 32, 32);
    let net = NetModel::cluster();
    for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
        for opts in [ExchangeOptions::default(), ExchangeOptions::dense()] {
            // Baseline: the whole exchange on a single-worker pool.
            let baseline = Device::parallel_with_threads(1)
                .install(|| image_bits(&radix_k_opts(&images, mode, net, &[2, 2, 2], opts).0));
            for n in POOL_SIZES {
                let got = Device::parallel_with_threads(n)
                    .install(|| image_bits(&radix_k_opts(&images, mode, net, &[2, 2, 2], opts).0));
                assert_eq!(got, baseline, "compositing differs on {n}-thread pool ({mode:?})");
            }
        }
    }
}

#[test]
fn dfb_compositing_is_bit_identical_across_pool_sizes() {
    let images = rank_images(8, 32, 32);
    let net = NetModel::cluster();
    for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
        for opts in [ExchangeOptions::default(), ExchangeOptions::dense()] {
            // Baseline: the plain serial call, no pool installed at all.
            let baseline = image_bits(&dfb_compose_opts(&images, mode, net, opts).0);
            for n in std::iter::once(1).chain(POOL_SIZES) {
                let got = Device::parallel_with_threads(n)
                    .install(|| image_bits(&dfb_compose_opts(&images, mode, net, opts).0));
                assert_eq!(got, baseline, "DFB differs on {n}-thread pool ({mode:?})");
            }
        }
    }
}

/// Derive `p` overlapping rank images from one rendered frame: rank `r`
/// keeps a pseudo-random subset of the frame's fragments with its depths
/// sheared by rank, so depth ordering across ranks is genuinely contested.
fn split_frame(frame: &Framebuffer, p: usize) -> Vec<RankImage> {
    let full = strawman::api::to_rank_image(frame);
    (0..p)
        .map(|r| {
            let mut img = RankImage::empty(full.width, full.height);
            for i in 0..img.num_pixels() {
                let v = (i * 2654435761 + r * 40503) & 0xffff;
                if v % 5 != 0 {
                    img.color[i] = full.color[i];
                    img.depth[i] = full.depth[i] + r as f32 * 0.25;
                }
            }
            img
        })
        .collect()
}

/// Every renderer's output through the DFB: bit-identical to the serial
/// reference fold, and within the float-association tolerance of each
/// barriered round exchange (direct-send, binary-swap, radix-k).
#[test]
fn dfb_matches_round_exchanges_on_all_four_renderers() {
    let net = NetModel::cluster();
    let geom = surface();
    let cam = Camera::close_view(&geom.bounds);
    let tf = TransferFunction::rainbow(geom.scalar_range);
    let rt_frame = RayTracer::new(Device::Serial, geom.clone())
        .render_with_map(&cam, 48, 48, &RtConfig::workload2(), &tf)
        .frame;
    let raster_frame = rasterize(&Device::Serial, &geom, &cam, 48, 48, &tf, None).frame;

    let grid = field_grid(FieldKind::Turbulence, [12, 12, 12]);
    let range = grid.field("scalar").unwrap().range().unwrap();
    let vtf = TransferFunction::sparse_features(range);
    let vcam = Camera::close_view(&grid.bounds());
    let svr_cfg = SvrConfig { samples_per_ray: 48, ..Default::default() };
    let svr_frame =
        render_structured(&Device::Serial, &grid, "scalar", &vcam, 48, 48, &vtf, &svr_cfg)
            .unwrap()
            .frame;
    let tets = mesh::HexMesh::from_uniform_grid(&grid).to_tets();
    let uvr_cfg = UvrConfig { depth_samples: 32, ..Default::default() };
    let uvr_frame =
        render_unstructured(&Device::Serial, &tets, "scalar", &vcam, 48, 48, &vtf, &uvr_cfg)
            .unwrap()
            .frame;

    for (name, frame) in [
        ("raytrace", &rt_frame),
        ("raster", &raster_frame),
        ("structured_vr", &svr_frame),
        ("unstructured_vr", &uvr_frame),
    ] {
        let images = split_frame(frame, 4);
        let factors = compositing::algorithms::default_factors(images.len());
        for mode in [CompositeMode::ZBuffer, CompositeMode::AlphaOrdered] {
            let expect = reference(&images, mode);
            let opts = ExchangeOptions::default();
            let (dfb, _) = dfb_compose_opts(&images, mode, net, opts);
            assert_eq!(
                image_bits(&dfb),
                image_bits(&expect),
                "{name} {mode:?}: DFB must match the reference bit-for-bit"
            );
            let (ds, _) = direct_send_opts(&images, mode, net, opts);
            assert!(dfb.max_color_diff(&ds) < 2e-5, "{name} {mode:?} vs direct_send");
            let (bs, _) = binary_swap_opts(&images, mode, net, opts);
            assert!(dfb.max_color_diff(&bs) < 2e-5, "{name} {mode:?} vs binary_swap");
            let (rk, _) = radix_k_opts(&images, mode, net, &factors, opts);
            assert!(dfb.max_color_diff(&rk) < 2e-5, "{name} {mode:?} vs radix_k");
        }
    }
}
