//! In situ integration of the LULESH proxy: Lagrangian shock hydro on an
//! unstructured hex mesh, rendered tightly-coupled with Strawman every
//! cycle. Mirrors the paper's Listings 4.1-4.3; the `[strawman:...]` marker
//! comments delimit the integration code Table 10 counts.

use conduit_node::Node;
use sims::{Lulesh, ProxySim};
use std::sync::Arc;
use strawman::{Options, Strawman};

fn main() {
    let mut sim = Lulesh::new(24);
    let mut sm = Strawman::open(Options::default());
    let cycles = 5;

    for _ in 0..cycles {
        sim.step();
        let mesh = sim.hex_mesh();

        // Describe the simulation's mesh with the conventions of Section 4.3.
        // LULESH's layout matches the renderer's data model directly (the
        // paper's "least integration code" case).
        // [strawman:data description]
        let xs: Arc<Vec<f32>> = Arc::new(mesh.points.iter().map(|p| p.x).collect());
        let ys: Arc<Vec<f32>> = Arc::new(mesh.points.iter().map(|p| p.y).collect());
        let zs: Arc<Vec<f32>> = Arc::new(mesh.points.iter().map(|p| p.z).collect());
        let conn: Arc<Vec<u32>> = Arc::new(mesh.hexes.iter().flatten().copied().collect());
        let mut data = Node::new();
        data.set("state/time", sim.time());
        data.set("state/cycle", sim.cycle() as i64);
        data.set("state/domain", 0i64);
        data.set("coords/type", "explicit");
        data.set_external_f32("coords/x", xs);
        data.set_external_f32("coords/y", ys);
        data.set_external_f32("coords/z", zs);
        data.set("topology/type", "unstructured");
        data.set("topology/elements/shape", "hexs");
        data.set_external_u32("topology/elements/connectivity", conn);
        data.set("fields/e/association", "element");
        data.set("fields/e/values", mesh.field("e").unwrap().values.clone());
        // [strawman:end]

        // [strawman:action descriptions]
        let mut actions = Node::new();
        let add = actions.append();
        add.set("action", "AddPlot");
        add.set("var", "e");
        let draw = actions.append();
        draw.set("action", "DrawPlots");
        let save = actions.append();
        save.set("action", "SaveImage");
        save.set("fileName", format!("lulesh_{:04}", sim.cycle()));
        save.set("format", "png");
        save.set("width", 400i64);
        save.set("height", 400i64);
        // [strawman:end]

        // [strawman:api calls]
        sm.publish(&data).expect("publish");
        sm.execute(&actions).expect("execute");
        // [strawman:end]
    }

    let vis: f64 = sm.records.iter().map(|r| r.render_seconds).sum();
    println!(
        "LULESH: {} cycles, {} renders, {:.3} s visualization total",
        cycles,
        sm.records.len(),
        vis
    );
    for r in &sm.records {
        if let Some(p) = &r.path {
            println!(
                "  {} ({} px active, {:.3} s)",
                p.display(),
                r.active_pixels,
                r.render_seconds
            );
        }
    }
    sm.close();
}
