//! In situ integration of the Kripke proxy: Sn transport on a uniform grid,
//! rendered with the rasterizer (the paper's Kripke runs used OSMesa
//! rasterization). Kripke's array ordering does not match the renderer's, so
//! the field is copied at publish time — the paper's "middle" integration
//! cost, visible in the extra lines below.

use conduit_node::Node;
use sims::{Kripke, ProxySim};
use strawman::{Options, Strawman};

fn main() {
    let mut sim = Kripke::new(28);
    let mut sm = Strawman::open(Options::default());
    let cycles = 3;

    for _ in 0..cycles {
        sim.step();
        let grid = sim.grid();

        // [strawman:data description]
        let mut data = Node::new();
        data.set("state/time", sim.time());
        data.set("state/cycle", sim.cycle() as i64);
        data.set("state/domain", 0i64);
        data.set("coords/type", "uniform");
        data.set("coords/dims/i", grid.dims[0] as i64);
        data.set("coords/dims/j", grid.dims[1] as i64);
        data.set("coords/dims/k", grid.dims[2] as i64);
        data.set("coords/origin/x", grid.origin.x as f64);
        data.set("coords/origin/y", grid.origin.y as f64);
        data.set("coords/origin/z", grid.origin.z as f64);
        data.set("coords/spacing/x", grid.spacing.x as f64);
        data.set("coords/spacing/y", grid.spacing.y as f64);
        data.set("coords/spacing/z", grid.spacing.z as f64);
        // Kripke's angular-flux-major ordering must be repacked into the
        // renderer's point-major layout: an explicit copy, not zero-copy.
        data.set("fields/phi/association", "vertex");
        data.set("fields/phi/values", grid.field("phi_p").unwrap().values.clone());
        // [strawman:end]

        // [strawman:action descriptions]
        let mut actions = Node::new();
        let add = actions.append();
        add.set("action", "AddPlot");
        add.set("var", "phi");
        add.set("renderer", "rasterizer");
        let draw = actions.append();
        draw.set("action", "DrawPlots");
        let save = actions.append();
        save.set("action", "SaveImage");
        save.set("fileName", format!("kripke_{:04}", sim.cycle()));
        save.set("format", "png");
        save.set("width", 400i64);
        save.set("height", 400i64);
        // [strawman:end]

        // [strawman:api calls]
        sm.publish(&data).expect("publish");
        sm.execute(&actions).expect("execute");
        // [strawman:end]
    }

    let vis: f64 = sm.records.iter().map(|r| r.render_seconds).sum();
    println!(
        "Kripke: {} cycles, {} renders, {:.3} s visualization total",
        cycles,
        sm.records.len(),
        vis
    );
    sm.close();
}
