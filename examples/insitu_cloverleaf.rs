//! In situ integration of the CloverLeaf3D proxy: compressible Euler hydro
//! on a rectilinear grid, volume rendered every cycle. CloverLeaf carries
//! ghost zones; the paper's integration had to strip them by hand because
//! "Strawman currently does not support" ghosts. This repo implements that
//! future work: the example publishes the ghost-padded arrays as-is and
//! declares `ghost/{i,j,k}`, letting the infrastructure strip them.

use conduit_node::Node;
use sims::{Cloverleaf, ProxySim};
use strawman::{Options, Strawman};

fn main() {
    let mut sim = Cloverleaf::new(40);
    let mut sm = Strawman::open(Options::default());
    let cycles = 4;

    for _ in 0..cycles {
        sim.step();
        let grid = sim.grid();

        // [strawman:data description]
        // CloverLeaf's native arrays carry one ghost layer per side. Publish
        // them padded, exactly as the simulation stores them, and declare
        // the layer counts; Strawman strips the ghosts on conversion.
        let pad_axis = |axis: &[f32]| -> Vec<f32> {
            let dx0 = axis[1] - axis[0];
            let dxn = axis[axis.len() - 1] - axis[axis.len() - 2];
            let mut out = Vec::with_capacity(axis.len() + 2);
            out.push(axis[0] - dx0);
            out.extend_from_slice(axis);
            out.push(axis[axis.len() - 1] + dxn);
            out
        };
        let dims = [grid.xs.len() - 1, grid.ys.len() - 1, grid.zs.len() - 1];
        let pad_cells = |values: &[f32]| -> Vec<f32> {
            let pd = [dims[0] + 2, dims[1] + 2, dims[2] + 2];
            let mut out = vec![0.0f32; pd[0] * pd[1] * pd[2]];
            for k in 0..pd[2] {
                for j in 0..pd[1] {
                    for i in 0..pd[0] {
                        // Clamp to the interior (CloverLeaf's reflective halo).
                        let ci = i.clamp(1, dims[0]) - 1;
                        let cj = j.clamp(1, dims[1]) - 1;
                        let ck = k.clamp(1, dims[2]) - 1;
                        out[(k * pd[1] + j) * pd[0] + i] =
                            values[(ck * dims[1] + cj) * dims[0] + ci];
                    }
                }
            }
            out
        };
        let mut data = Node::new();
        data.set("state/time", sim.time());
        data.set("state/cycle", sim.cycle() as i64);
        data.set("state/domain", 0i64);
        data.set("coords/type", "rectilinear");
        data.set("coords/values/x", pad_axis(&grid.xs));
        data.set("coords/values/y", pad_axis(&grid.ys));
        data.set("coords/values/z", pad_axis(&grid.zs));
        data.set("ghost/i", 1i64);
        data.set("ghost/j", 1i64);
        data.set("ghost/k", 1i64);
        data.set("fields/density/association", "element");
        data.set("fields/density/values", pad_cells(&grid.field("density").unwrap().values));
        data.set("fields/energy/association", "element");
        data.set("fields/energy/values", pad_cells(&grid.field("energy").unwrap().values));
        // [strawman:end]

        // [strawman:action descriptions]
        let mut actions = Node::new();
        let add = actions.append();
        add.set("action", "AddPlot");
        add.set("var", "density");
        add.set("type", "volume");
        let draw = actions.append();
        draw.set("action", "DrawPlots");
        let save = actions.append();
        save.set("action", "SaveImage");
        save.set("fileName", format!("cloverleaf_{:04}", sim.cycle()));
        save.set("format", "png");
        save.set("width", 400i64);
        save.set("height", 400i64);
        // [strawman:end]

        // [strawman:api calls]
        sm.publish(&data).expect("publish");
        sm.execute(&actions).expect("execute");
        // [strawman:end]
    }

    let vis: f64 = sm.records.iter().map(|r| r.render_seconds).sum();
    println!(
        "CloverLeaf3D: {} cycles, {} renders, {:.3} s visualization total",
        cycles,
        sm.records.len(),
        vis
    );
    sm.close();
}
