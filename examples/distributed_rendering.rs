//! Sort-last distributed rendering over the simulated MPI runtime: four
//! ranks each own a spatial sub-domain, render it locally with the DPP ray
//! tracer, and the images are composited — once with threaded message
//! passing (gather + ordered merge) and once with the lockstep radix-k
//! algorithm — producing identical pictures.

use compositing::{radix_k, reference, CompositeMode, RankImage};
use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::isosurface::isosurface;
use mpirt::{NetModel, World};
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use strawman::api::{from_rank_image, to_rank_image};
use vecmath::{Aabb, Camera, Vec3};

const RANKS: usize = 4;
const SIDE: u32 = 320;

/// Each rank renders the isosurface restricted to its z-slab of the domain.
fn render_rank(rank: usize, camera: &Camera) -> RankImage {
    let cells = 40usize;
    let grid = field_grid(FieldKind::Tangle, [cells, cells, cells]);
    let full = isosurface(&grid, "scalar", 0.0, Some("elevation"));
    // Domain decomposition: keep triangles whose centroid falls in this
    // rank's z-slab.
    let b = grid.bounds();
    let z0 = b.min.z + b.extent().z * rank as f32 / RANKS as f32;
    let z1 = b.min.z + b.extent().z * (rank + 1) as f32 / RANKS as f32;
    let mut local = mesh::TriMesh::default();
    for t in 0..full.num_tris() {
        let pts = full.tri_points(t);
        let c = (pts[0] + pts[1] + pts[2]) / 3.0;
        if c.z >= z0 && c.z < z1 {
            let base = local.points.len() as u32;
            for (i, p) in pts.iter().enumerate() {
                local.points.push(*p);
                local.scalars.push(full.scalars[full.tris[t][i] as usize]);
            }
            local.tris.push([base, base + 1, base + 2]);
        }
    }
    // Consistent color tables across ranks need a *global* scalar range —
    // the data-extent reduction the paper added to EAVL for sort-last use.
    let tf = vecmath::TransferFunction::rainbow(full.scalar_range());
    let tracer = RayTracer::new(Device::parallel_with_threads(2), TriGeometry::from_mesh(&local));
    let out = tracer.render_with_map(camera, SIDE, SIDE, &RtConfig::workload2(), &tf);
    to_rank_image(&out.frame)
}

fn main() {
    let bounds = Aabb::from_corners(Vec3::splat(-3.2), Vec3::splat(3.2));
    let camera = Camera::close_view(&bounds);

    // --- Path 1: threaded ranks + gather-to-root compositing. ---
    let t0 = std::time::Instant::now();
    let frames: Vec<Option<RankImage>> = World::run(RANKS, NetModel::cluster(), |comm| {
        let img = render_rank(comm.rank(), &camera);
        // Ship the full image to root as raw f32s (color + depth).
        let mut payload: Vec<f32> = Vec::with_capacity(img.num_pixels() * 5);
        for (c, d) in img.color.iter().zip(img.depth.iter()) {
            payload.extend_from_slice(&[c.r, c.g, c.b, c.a, *d]);
        }
        if comm.rank() == 0 {
            let mut images = vec![img];
            for src in 1..comm.size() {
                let raw = comm.recv_f32s(src, 42);
                let mut other = RankImage::empty(SIDE, SIDE);
                for (i, chunk) in raw.chunks_exact(5).enumerate() {
                    other.color[i] = vecmath::Color::new(chunk[0], chunk[1], chunk[2], chunk[3]);
                    other.depth[i] = chunk[4];
                }
                images.push(other);
            }
            Some(reference(&images, CompositeMode::ZBuffer))
        } else {
            comm.send_f32s(0, 42, &payload);
            None
        }
    });
    let via_comm = frames[0].clone().expect("root image");
    println!("threaded gather compositing: {:.2} s wall", t0.elapsed().as_secs_f64());

    // --- Path 2: lockstep radix-k over the same rank images. ---
    let images: Vec<RankImage> = (0..RANKS).map(|r| render_rank(r, &camera)).collect();
    let (via_radix, stats) = radix_k(
        &images,
        CompositeMode::ZBuffer,
        NetModel::cluster(),
        &compositing::algorithms::default_factors(RANKS),
    );
    println!(
        "radix-k: {} rounds, {} bytes moved, {:.4} s simulated",
        stats.rounds, stats.total_bytes, stats.simulated_seconds
    );

    let diff = via_comm.max_color_diff(&via_radix);
    println!("max per-channel difference between the two paths: {diff:.2e}");
    assert!(diff < 1e-5, "compositing paths disagree");

    let mut frame = from_rank_image(&via_radix);
    frame.set_background(vecmath::Color::WHITE);
    strawman::api::write_image(&frame, std::path::Path::new("distributed.png"), "png")
        .expect("write png");
    println!("wrote distributed.png ({} active pixels)", frame.active_pixels());
}
