//! Calibrate-then-schedule: the Chapter VI adaptive infrastructure driven by
//! *real wall-clock renders*. A quick offline study fits the performance
//! models on this machine; the fitted set seeds `sched::Scheduler`, which
//! plugs into Strawman's admission hook. A probe cycle at full fidelity
//! measures what the un-budgeted pipeline costs, the budget is then set well
//! below it, and the scheduler must degrade (or reject) renders to keep each
//! cycle inside the budget — with its online refit tightening predictions
//! from the measured wall times as the run proceeds.

use conduit_node::Node;
use dpp::Device;
use mpirt::NetModel;
use perfmodel::feasibility::ModelSet;
use perfmodel::mapping::MappingConstants;
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::RendererKind;
use perfmodel::study::{run_composite_study, run_render_study, StudyConfig};
use sched::{Scheduler, SchedulerConfig};
use sims::{Kripke, ProxySim};
use std::cell::RefCell;
use std::rc::Rc;
use strawman::{
    AdmissionDecision, AdmissionHook, AdmissionRequest, CompositeObservation, ExecutedRender,
    Options, Strawman, StrawmanError,
};

/// Shares one `Scheduler` between Strawman's hook slot and the reporting
/// code, so the run can print the scheduler's own cycle history afterwards.
struct SharedSched(Rc<RefCell<Scheduler>>);

impl AdmissionHook for SharedSched {
    fn admit(&mut self, req: &AdmissionRequest) -> AdmissionDecision {
        AdmissionHook::admit(&mut *self.0.borrow_mut(), req)
    }
    fn observe(&mut self, done: &ExecutedRender) {
        AdmissionHook::observe(&mut *self.0.borrow_mut(), done)
    }
    fn observe_composite(&mut self, done: &CompositeObservation) {
        AdmissionHook::observe_composite(&mut *self.0.borrow_mut(), done)
    }
}

/// Calibrate: a small study renders real frames and fits the models.
fn calibrate(device: &Device) -> (ModelSet, MappingConstants) {
    let study = StudyConfig {
        tests: 8,
        data_cells: (16, 40),
        image_side: (64, 192),
        fill: (0.5, 1.0),
        seed: 11,
    };
    let rt = run_render_study(device, RendererKind::RayTracing, &study).expect("rt study");
    let ra = run_render_study(device, RendererKind::Rasterization, &study).expect("rast study");
    let vr = run_render_study(device, RendererKind::VolumeRendering, &study).expect("vr study");
    let comp = run_composite_study(NetModel::cluster(), &[1, 4, 16], &[128, 256], 5)
        .expect("composite study");
    let set = ModelSet {
        device: "parallel".into(),
        rt: RtModel.fit(&rt),
        rt_build: RtBuildModel.fit(&rt),
        rast: RastModel.fit(&ra),
        vr: VrModel.fit(&vr),
        comp: CompositeModel.fit(&comp),
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    };
    let mut all = rt;
    all.extend(ra);
    all.extend(vr);
    let k = MappingConstants::calibrated(&all);
    (set, k)
}

/// One in situ cycle: publish the Kripke grid, request a volume plot and a
/// ray-traced pseudocolor plot at full fidelity, draw. Returns the wall
/// seconds the cycle's admitted renders actually took and whether any render
/// was rejected.
fn run_cycle(sm: &mut Strawman, sim: &Kripke, side: i64) -> (f64, bool) {
    let grid = sim.grid();
    let mut data = Node::new();
    data.set("state/time", sim.time());
    data.set("state/cycle", sim.cycle() as i64);
    data.set("state/domain", 0i64);
    data.set("coords/type", "uniform");
    data.set("coords/dims/i", grid.dims[0] as i64);
    data.set("coords/dims/j", grid.dims[1] as i64);
    data.set("coords/dims/k", grid.dims[2] as i64);
    data.set("coords/origin/x", grid.origin.x as f64);
    data.set("coords/origin/y", grid.origin.y as f64);
    data.set("coords/origin/z", grid.origin.z as f64);
    data.set("coords/spacing/x", grid.spacing.x as f64);
    data.set("coords/spacing/y", grid.spacing.y as f64);
    data.set("coords/spacing/z", grid.spacing.z as f64);
    data.set("fields/phi/association", "vertex");
    data.set("fields/phi/values", grid.field("phi_p").unwrap().values.clone());

    let mut actions = Node::new();
    let vol = actions.append();
    vol.set("action", "AddPlot");
    vol.set("var", "phi");
    vol.set("type", "volume");
    let surf = actions.append();
    surf.set("action", "AddPlot");
    surf.set("var", "phi");
    surf.set("renderer", "raytracer");
    let draw = actions.append();
    draw.set("action", "DrawPlots");
    let save = actions.append();
    save.set("action", "SaveImage");
    // An empty file name renders without writing an image to disk.
    save.set("fileName", "");
    save.set("width", side);
    save.set("height", side);

    let before = sm.records.len();
    sm.publish(&data).expect("publish");
    let rejected = match sm.execute(&actions) {
        Ok(()) => false,
        Err(StrawmanError::Rejected) => true,
        Err(e) => panic!("execute: {e}"),
    };
    let spent: f64 = sm.records[before..].iter().map(|r| r.render_seconds).sum();
    (spent, rejected)
}

fn main() {
    let device = Device::parallel();
    println!("calibrating performance models on this machine...");
    let (set, constants) = calibrate(&device);

    // --- Probe: one full-fidelity cycle with no budget in force. ---
    let side = 768i64;
    let mut sim = Kripke::new(28);
    sim.step();
    let mut probe = Strawman::open(Options { device: device.clone(), ..Options::default() });
    let (full_s, _) = run_cycle(&mut probe, &sim, side);
    probe.close();

    // --- Schedule: budget well below the measured full-fidelity cost. ---
    let budget_s = (full_s * 0.4).max(1e-4);
    println!(
        "full-fidelity cycle measured at {full_s:.3} s; budgeting {budget_s:.3} s/cycle \
         ({side}x{side} requested)"
    );
    let sched =
        Rc::new(RefCell::new(Scheduler::new(set, constants, SchedulerConfig::new(budget_s, 1))));
    let mut sm = Strawman::open(Options {
        device,
        cycle_budget_s: Some(budget_s),
        scheduler: Some(Box::new(SharedSched(Rc::clone(&sched)))),
        ..Options::default()
    });

    let cycles = 8;
    for _ in 0..cycles {
        sim.step();
        let (spent, rejected) = run_cycle(&mut sm, &sim, side);
        let note = if rejected { " (some renders rejected)" } else { "" };
        println!(
            "cycle {:2}: {:.3} s of renders, {:.0}% of budget{note}",
            sim.cycle(),
            spent,
            spent / budget_s * 100.0
        );
    }

    // Close the scheduler's last open cycle, then report its own view: the
    // ladder level it operated at and how prediction error moved as the
    // online refit absorbed the measured wall times.
    sched.borrow_mut().end_cycle();
    let (admitted, degraded, rejected) = sm.admissions.totals();
    println!("\nadmissions: {admitted} admitted, {degraded} degraded, {rejected} rejected");
    let sched = sched.borrow();
    for rec in &sched.history {
        println!(
            "  cycle {:2}: level {}, predicted {:.3} s, actual {:.3} s, within budget: {}",
            rec.cycle,
            rec.level,
            rec.predicted_s,
            rec.actual_s,
            rec.within_budget()
        );
    }
    let within = sched.history.iter().filter(|r| r.within_budget()).count();
    println!(
        "{within}/{} scheduled cycles stayed inside the {budget_s:.3} s budget",
        sched.history.len()
    );
    drop(sched);
    sm.close();
}
