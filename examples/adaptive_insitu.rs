//! The Chapter VI "adaptive infrastructure", running: a simulation registers
//! time and memory constraints; the adaptive layer (backed by freshly fitted
//! performance models) picks the rendering configuration each cycle, and the
//! in situ renders obey the budget.

use dpp::Device;
use mpirt::NetModel;
use perfmodel::extensions::{AdaptivePlanner, Constraints, SliceModel};
use perfmodel::feasibility::ModelSet;
use perfmodel::mapping::MappingConstants;
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::RendererKind;
use perfmodel::study::{run_composite_study, run_render_study, StudyConfig};
use sims::ProxySim;

fn main() {
    // --- Calibrate: a small study fits the six models (once, offline). ---
    println!("calibrating performance models...");
    let device = Device::parallel();
    let study = StudyConfig {
        tests: 8,
        data_cells: (16, 40),
        image_side: (64, 192),
        fill: (0.5, 1.0),
        seed: 11,
    };
    let rt = run_render_study(&device, RendererKind::RayTracing, &study).unwrap();
    let ra = run_render_study(&device, RendererKind::Rasterization, &study).unwrap();
    let vr = run_render_study(&device, RendererKind::VolumeRendering, &study).unwrap();
    let comp = run_composite_study(NetModel::cluster(), &[1, 4, 16], &[128, 256], 5).unwrap();
    let set = ModelSet {
        device: "parallel".into(),
        rt: RtModel.fit(&rt),
        rt_build: RtBuildModel.fit(&rt),
        rast: RastModel.fit(&ra),
        vr: VrModel.fit(&vr),
        comp: CompositeModel.fit(&comp),
        comp_compressed: None,
        comp_dfb: None,
    };
    let mut all = rt;
    all.extend(ra);
    all.extend(vr);
    let planner = AdaptivePlanner::new(set, MappingConstants::calibrated(&all));

    // Bonus: the slicing model of Section 6.1.
    let (slice_model, _) = SliceModel::calibrate(&[12, 20, 28]);
    println!(
        "slicing model: R^2 = {:.3}; predicted slice of a 256^3 grid: {:.4} s",
        slice_model.fit.r_squared,
        slice_model.predict_for_grid(256)
    );

    // --- The simulation registers its constraints (Section 6.3). ---
    let constraints = Constraints {
        time_budget_s: 2.0,
        memory_limit_bytes: 256 << 20,
        images: 4,
        min_image_side: 128,
        max_image_side: 4096,
    };
    println!(
        "\nconstraints: {:.1} s/cycle for {} images, {} MiB scratch",
        constraints.time_budget_s,
        constraints.images,
        constraints.memory_limit_bytes >> 20
    );

    // --- Drive the simulation; the planner picks the configuration. ---
    let n = 32usize;
    let mut sim = sims::Cloverleaf::new(n);
    for _ in 0..3 {
        sim.step();
        let plan = planner.plan(n, 1, &constraints).expect("constraints should be satisfiable");
        println!(
            "cycle {}: plan = {} at {}x{} (expected {:.3} s, {} MiB)",
            sim.cycle(),
            plan.renderer.name(),
            plan.image_side,
            plan.image_side,
            plan.expected_seconds,
            plan.expected_bytes >> 20
        );

        // Execute the plan.
        let grid = sim.grid().to_uniform();
        let t0 = std::time::Instant::now();
        let cam = vecmath::Camera::close_view(&grid.bounds());
        for _ in 0..constraints.images {
            match plan.renderer {
                RendererKind::VolumeRendering => {
                    let range = grid.field("energy_p").unwrap().range().unwrap();
                    let tf = vecmath::TransferFunction::sparse_features(range);
                    let _ = render::volume_structured::render_structured(
                        &device,
                        &grid,
                        "energy_p",
                        &cam,
                        plan.image_side,
                        plan.image_side,
                        &tf,
                        &render::volume_structured::SvrConfig::default(),
                    );
                }
                _ => {
                    let tris = mesh::external_faces::external_faces_grid(&grid, "energy_p");
                    let geom = render::raytrace::TriGeometry::from_mesh(&tris);
                    let tf = vecmath::TransferFunction::rainbow(geom.scalar_range);
                    match plan.renderer {
                        RendererKind::Rasterization => {
                            let _ = render::raster::rasterize(
                                &device,
                                &geom,
                                &cam,
                                plan.image_side,
                                plan.image_side,
                                &tf,
                                None,
                            );
                        }
                        _ => {
                            let rt = render::raytrace::RayTracer::new(device.clone(), geom);
                            let _ = rt.render(
                                &cam,
                                plan.image_side,
                                plan.image_side,
                                &render::raytrace::RtConfig::workload2(),
                            );
                        }
                    }
                }
            }
        }
        let actual = t0.elapsed().as_secs_f64();
        println!(
            "         actual {:.3} s ({:.0}% of budget)",
            actual,
            actual / constraints.time_budget_s * 100.0
        );
    }
}
