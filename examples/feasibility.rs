//! Answer the paper's feasibility question end-to-end:
//! *is it possible to perform X1 rendering tasks while devoting no more than
//! X2 time to them?*
//!
//! Runs a quick performance study, fits the six single-node models plus the
//! compositing model, and uses them to answer the two Section 5.9 questions.

use dpp::Device;
use mpirt::NetModel;
use perfmodel::feasibility::{images_in_budget, rt_vs_rast_map, ModelSet};
use perfmodel::mapping::MappingConstants;
use perfmodel::models::{CompositeModel, ModelForm, RastModel, RtBuildModel, RtModel, VrModel};
use perfmodel::sample::RendererKind;
use perfmodel::study::{run_composite_study, run_render_study, StudyConfig};

fn main() {
    println!("running the quick performance study (this renders ~70 test frames)...");
    let study = StudyConfig::quick();
    let device = Device::parallel();
    let rt = run_render_study(&device, RendererKind::RayTracing, &study).unwrap();
    let ra = run_render_study(&device, RendererKind::Rasterization, &study).unwrap();
    let vr = run_render_study(&device, RendererKind::VolumeRendering, &study).unwrap();
    let comp = run_composite_study(NetModel::cluster(), &[1, 2, 4, 8, 16, 32], &[128, 256, 512], 7)
        .unwrap();

    let set = ModelSet {
        device: "parallel".into(),
        rt: RtModel.fit(&rt),
        rt_build: RtBuildModel.fit(&rt),
        rast: RastModel.fit(&ra),
        vr: VrModel.fit(&vr),
        comp: CompositeModel.fit(&comp),
        comp_compressed: None,
        comp_dfb: None,
        pass_ao: None,
        pass_shadows: None,
        lod_half: None,
        lod_quarter: None,
    };
    println!(
        "model fits: RT R^2={:.3}  RAST R^2={:.3}  VR R^2={:.3}  COMP R^2={:.3}",
        set.rt.r_squared(),
        set.rast.r_squared(),
        set.vr.r_squared(),
        set.comp.r_squared()
    );

    let mut all = rt.clone();
    all.extend(ra.clone());
    all.extend(vr.clone());
    let k = MappingConstants::calibrated(&all);
    println!(
        "mapping constants: fill={:.2}  ppt={:.1}  spr_base={:.0}\n",
        k.ap_fill, k.ppt_factor, k.spr_base
    );

    // Question 1 (Figure 14): how many images fit in a 60-second budget?
    println!("Q1: images renderable in 60 s (32 tasks, 200^3 cells/task):");
    println!("{:>10}  {:>12} {:>12} {:>12}", "image", "raytrace", "rasterize", "volume");
    let sides = [512u32, 1024, 2048, 4096];
    let per: Vec<Vec<(u32, f64)>> =
        [RendererKind::RayTracing, RendererKind::Rasterization, RendererKind::VolumeRendering]
            .iter()
            .map(|&r| images_in_budget(&set, &k, r, 200, 32, &sides, 60.0))
            .collect();
    for (i, &side) in sides.iter().enumerate() {
        println!(
            "{:>8}^2  {:>12.0} {:>12.0} {:>12.0}",
            side, per[0][i].1, per[1][i].1, per[2][i].1
        );
    }

    // Question 2 (Figure 15): when does ray tracing beat rasterization?
    println!("\nQ2: T_RT / T_RAST for 100 renders (<1 = ray tracing wins):");
    let sides = [384u32, 1024, 2048, 4096];
    let datas = [100usize, 250, 500];
    let map = rt_vs_rast_map(&set, &k, 32, 100, &sides, &datas);
    print!("{:>12}", "cells\\image");
    for s in sides {
        print!(" {s:>9}^2");
    }
    println!();
    for n in datas {
        print!("{:>11}^3", n);
        for s in sides {
            let cell = map.iter().find(|c| c.image_side == s && c.cells_per_task == n).unwrap();
            print!(" {:>11.2}", cell.rt_over_rast);
        }
        println!();
    }
    println!("\n(expect ray tracing to win toward the bottom-left: heavy geometry, few pixels)");
}
