//! Quickstart: extract an isosurface from a synthetic scalar field, ray
//! trace it with the data-parallel renderer, and write a PNG.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::isosurface::isosurface;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use vecmath::Camera;

fn main() {
    // 1. A 64^3 grid holding the classic "tangle" field.
    let grid = field_grid(FieldKind::Tangle, [64, 64, 64]);
    println!("grid: {} cells", grid.num_cells());

    // 2. Marching-tetrahedra isosurface at the zero crossing, colored by z.
    let surface = isosurface(&grid, "scalar", 0.0, Some("elevation"));
    println!("isosurface: {} triangles", surface.num_tris());

    // 3. Build the LBVH on the parallel device and render WORKLOAD3
    //    (shading + ambient occlusion + shadows + anti-aliasing).
    let geom = TriGeometry::from_mesh_smooth(&surface);
    let tracer = RayTracer::new(Device::parallel(), geom);
    println!("BVH built in {:.3} s", tracer.bvh_build_seconds);

    let camera = Camera::close_view(&tracer.geom.bounds);
    let out = tracer.render(&camera, 800, 800, &RtConfig::workload3());
    println!(
        "rendered {} active pixels with {} rays in {:.3} s",
        out.stats.active_pixels, out.stats.rays_traced, out.stats.render_seconds
    );
    for phase in &out.phases.phases {
        println!("  {:<18} {:.4} s", phase.name, phase.seconds);
    }

    // 4. Deliver the image.
    let mut frame = out.frame;
    frame.set_background(vecmath::Color::WHITE);
    strawman::api::write_image(&frame, std::path::Path::new("quickstart.png"), "png")
        .expect("write png");
    println!("wrote quickstart.png");
}
