//! The Cinema-style image-database workload that motivates the feasibility
//! question (Section 1.1): extract *many* renderings of the same geometry
//! under varying camera parameters, amortizing the acceleration-structure
//! build across all of them.

use dpp::Device;
use mesh::datasets::{field_grid, FieldKind};
use mesh::isosurface::isosurface;
use render::raytrace::{RayTracer, RtConfig, TriGeometry};
use vecmath::{Camera, Vec3};

fn main() {
    let grid = field_grid(FieldKind::ShockShell, [48, 48, 48]);
    let surface = isosurface(&grid, "scalar", 0.5, Some("elevation"));
    println!("database geometry: {} triangles", surface.num_tris());

    let tracer = RayTracer::new(Device::parallel(), TriGeometry::from_mesh(&surface));
    println!("BVH build: {:.3} s (amortized across the database)", tracer.bvh_build_seconds);

    // Camera sweep: phi x theta grid around the data (a small Cinema DB).
    let out_dir = std::path::PathBuf::from("image_db");
    std::fs::create_dir_all(&out_dir).expect("mkdir image_db");
    let bounds = tracer.geom.bounds;
    let cfg = RtConfig::workload2();
    let (n_phi, n_theta, side) = (8u32, 3u32, 256u32);

    let t0 = std::time::Instant::now();
    let mut total_rays = 0u64;
    for ti in 0..n_theta {
        let theta = 0.3 + 0.9 * ti as f32 / n_theta as f32;
        for pi in 0..n_phi {
            let phi = 2.0 * std::f32::consts::PI * pi as f32 / n_phi as f32;
            let dir = Vec3::new(theta.sin() * phi.cos(), theta.cos(), theta.sin() * phi.sin());
            let cam = Camera::framing(&bounds, dir, 0.9);
            let out = tracer.render(&cam, side, side, &cfg);
            total_rays += out.stats.rays_traced;
            let mut frame = out.frame;
            frame.set_background(vecmath::Color::WHITE);
            let path = out_dir.join(format!("view_t{ti}_p{pi}.png"));
            strawman::api::write_image(&frame, &path, "png").expect("write");
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let n_images = (n_phi * n_theta) as f64;
    println!(
        "rendered {} images ({side}x{side}) in {:.2} s  ->  {:.1} images/s, {:.1} Mrays/s",
        n_images,
        elapsed,
        n_images / elapsed,
        total_rays as f64 / elapsed / 1e6
    );
    println!(
        "at this rate a 60 s in situ budget buys ~{:.0} images per cycle",
        60.0 / (elapsed / n_images)
    );
    println!("images under image_db/");
}
