//! Umbrella crate: examples and integration tests live at the workspace root.
pub use perfmodel;
pub use render;
pub use strawman;
