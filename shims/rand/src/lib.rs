//! Minimal offline stand-in for `rand` 0.8.
//!
//! Deterministic pseudo-randomness for seeded experiments: `StdRng` is a
//! SplitMix64 generator (distinct stream per seed, full 64-bit state walk),
//! exposed through the same trait names the workspace imports —
//! `rand::{Rng, SeedableRng}` and `rand::rngs::StdRng`. Not the upstream
//! ChaCha StdRng, so seeded streams differ from real `rand`; no test in this
//! workspace depends on the exact stream, only on determinism.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Marker distribution for `Rng::gen` (uniform over the type's natural
/// domain; floats are uniform in `[0, 1)`).
pub struct Standard;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = Standard.sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, statistically solid, deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn float_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(0..5usize);
            assert!(v < 5);
            let w = rng.gen_range(0..=3usize);
            assert!(w <= 3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
            let f = rng.gen_range(2.0f32..4.0);
            assert!((2.0..4.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive range should reach both ends");
    }
}
