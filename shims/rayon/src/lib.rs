//! Offline stand-in for `rayon` with a **real fork-join thread pool**.
//!
//! The build container has no registry access, so this crate provides the
//! rayon API surface the workspace compiles against — `par_iter`,
//! `par_chunks[_mut]`, `into_par_iter`, `map`/`zip`/`enumerate`, the
//! two-closure `fold(|| id, f).reduce(|| id, op)` shape, `join`, and
//! `ThreadPool`/`ThreadPoolBuilder` — executing everything on worker threads:
//!
//! - A lazily-initialized **global pool** (size = `RAYON_NUM_THREADS` when
//!   set, else the logical core count) serves `par_*` calls made outside any
//!   dedicated pool.
//! - Dedicated [`ThreadPool`]s route work submitted through
//!   [`ThreadPool::install`] to their own workers — `install` really executes
//!   its closure *on a pool thread*, and nested `par_*` calls inside are
//!   clamped to that pool, so thread-count-clamped strong-scaling studies
//!   measure what they claim to. Workers are built on the `crossbeam` shim's
//!   scoped threads.
//!
//! Determinism: chunk partitions are pure functions of input length and grain
//! (see [`Par::with_min_len`]); ordered consumers merge per-chunk results in
//! ascending chunk order, so outputs are deterministic run-to-run, and
//! `fold`/`reduce` partitions are thread-count-independent. Worker panics
//! propagate to the submitting caller, as with real rayon.

mod iter;
mod pool;

pub use iter::{
    fold_grain, overpartition, ChunksMutSource, ChunksSource, EnumerateSource, FoldPar,
    IntoParallelIterator, MapSource, Par, ParallelSlice, ParallelSliceMut, ParallelSource,
    RangeIndex, RangeSource, SliceMutSource, SliceSource, VecSource, ZipSource, DEFAULT_FOLD_GRAIN,
};
pub use pool::{current_num_threads, join, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder};

pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let data = [1u32, 2, 3, 4, 5];
        let total: u32 = data.par_iter().fold(|| 0u32, |a, &b| a + b).reduce(|| 0u32, |a, b| a + b);
        assert_eq!(total, 15);
    }

    #[test]
    fn map_zip_collect() {
        let a = [1, 2, 3];
        let mut b = vec![10, 20, 30];
        let pairs: Vec<i32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(pairs, vec![11, 22, 33]);
        b.par_iter_mut().for_each(|v| *v += 1);
        assert_eq!(b, vec![11, 21, 31]);
    }

    #[test]
    fn chunks_and_ranges() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[9], 18);
        let sums: Vec<usize> = v.par_chunks(4).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![12, 44, 34]);
    }

    #[test]
    fn pool_remembers_thread_count() {
        let p = pool(3);
        assert_eq!(p.current_num_threads(), 3);
        assert_eq!(p.install(|| 7), 7);
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn install_runs_on_a_pool_worker_thread() {
        let p = pool(4);
        let caller = std::thread::current().id();
        let (worker, inside_threads) =
            p.install(|| (std::thread::current().id(), crate::current_num_threads()));
        assert_ne!(worker, caller, "install must execute on a pool worker, not the caller");
        assert_eq!(inside_threads, 4, "current_num_threads inside install reports the pool size");
        // Nested install on the same pool runs inline on the worker.
        let (outer, inner) =
            p.install(|| (std::thread::current().id(), p.install(|| std::thread::current().id())));
        assert_eq!(outer, inner);
    }

    #[test]
    fn parallel_work_is_spread_across_pool_workers() {
        let p = pool(4);
        let ids = Mutex::new(HashSet::new());
        p.install(|| {
            (0..64usize).into_par_iter().with_min_len(1).for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Give other workers a chance to claim tasks.
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        });
        let distinct = ids.lock().unwrap().len();
        assert!(distinct > 1, "expected multiple workers to execute tasks, saw {distinct}");
    }

    #[test]
    fn panic_in_for_each_propagates_to_caller() {
        let p = pool(4);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.install(|| {
                (0..1000usize).into_par_iter().with_min_len(1).for_each(|i| {
                    if i == 123 {
                        panic!("boom at {i}");
                    }
                });
            });
        }));
        let payload = r.expect_err("panic must propagate out of install");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("boom at 123"), "unexpected payload: {msg}");
        // The pool must still be usable afterwards.
        assert_eq!(p.install(|| 21 * 2), 42);
    }

    #[test]
    fn panic_on_global_pool_propagates() {
        let r = std::panic::catch_unwind(|| {
            (0..10_000usize).into_par_iter().for_each(|i| {
                if i == 7777 {
                    panic!("global boom");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn join_runs_both_and_propagates_panics() {
        let (a, b) = crate::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let r = std::panic::catch_unwind(|| crate::join(|| 1, || panic!("right side")));
        assert!(r.is_err());
    }

    #[test]
    fn fold_partition_is_identical_across_pool_sizes() {
        // Float sums are order-sensitive; the fold partition must not depend
        // on the pool size, so every pool produces bit-identical results.
        let data: Vec<f64> = (0..100_000).map(|i| ((i * 37) % 1001) as f64 * 0.1).collect();
        let run = |p: &crate::ThreadPool| {
            p.install(|| {
                data.par_iter().fold(|| 0.0f64, |a, &b| a + b).reduce(|| 0.0f64, |a, b| a + b)
            })
        };
        let r1 = run(&pool(1));
        let r2 = run(&pool(2));
        let r8 = run(&pool(8));
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(r1.to_bits(), r8.to_bits());
    }

    #[test]
    fn collect_preserves_order_under_oversubscription() {
        let p = pool(8);
        let out: Vec<usize> =
            p.install(|| (0..50_000usize).into_par_iter().map(|i| i * 3).collect());
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
    }

    #[test]
    fn with_min_len_controls_task_granularity() {
        let p = pool(4);
        // The number of reduce merges equals the number of chunks, which is
        // observable: grain 5000 over 10k elements => exactly 2 chunks.
        let count_chunks = |min_len: usize| {
            let reduce_calls = AtomicUsize::new(0);
            let total: usize = p.install(|| {
                let it = (0..10_000usize).into_par_iter();
                let it = if min_len > 0 { it.with_min_len(min_len) } else { it };
                it.fold(|| 0usize, |a, i| a + i).reduce(
                    || 0usize,
                    |a, b| {
                        reduce_calls.fetch_add(1, Ordering::Relaxed);
                        a + b
                    },
                )
            });
            assert_eq!(total, 10_000 * 9_999 / 2);
            reduce_calls.load(Ordering::Relaxed)
        };
        assert_eq!(count_chunks(5000), 2, "with_min_len(5000) must yield 2 chunks");
        // Unset => DEFAULT_FOLD_GRAIN (1024) => ceil(10000/1024) = 10 chunks.
        assert_eq!(count_chunks(0), 10);
        assert_eq!(count_chunks(10_000), 1);
    }

    #[test]
    fn zip_truncates_owning_side_without_leaking_items() {
        // Vec side longer than range side: tail elements must be dropped.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D(usize);
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let v: Vec<D> = (0..10).map(D).collect();
        let picked: Vec<usize> = v.into_par_iter().zip(0..4usize).map(|(d, _)| d.0).collect();
        assert_eq!(picked, vec![0, 1, 2, 3]);
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            10,
            "all 10 items dropped (4 moved, 6 truncated)"
        );
    }

    #[test]
    fn vec_into_par_iter_moves_items() {
        let v = vec![String::from("a"), String::from("bb"), String::from("ccc")];
        let lens: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn sum_matches_sequential_for_integers() {
        let s: u64 = (0..100_000u64).into_par_iter().sum();
        assert_eq!(s, 100_000 * 99_999 / 2);
        let empty: u64 = (0..0u64).into_par_iter().sum();
        assert_eq!(empty, 0);
    }
}
