//! Minimal offline stand-in for `rayon`.
//!
//! The build container has no registry access, so this crate provides the
//! rayon API surface the workspace compiles against — `par_iter`,
//! `par_chunks`, `into_par_iter`, the `fold(|| id, f).reduce(|| id, op)`
//! combinator shape, and `ThreadPool`/`ThreadPoolBuilder` — executing
//! everything **sequentially** on the calling thread. Every algorithm in the
//! workspace is deterministic and chunk-structured, so results are identical
//! to a parallel run; only wall-clock speedup is forfeited. `ThreadPool`
//! remembers its requested thread count because experiment metadata
//! (`Device::threads()`) reports it.
//!
//! [`Par`] is both an `Iterator` (so any std combinator not shadowed here
//! still works) and a carrier of inherent rayon-flavoured methods; inherent
//! methods win name resolution, which is how the two-closure `fold`/`reduce`
//! forms resolve correctly.

use std::iter;
use std::slice;

/// Sequential "parallel" iterator wrapper.
pub struct Par<I>(pub I);

impl<I: Iterator> Iterator for Par<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<I::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> Par<I> {
    pub fn map<O, F: FnMut(I::Item) -> O>(self, f: F) -> Par<iter::Map<I, F>> {
        Par(self.0.map(f))
    }

    pub fn enumerate(self) -> Par<iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<J: IntoIterator>(self, other: J) -> Par<iter::Zip<I, J::IntoIter>> {
        Par(self.0.zip(other))
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// Rayon-style fold: per-"thread" accumulators seeded by `identity`.
    /// Sequentially there is one accumulator; the result is an iterator over
    /// it so a trailing `reduce` composes exactly as with real rayon.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Par<iter::Once<A>>
    where
        ID: Fn() -> A,
        F: FnMut(A, I::Item) -> A,
    {
        Par(iter::once(self.0.fold(identity(), fold_op)))
    }

    /// Rayon-style reduce with an identity constructor.
    pub fn reduce<ID, F>(self, identity: ID, mut reduce_op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), &mut reduce_op)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn sum<S: iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn with_min_len(self, _min: usize) -> Par<I> {
        self
    }
}

/// `into_par_iter()` on anything iterable (ranges, vectors, adapters).
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type Iter = T::IntoIter;

    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// `par_iter` / `par_chunks` on shared slices (reached from `Vec` through
/// auto-deref, as with the inherent slice methods).
pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<slice::Iter<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<slice::Iter<'_, T>> {
        Par(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> Par<slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T> {
    fn par_iter_mut(&mut self) -> Par<slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, Par, ParallelSlice, ParallelSliceMut};
}

/// Worker-thread count of the "global pool": the machine's logical core
/// count, so chunked algorithms keep realistic grain sizes.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A pool handle that remembers its configured size. Work submitted through
/// [`ThreadPool::install`] runs inline on the caller.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` (the rayon default) means "use all cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { current_num_threads() } else { self.num_threads };
        Ok(ThreadPool { num_threads: n })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_reduce_matches_rayon_shape() {
        let data = [1u32, 2, 3, 4, 5];
        let total: u32 = data.par_iter().fold(|| 0u32, |a, &b| a + b).reduce(|| 0u32, |a, b| a + b);
        assert_eq!(total, 15);
    }

    #[test]
    fn map_zip_collect() {
        let a = [1, 2, 3];
        let mut b = vec![10, 20, 30];
        let pairs: Vec<i32> = a.par_iter().zip(b.par_iter()).map(|(x, y)| x + y).collect();
        assert_eq!(pairs, vec![11, 22, 33]);
        b.par_iter_mut().for_each(|v| *v += 1);
        assert_eq!(b, vec![11, 21, 31]);
    }

    #[test]
    fn chunks_and_ranges() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v[9], 18);
        let sums: Vec<usize> = v.par_chunks(4).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.len(), 3);
    }

    #[test]
    fn pool_remembers_thread_count() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        assert_eq!(pool.install(|| 7), 7);
        assert!(crate::current_num_threads() >= 1);
    }
}
