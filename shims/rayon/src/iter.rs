//! Parallel-iterator bridges: indexable sources, adapters, and consumers.
//!
//! Every parallel iterator here is *indexed*: a [`ParallelSource`] describes
//! a sequence of known length whose `i`-th element can be produced
//! independently on any thread. Consumers partition `0..len` into contiguous
//! chunks and hand each chunk to the execution engine in [`crate::pool`].
//!
//! # Determinism
//!
//! Chunk boundaries are a pure function of the sequence length and the grain
//! size (set with [`Par::with_min_len`]) — never of scheduling order. Ordered
//! consumers (`collect`, per-chunk accumulators of `fold`/`sum`) write into
//! per-chunk slots and merge them in ascending chunk order on the calling
//! thread, so every bridge is deterministic run-to-run regardless of how the
//! OS schedules workers. For `fold(..).reduce(..)` and `sum` the partition is
//! additionally independent of the pool's thread count (grain defaults to
//! [`DEFAULT_FOLD_GRAIN`]), so results are byte-identical across pool sizes;
//! they equal the serial fold bit-for-bit whenever the operator is exactly
//! associative over the partition (integer arithmetic, `min`/`max`, disjoint
//! writes — every correctness-bearing use in this workspace).
//!
//! # Safety model
//!
//! `ParallelSource::get` is an `unsafe fn` with the contract that each index
//! is fetched at most once across all threads; the drivers uphold it by
//! assigning disjoint index ranges to tasks. That contract is what lets
//! mutable-slice sources hand out `&mut` elements and owning sources move
//! values out from shared references.

use crate::pool::{current_pool, PoolState};
use std::marker::PhantomData;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::sync::{Arc, OnceLock};

/// Default auto-partition target: enough chunks per worker that uneven tasks
/// rebalance, few enough that claim overhead stays invisible.
const DEFAULT_OVERPARTITION: usize = 4;

/// Thread-count-independent default grain for `fold`/`sum` accumulators (see
/// the module docs on determinism).
pub const DEFAULT_FOLD_GRAIN: usize = 1024;

/// Parse a positive integer from `var`, else `default`. Zero and garbage fall
/// back rather than erroring: a grain of 0 would divide by zero downstream,
/// and a misspelled knob should never change results silently mid-run.
fn env_grain(var: &str, default: usize) -> usize {
    match std::env::var(var) {
        Ok(s) => s.trim().parse::<usize>().ok().filter(|&v| v > 0).unwrap_or(default),
        Err(_) => default,
    }
}

/// Chunks-per-worker target for auto-partitioned bridges, latched from
/// `DPP_OVERPARTITION` on first use so one process never mixes two values.
/// Re-tuning it is safe for results: auto-partitioned bridges are ordered
/// and exact over any partition.
pub fn overpartition() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_grain("DPP_OVERPARTITION", DEFAULT_OVERPARTITION))
}

/// The `fold`/`sum` accumulator grain, latched from `DPP_FOLD_GRAIN` on
/// first use. Changing it changes the accumulator merge tree, so float
/// reductions may differ in the last bits from the anchored defaults —
/// re-anchor byte pins after re-tuning (EXPERIMENTS.md).
pub fn fold_grain() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| env_grain("DPP_FOLD_GRAIN", DEFAULT_FOLD_GRAIN))
}

/// A random-access description of a parallel sequence.
///
/// # Safety
///
/// Implementations must tolerate `get` being called concurrently from many
/// threads, provided no index is fetched twice. Callers (the consumers in
/// this module) must fetch each index at most once.
pub unsafe trait ParallelSource: Send + Sync {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Release elements at `new_len..len()`, if the source owns them. Called
    /// before execution when an adapter (e.g. a shortening `zip`) will never
    /// fetch them.
    fn truncate(&mut self, _new_len: usize) {}

    /// Produce element `i`.
    ///
    /// # Safety
    ///
    /// `i < self.len()`, and each index is fetched at most once over the
    /// source's lifetime.
    unsafe fn get(&self, i: usize) -> Self::Item;
}

// ---------------------------------------------------------------------------
// Leaf sources
// ---------------------------------------------------------------------------

/// Integer range source (`(a..b).into_par_iter()`).
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

/// Index types usable as parallel ranges.
pub trait RangeIndex: Copy + Send + Sync {
    fn range_len(start: Self, end: Self) -> usize;
    fn offset(self, i: usize) -> Self;
}

macro_rules! impl_range_index {
    ($($t:ty),*) => {$(
        impl RangeIndex for $t {
            fn range_len(start: $t, end: $t) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            fn offset(self, i: usize) -> $t {
                self + i as $t
            }
        }
    )*};
}
impl_range_index!(usize, u32, u64, i32, i64);

unsafe impl<T: RangeIndex> ParallelSource for RangeSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> T {
        self.start.offset(i)
    }
}

/// Shared-slice source (`par_iter`).
pub struct SliceSource<'a, T> {
    slice: &'a [T],
}

unsafe impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    unsafe fn get(&self, i: usize) -> &'a T {
        // SAFETY: i < len by contract.
        unsafe { self.slice.get_unchecked(i) }
    }
}

/// Shared-chunks source (`par_chunks`).
pub struct ChunksSource<'a, T> {
    slice: &'a [T],
    chunk: usize,
}

unsafe impl<'a, T: Sync> ParallelSource for ChunksSource<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }

    unsafe fn get(&self, i: usize) -> &'a [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Mutable-slice source (`par_iter_mut`). Raw pointer so disjoint indices can
/// be materialized as `&mut` from different threads.
pub struct SliceMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: disjoint-index discipline (see `ParallelSource::get`) means no two
// threads ever hold a reference to the same element.
unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

unsafe impl<'a, T: Send> ParallelSource for SliceMutSource<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    unsafe fn get(&self, i: usize) -> &'a mut T {
        // SAFETY: i < len, fetched once — the &mut is exclusive.
        unsafe { &mut *self.ptr.add(i) }
    }
}

/// Mutable-chunks source (`par_chunks_mut`).
pub struct ChunksMutSource<'a, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: as for `SliceMutSource` — chunks at distinct indices are disjoint.
unsafe impl<T: Send> Send for ChunksMutSource<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

unsafe impl<'a, T: Send> ParallelSource for ChunksMutSource<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }

    unsafe fn get(&self, i: usize) -> &'a mut [T] {
        let start = i * self.chunk;
        let end = (start + self.chunk).min(self.len);
        // SAFETY: [start, end) ranges for distinct i never overlap.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), end - start) }
    }
}

/// Owning source (`vec.into_par_iter()`): elements are moved out exactly once
/// via `ptr::read`; the allocation is freed (without dropping moved-out
/// elements) when the source drops. Elements cut off by `truncate` (a
/// shortening `zip`) are dropped eagerly; elements left unfetched because a
/// sibling task panicked are leaked, which is safe.
pub struct VecSource<T: Send> {
    ptr: *mut T,
    len: usize,
    cap: usize,
}

unsafe impl<T: Send> Send for VecSource<T> {}
unsafe impl<T: Send> Sync for VecSource<T> {}

impl<T: Send> VecSource<T> {
    fn new(v: Vec<T>) -> VecSource<T> {
        let mut v = ManuallyDrop::new(v);
        VecSource { ptr: v.as_mut_ptr(), len: v.len(), cap: v.capacity() }
    }
}

unsafe impl<T: Send> ParallelSource for VecSource<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.len
    }

    fn truncate(&mut self, new_len: usize) {
        while self.len > new_len {
            self.len -= 1;
            // SAFETY: element `len` was never fetched (truncate runs before
            // execution) and is in bounds of the original vector.
            unsafe { std::ptr::drop_in_place(self.ptr.add(self.len)) };
        }
    }

    unsafe fn get(&self, i: usize) -> T {
        // SAFETY: fetched at most once, so this is a move, not a duplicate.
        unsafe { std::ptr::read(self.ptr.add(i)) }
    }
}

impl<T: Send> Drop for VecSource<T> {
    fn drop(&mut self) {
        // Free the allocation only; fetched elements moved out, and the
        // consumer is responsible for having fetched (or truncated) the rest.
        // SAFETY: ptr/cap came from a Vec<T> via ManuallyDrop.
        unsafe { drop(Vec::from_raw_parts(self.ptr, 0, self.cap)) };
    }
}

// ---------------------------------------------------------------------------
// Adapters
// ---------------------------------------------------------------------------

/// `map` adapter.
pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

unsafe impl<S, F, O> ParallelSource for MapSource<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> O + Sync + Send,
    O: Send,
{
    type Item = O;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn truncate(&mut self, new_len: usize) {
        self.inner.truncate(new_len);
    }

    unsafe fn get(&self, i: usize) -> O {
        // SAFETY: forwarded contract.
        (self.f)(unsafe { self.inner.get(i) })
    }
}

/// `enumerate` adapter: pairs each element with its global index.
pub struct EnumerateSource<S> {
    inner: S,
}

unsafe impl<S: ParallelSource> ParallelSource for EnumerateSource<S> {
    type Item = (usize, S::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn truncate(&mut self, new_len: usize) {
        self.inner.truncate(new_len);
    }

    unsafe fn get(&self, i: usize) -> (usize, S::Item) {
        // SAFETY: forwarded contract.
        (i, unsafe { self.inner.get(i) })
    }
}

/// `zip` adapter: lock-step pairs, truncated to the shorter side.
pub struct ZipSource<A, B> {
    a: A,
    b: B,
    len: usize,
}

impl<A: ParallelSource, B: ParallelSource> ZipSource<A, B> {
    fn new(mut a: A, mut b: B) -> ZipSource<A, B> {
        let len = a.len().min(b.len());
        a.truncate(len);
        b.truncate(len);
        ZipSource { a, b, len }
    }
}

unsafe impl<A: ParallelSource, B: ParallelSource> ParallelSource for ZipSource<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.len
    }

    fn truncate(&mut self, new_len: usize) {
        if new_len < self.len {
            self.len = new_len;
            self.a.truncate(new_len);
            self.b.truncate(new_len);
        }
    }

    unsafe fn get(&self, i: usize) -> (A::Item, B::Item) {
        // SAFETY: forwarded contract on both sides.
        unsafe { (self.a.get(i), self.b.get(i)) }
    }
}

// ---------------------------------------------------------------------------
// The public combinator carrier
// ---------------------------------------------------------------------------

/// A parallel iterator: an indexed source plus a grain-size hint.
pub struct Par<S> {
    src: S,
    /// Minimum elements per task; `0` = unset (auto partition).
    min_len: usize,
}

/// Conversion into a parallel iterator (ranges, vectors, and `Par` itself).
pub trait IntoParallelIterator {
    type Item: Send;
    type Source: ParallelSource<Item = Self::Item>;
    fn into_par_iter(self) -> Par<Self::Source>;
}

impl<S: ParallelSource> IntoParallelIterator for Par<S> {
    type Item = S::Item;
    type Source = S;

    fn into_par_iter(self) -> Par<S> {
        self
    }
}

impl<T: RangeIndex> IntoParallelIterator for std::ops::Range<T> {
    type Item = T;
    type Source = RangeSource<T>;

    fn into_par_iter(self) -> Par<RangeSource<T>> {
        Par {
            src: RangeSource { start: self.start, len: T::range_len(self.start, self.end) },
            min_len: 0,
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Source = VecSource<T>;

    fn into_par_iter(self) -> Par<VecSource<T>> {
        Par { src: VecSource::new(self), min_len: 0 }
    }
}

/// `par_iter` / `par_chunks` on shared slices (reached from `Vec` through
/// auto-deref, as with the inherent slice methods).
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> Par<SliceSource<'_, T>>;
    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<SliceSource<'_, T>> {
        Par { src: SliceSource { slice: self }, min_len: 0 }
    }

    fn par_chunks(&self, chunk_size: usize) -> Par<ChunksSource<'_, T>> {
        assert!(chunk_size > 0, "par_chunks chunk size must be non-zero");
        Par { src: ChunksSource { slice: self, chunk: chunk_size }, min_len: 0 }
    }
}

/// `par_iter_mut` / `par_chunks_mut` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> Par<SliceMutSource<'_, T>>;
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSource<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> Par<SliceMutSource<'_, T>> {
        Par {
            src: SliceMutSource { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData },
            min_len: 0,
        }
    }

    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<ChunksMutSource<'_, T>> {
        assert!(chunk_size > 0, "par_chunks_mut chunk size must be non-zero");
        Par {
            src: ChunksMutSource {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: chunk_size,
                _marker: PhantomData,
            },
            min_len: 0,
        }
    }
}

impl<S: ParallelSource> Par<S> {
    pub fn map<O, F>(self, f: F) -> Par<MapSource<S, F>>
    where
        F: Fn(S::Item) -> O + Sync + Send,
        O: Send,
    {
        Par { src: MapSource { inner: self.src, f }, min_len: self.min_len }
    }

    pub fn enumerate(self) -> Par<EnumerateSource<S>> {
        Par { src: EnumerateSource { inner: self.src }, min_len: self.min_len }
    }

    pub fn zip<J: IntoParallelIterator>(self, other: J) -> Par<ZipSource<S, J::Source>> {
        let other = other.into_par_iter();
        Par { src: ZipSource::new(self.src, other.src), min_len: self.min_len.max(other.min_len) }
    }

    /// Set the minimum number of elements each parallel task processes — the
    /// real grain size used when partitioning work (not a no-op).
    pub fn with_min_len(mut self, min: usize) -> Par<S> {
        self.min_len = min.max(1);
        self
    }

    /// Consume every element, in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(S::Item) + Sync + Send,
    {
        let len = self.src.len();
        let pool = current_pool();
        let grain = auto_grain(len, self.min_len, pool.num_threads());
        let src = &self.src;
        run_chunked(&pool, len, grain, &|start, end| {
            for i in start..end {
                // SAFETY: tasks receive disjoint ranges; each index fetched once.
                f(unsafe { src.get(i) });
            }
        });
    }

    /// Collect into any `FromIterator` container, preserving element order.
    /// (The parallel step always materializes an ordered `Vec` first.)
    pub fn collect<C: FromIterator<S::Item>>(self) -> C {
        self.collect_vec().into_iter().collect()
    }

    fn collect_vec(self) -> Vec<S::Item> {
        let len = self.src.len();
        let pool = current_pool();
        let grain = auto_grain(len, self.min_len, pool.num_threads());
        let mut out: Vec<MaybeUninit<S::Item>> = Vec::with_capacity(len);
        // SAFETY: MaybeUninit needs no initialization; slots are written
        // below before being assumed init.
        unsafe { out.set_len(len) };
        let base = SendPtr(out.as_mut_ptr());
        let src = &self.src;
        run_chunked(&pool, len, grain, &|start, end| {
            for i in start..end {
                // SAFETY: disjoint ranges — slot i written exactly once; each
                // source index fetched once.
                unsafe { (*base.get().add(i)).write(src.get(i)) };
            }
        });
        // A task panic propagates out of run_chunked above; `out` then drops
        // as MaybeUninit (written elements leak — safe).
        assume_init_vec(out)
    }

    /// Rayon's two-closure fold: per-chunk accumulators seeded by `identity`.
    /// The chunk partition is independent of the pool size; combine with
    /// [`FoldPar::reduce`] to merge accumulators in ascending chunk order.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> FoldPar<S, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, S::Item) -> A + Sync + Send,
    {
        FoldPar { src: self.src, min_len: self.min_len, identity, fold_op }
    }

    /// Parallel sum: per-chunk sums (thread-count-independent partition)
    /// merged in ascending chunk order.
    pub fn sum<Out>(self) -> Out
    where
        Out: std::iter::Sum<S::Item> + std::iter::Sum<Out> + Send,
    {
        self.fold(
            || None::<Out>,
            |acc, x| {
                let x: Out = std::iter::once(x).sum();
                Some(match acc {
                    None => x,
                    Some(a) => [a, x].into_iter().sum(),
                })
            },
        )
        .reduce(
            || None,
            |a, b| match (a, b) {
                (None, x) | (x, None) => x,
                (Some(a), Some(b)) => Some([a, b].into_iter().sum()),
            },
        )
        .unwrap_or_else(|| std::iter::empty::<S::Item>().sum())
    }
}

/// Pending `fold` waiting for its `reduce`.
pub struct FoldPar<S, ID, F> {
    src: S,
    min_len: usize,
    identity: ID,
    fold_op: F,
}

impl<S, A, ID, F> FoldPar<S, ID, F>
where
    S: ParallelSource,
    A: Send,
    ID: Fn() -> A + Sync + Send,
    F: Fn(A, S::Item) -> A + Sync + Send,
{
    /// Execute the fold and merge the per-chunk accumulators **in ascending
    /// chunk order** on the calling thread, seeded by `identity`.
    pub fn reduce<ID2, R>(self, identity: ID2, reduce_op: R) -> A
    where
        ID2: Fn() -> A,
        R: Fn(A, A) -> A,
    {
        let len = self.src.len();
        if len == 0 {
            return identity();
        }
        // Grain independent of the pool size: the partition (and therefore
        // the accumulator merge tree) is identical on 1, 2, or 64 threads.
        let grain = if self.min_len > 0 { self.min_len } else { fold_grain() };
        let num_chunks = len.div_ceil(grain);
        let pool = current_pool();
        let mut accs: Vec<MaybeUninit<A>> = Vec::with_capacity(num_chunks);
        // SAFETY: written below, one slot per chunk, before assume-init.
        unsafe { accs.set_len(num_chunks) };
        let base = SendPtr(accs.as_mut_ptr());
        let src = &self.src;
        let seed = &self.identity;
        let fold_op = &self.fold_op;
        run_chunked(&pool, len, grain, &|start, end| {
            let mut acc = seed();
            for i in start..end {
                // SAFETY: disjoint ranges; each index fetched once.
                acc = fold_op(acc, unsafe { src.get(i) });
            }
            let chunk_idx = start / grain;
            // SAFETY: one chunk per slot, written exactly once.
            unsafe { (*base.get().add(chunk_idx)).write(acc) };
        });
        let mut acc = identity();
        for chunk_acc in assume_init_vec(accs) {
            acc = reduce_op(acc, chunk_acc);
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Driver plumbing
// ---------------------------------------------------------------------------

struct SendPtr<T>(*mut T);
impl<T> SendPtr<T> {
    /// Accessor instead of direct field reads inside parallel closures: a
    /// method call makes the closure capture `&SendPtr` (which is `Sync`)
    /// rather than the bare `*mut T` field (which is not).
    fn get(&self) -> *mut T {
        self.0
    }
}
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: carried across threads only under the disjoint-index discipline.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Elements per task: the `with_min_len` floor, else enough chunks for every
/// worker to take [`overpartition`] of them.
fn auto_grain(len: usize, min_len: usize, threads: usize) -> usize {
    let auto = len.div_ceil(threads.saturating_mul(overpartition()).max(1)).max(1);
    auto.max(min_len)
}

/// Partition `0..len` into `grain`-sized contiguous chunks and run them on
/// the pool (caller participating). Chunk boundaries depend only on `len` and
/// `grain`.
fn run_chunked(
    pool: &Arc<PoolState>,
    len: usize,
    grain: usize,
    body: &(dyn Fn(usize, usize) + Sync),
) {
    if len == 0 {
        return;
    }
    let num_tasks = len.div_ceil(grain);
    pool.run_tasks(num_tasks, &|t| {
        let start = t * grain;
        let end = (start + grain).min(len);
        body(start, end);
    });
}

fn assume_init_vec<T>(v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let mut v = ManuallyDrop::new(v);
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    // SAFETY: caller (this module) fully initialized all `len` slots, and
    // MaybeUninit<T> has the same layout as T.
    unsafe { Vec::from_raw_parts(ptr as *mut T, len, cap) }
}
