//! The fork-join execution engine: worker pools, job submission, and panic
//! propagation.
//!
//! A pool is a set of persistent worker threads blocking on a shared job
//! queue. A *job* is a batch of `num_tasks` independent tasks described by a
//! single `Fn(usize)` body; workers (and the submitting caller) claim task
//! indices from an atomic cursor until the batch is exhausted. Because the
//! caller always participates in draining its own batch, submission can never
//! deadlock — even a pool whose only worker *is* the caller (nested
//! parallelism) makes progress.
//!
//! Lifetime discipline: the task body is lifetime-erased before being placed
//! on the queue, which is sound because the submitting call blocks until
//! every task of the batch has finished — the borrowed closure and its
//! captures outlive all uses. Workers never touch the erased pointer without
//! first winning a claim, and claims are impossible once the batch is done.
//!
//! Panics inside a task are caught on the executing thread, the first payload
//! is stashed in the job, and the submitting caller re-raises it with
//! [`std::panic::resume_unwind`] after the batch completes — the same
//! observable behavior as real rayon.
//!
//! Workers are spawned through the `crossbeam` shim's scoped threads: each
//! pool starts one detached supervisor thread whose `crossbeam::thread::scope`
//! owns the workers, so dropping a [`ThreadPool`] joins every worker through
//! the supervisor.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A batch of `num_tasks` calls into a lifetime-erased task body.
struct Job {
    /// Erased `&dyn Fn(usize) + Sync` from the submitting stack frame. Valid
    /// until the batch completes; see the module docs for the argument.
    body: *const (dyn Fn(usize) + Sync),
    num_tasks: usize,
    /// Next unclaimed task index; claims beyond `num_tasks` are no-ops.
    cursor: AtomicUsize,
    /// Completed-task count plus the wait channel for the submitting caller.
    done: Mutex<usize>,
    done_cv: Condvar,
    /// First panic payload raised by any task of the batch.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// SAFETY: `body` is only dereferenced by threads that won a task claim, and
// the submitting caller keeps the referent alive until all claims are spent.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claim and run tasks until the batch is exhausted.
    fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.num_tasks {
                return;
            }
            // SAFETY: claim `i` was won exactly once; the body is alive
            // because the submitter blocks until `done == num_tasks`.
            let body = unsafe { &*self.body };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(i))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.num_tasks {
                self.done_cv.notify_all();
            }
        }
    }
}

/// Shared state of one pool: the job queue and its workers' rendezvous.
pub(crate) struct PoolState {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    num_threads: usize,
    /// Distinguishes pools so `install` can detect "already on this pool".
    id: usize,
}

thread_local! {
    /// The pool whose worker is running on this thread, if any. Parallel
    /// bridges route their work here, which is what makes
    /// `ThreadPool::install` clamp nested parallelism to the pool.
    static CURRENT_POOL: RefCell<Option<Arc<PoolState>>> = const { RefCell::new(None) };
}

fn next_pool_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl PoolState {
    pub(crate) fn num_threads(&self) -> usize {
        self.num_threads
    }

    fn new(num_threads: usize) -> Arc<PoolState> {
        Arc::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            num_threads,
            id: next_pool_id(),
        })
    }

    /// Push `copies` handles to `job` so that many workers can join in.
    fn announce(&self, job: &Arc<Job>, copies: usize) {
        if copies == 0 {
            return;
        }
        let mut q = self.queue.lock().unwrap();
        for _ in 0..copies {
            q.push_back(job.clone());
        }
        drop(q);
        self.work_ready.notify_all();
    }

    fn wait_and_propagate(job: &Job) {
        let mut done = job.done.lock().unwrap();
        while *done < job.num_tasks {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);
        if let Some(payload) = job.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
    }

    fn make_job(body: &(dyn Fn(usize) + Sync), num_tasks: usize) -> Arc<Job> {
        // SAFETY (lifetime erasure): see module docs — the submitter blocks
        // until the batch completes, so the erased borrow cannot dangle while
        // reachable from the queue in a claimable state.
        let body: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(body) };
        Arc::new(Job {
            body,
            num_tasks,
            cursor: AtomicUsize::new(0),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Run `body(0..num_tasks)` across this pool's workers with the caller
    /// participating. Blocks until every task finished; re-raises the first
    /// task panic on the caller.
    pub(crate) fn run_tasks(self: &Arc<Self>, num_tasks: usize, body: &(dyn Fn(usize) + Sync)) {
        match num_tasks {
            0 => return,
            // A single task gains nothing from the queue; run it here (the
            // "here" is already a pool worker in the nested case).
            1 => {
                body(0);
                return;
            }
            _ => {}
        }
        let job = Self::make_job(body, num_tasks);
        // The caller takes one share of the work itself.
        self.announce(&job, self.num_threads.min(num_tasks - 1));
        job.work();
        Self::wait_and_propagate(&job);
    }

    /// Run `body(0)` on a pool worker thread — *not* on the caller — and
    /// block until it finished. Used by `install`, whose contract is that the
    /// closure executes inside the pool.
    fn run_on_worker(self: &Arc<Self>, body: &(dyn Fn(usize) + Sync)) {
        let job = Self::make_job(body, 1);
        self.announce(&job, 1);
        Self::wait_and_propagate(&job);
    }

    fn worker_loop(self: Arc<Self>) {
        CURRENT_POOL.with(|c| *c.borrow_mut() = Some(self.clone()));
        loop {
            let job = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    q = self.work_ready.wait(q).unwrap();
                }
            };
            job.work();
        }
    }

    /// Start the workers behind a detached supervisor whose crossbeam scope
    /// owns them; joining the supervisor joins every worker.
    fn spawn_workers(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let state = self.clone();
        std::thread::Builder::new()
            .name("rayon-shim-supervisor".into())
            .spawn(move || {
                let n = state.num_threads;
                crossbeam::thread::scope(|s| {
                    for _ in 0..n {
                        let st = state.clone();
                        s.spawn(move |_| st.worker_loop());
                    }
                })
                .expect("rayon shim worker panicked outside a task");
            })
            .expect("failed to spawn rayon shim supervisor")
    }
}

/// The pool parallel bridges should execute on from this thread: the pool
/// owning the current worker thread, else the lazily-started global pool.
pub(crate) fn current_pool() -> Arc<PoolState> {
    CURRENT_POOL.with(|c| c.borrow().clone()).unwrap_or_else(global_pool)
}

fn global_pool() -> Arc<PoolState> {
    static GLOBAL: OnceLock<Arc<PoolState>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let state = PoolState::new(default_global_threads());
            // The global pool lives for the process; its supervisor is
            // intentionally detached.
            let _ = state.spawn_workers();
            state
        })
        .clone()
}

/// Global-pool size: `RAYON_NUM_THREADS` if set to a positive integer (the
/// same env var real rayon honors; CI uses it to oversubscribe a 1-core
/// runner), else the machine's logical core count.
fn default_global_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Worker-thread count of the pool the current thread would execute on: the
/// enclosing dedicated pool inside `ThreadPool::install`, else the global
/// pool's size.
pub fn current_num_threads() -> usize {
    current_pool().num_threads
}

/// Run `a` and `b`, potentially in parallel (one of them on another worker of
/// the current pool), and return both results. A panic in either closure
/// resurfaces on the caller after both finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let a_slot: Mutex<Option<A>> = Mutex::new(Some(a));
    let b_slot: Mutex<Option<B>> = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    let body = |i: usize| {
        if i == 0 {
            let f = a_slot.lock().unwrap().take().expect("join task 0 claimed twice");
            *ra.lock().unwrap() = Some(f());
        } else {
            let f = b_slot.lock().unwrap().take().expect("join task 1 claimed twice");
            *rb.lock().unwrap() = Some(f());
        }
    };
    current_pool().run_tasks(2, &body);
    (
        ra.into_inner().unwrap().expect("join closure `a` produced no value"),
        rb.into_inner().unwrap().expect("join closure `b` produced no value"),
    )
}

/// A dedicated worker pool with exactly the requested thread count.
/// [`ThreadPool::install`] executes its closure *on a pool worker*, so
/// parallel iterators used inside are clamped to this pool's threads — the
/// property `Device::parallel_with_threads` strong-scaling studies rely on.
pub struct ThreadPool {
    state: Arc<PoolState>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Run `op` on one of this pool's worker threads and return its result.
    /// If the calling thread already belongs to this pool (nested `install`),
    /// `op` runs inline. Panics in `op` propagate to the caller.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let on_this_pool =
            CURRENT_POOL.with(|c| c.borrow().as_ref().map(|p| p.id) == Some(self.state.id));
        if on_this_pool {
            return op();
        }
        let op_slot: Mutex<Option<OP>> = Mutex::new(Some(op));
        let ret: Mutex<Option<R>> = Mutex::new(None);
        let body = |_: usize| {
            let op = op_slot.lock().unwrap().take().expect("install task claimed twice");
            *ret.lock().unwrap() = Some(op());
        };
        self.state.run_on_worker(&body);
        ret.into_inner().unwrap().expect("install closure produced no value")
    }

    pub fn current_num_threads(&self) -> usize {
        self.state.num_threads
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.state.num_threads).finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.work_ready.notify_all();
        if let Some(handle) = self.supervisor.take() {
            let _ = handle.join();
        }
    }
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// `0` (the rayon default) means "use all cores".
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { default_global_threads() } else { self.num_threads };
        let state = PoolState::new(n);
        let supervisor = Some(state.spawn_workers());
        Ok(ThreadPool { state, supervisor })
    }
}
