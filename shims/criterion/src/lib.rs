//! Minimal offline stand-in for `criterion`.
//!
//! Provides the API slice the bench targets compile against (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`, `criterion_main!`) with a small fixed-iteration
//! timing loop instead of criterion's adaptive sampling and statistics.
//! `cargo bench` therefore still produces per-benchmark mean times, just
//! without outlier analysis or HTML reports.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Accepted by `bench_function`: either a plain string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u32,
    last_mean_s: f64,
}

impl Bencher {
    /// Run `f` for a warmup pass plus `iters` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        hint::black_box(f());
        let t0 = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.last_mean_s = t0.elapsed().as_secs_f64() / self.iters as f64;
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Criterion requires >= 10 samples; we reuse the count as the
        // iteration budget of the fixed loop.
        self.criterion.iters = (n as u32).clamp(1, 1000);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id();
        self.run_one(&full, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { iters: self.iters, last_mean_s: 0.0 };
        f(&mut b);
        let mean = b.last_mean_s;
        let human = if mean >= 1.0 {
            format!("{mean:.3} s")
        } else if mean >= 1e-3 {
            format!("{:.3} ms", mean * 1e3)
        } else {
            format!("{:.3} us", mean * 1e6)
        };
        println!("bench {name:<48} {human}/iter ({} iters)", self.iters);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(10);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
                b.iter(|| black_box(n * 2))
            });
            g.finish();
        }
        // warmup + 10 timed iterations
        assert_eq!(calls, 11);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
