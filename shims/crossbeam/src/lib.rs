//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Two slices of the real crate are provided:
//!
//! - `crossbeam::channel::{unbounded, Sender, Receiver}` — the slice `mpirt`
//!   uses. Unlike `std::sync::mpsc`, both endpoints are `Sync` (crossbeam
//!   channels are MPMC), which `mpirt::World` relies on when sharing `&Comm`
//!   across scoped rank threads. Backed by a mutex-protected `VecDeque` plus
//!   a condvar; fine for the simulated-MPI message volumes.
//! - `crossbeam::thread::scope` — scoped threads with the crossbeam
//!   signature (the spawn closure receives the scope, so spawned threads can
//!   spawn siblings, and `scope` returns `thread::Result` instead of
//!   propagating child panics). The `rayon` shim's worker pools are built on
//!   this.

/// Scoped threads in the crossbeam style, layered over `std::thread::scope`.
pub mod thread {
    /// Handle to a scope in which threads can be spawned; passed both to the
    /// `scope` closure and to every spawned thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    // A plain copyable wrapper so spawned closures can receive the scope.
    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread, joinable before the scope ends.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread scoped to the enclosing `scope` call. As with
        /// crossbeam, the closure receives the scope so it can spawn more
        /// threads itself.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    /// Run `f` with a scope handle; all threads spawned in the scope are
    /// joined before `scope` returns. A panic in any unjoined child (or in
    /// `f` itself) surfaces as `Err` carrying the panic payload, mirroring
    /// crossbeam's contract rather than `std`'s re-panic.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    pub struct Sender<T>(Arc<Inner<T>>);
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned when sending on a channel with no live receiver.
    pub struct SendError<T>(pub T);

    /// Error returned when receiving on a channel whose senders are all gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1 }),
            ready: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.0.state.lock().unwrap().senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // The receiver half is never dropped before the senders in this
            // workspace (both live inside `Comm`), so a send always succeeds.
            self.0.state.lock().unwrap().queue.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().unwrap();
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.ready.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Option<T> {
            self.0.state.lock().unwrap().queue.pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let tx2 = tx.clone();
        tx2.send(9).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 9);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_borrow_and_nest() {
        let data = [1u32, 2, 3];
        let total = super::thread::scope(|s| {
            let h1 = s.spawn(|s2| {
                // Nested spawn from inside a scoped thread, as crossbeam allows.
                let h = s2.spawn(|_| data.iter().sum::<u32>());
                h.join().unwrap()
            });
            let h2 = s.spawn(|_| data.len() as u32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 6 + 3);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let r = super::thread::scope(|s| {
            s.spawn(|_| panic!("child panic"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn cross_thread_blocking_recv() {
        let (tx, rx) = unbounded();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(handle.join().unwrap(), 42);
    }
}
