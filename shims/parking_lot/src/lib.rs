//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! small API slice it actually uses: a `Mutex` whose `lock()` returns the
//! guard directly (parking_lot mutexes do not poison). Backed by
//! `std::sync::Mutex`; a poisoned std mutex is recovered transparently to
//! match parking_lot's semantics.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
