//! Minimal offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with an optional `#![proptest_config(...)]` header, `any::<T>()`,
//! integer/float range strategies, tuple strategies, `collection::vec`,
//! `Strategy::prop_map`, and the `prop_assert!`/`prop_assert_eq!` family.
//!
//! Differences from upstream, deliberately accepted:
//! * sampling is plain uniform (no edge-case biasing toward 0/MAX),
//! * failing cases are reported but **not shrunk**,
//! * the RNG is seeded from the test name, so runs are fully deterministic.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used for all sampling.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Full-domain strategy returned by [`any`].
pub struct Any<A>(PhantomData<A>);

/// Types with a natural full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident.$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; the heavier suites here override it
            // anyway, and 64 keeps an offline `cargo test` quick.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Drive one property: sample `cases` inputs and run the body on each.
pub fn run_property<S, F>(name: &str, cfg: &test_runner::ProptestConfig, strategy: S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), String>,
{
    // FNV-1a over the test name: a stable per-test stream.
    let mut seed: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::new(seed);
    for case in 0..cfg.cases {
        if let Err(msg) = body(strategy.sample(&mut rng)) {
            panic!("property '{name}' failed at case {case}/{}: {msg}", cfg.cases);
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(format!(
                "prop_assert!({}) failed",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!(
                "prop_assert_eq! failed: {:?} != {:?}",
                l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                l
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg = $cfg;
            let __strategy = ($($strat,)+);
            $crate::run_property(stringify!($name), &__cfg, __strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..=4, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_honored(v in collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn prop_map_applies(n in (1usize..5).prop_map(|k| k * 10)) {
            prop_assert_eq!(n % 10, 0);
            prop_assert_ne!(n, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_compiles(pair in (any::<u64>(), 1u32..3)) {
            prop_assert!(pair.1 == 1 || pair.1 == 2);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), 0u32..10, |_| {
            Err("nope".to_string())
        });
    }
}
